//! The four repo-specific protocol passes.
//!
//! Each pass encodes one hand-maintained invariant of the adaptive
//! skipping system as a machine check (see DESIGN.md "Correctness
//! tooling" for the protocol rationale):
//!
//! * [`epoch_pass`] — functions in `crates/core/src/adaptive/` that
//!   write reader-visible zone/tier/layout state must bump
//!   `mutation_epoch` on every path, or carry an `// epoch:` note
//!   saying why the write is reader-invisible (or whose bump covers
//!   it). Without the bump, epoch-diffed `ShardedCell` republication
//!   skips the lane and readers serve stale metadata forever.
//! * [`publication_pass`] — in `crates/server`, a `publish*` function
//!   must store the payload **before** the generation bump and write
//!   nothing afterwards; a store after the bump lets a reader observe
//!   the new generation with a stale payload.
//! * [`live_mask_pass`] — calls to non-`_live` aggregate kernels leak
//!   tombstoned rows into answers; outside the `scalar` oracle module
//!   and tests they need a `// live: <why tombstone-free>` note.
//! * [`lifecycle_pass`] — promotion state (`tier`/`layout`/`mask`
//!   `Some(...)` sites) must be cleared symmetrically on the
//!   split/merge/deactivate/coalesce/compact paths: a structural
//!   transition that keeps a stale tier answers from dead metadata.

use crate::flow::{leaves, on_every_path, FnItem, TokenFile};
use crate::lexer::{TokKind, ASSIGN_OPS};
use crate::{has_marker, Diagnostic, FileCtx, Line};

/// Reader-visible zone-structure fields/collections: writing any of
/// these changes what a republished lane would serve.
const EPOCH_TARGETS: [&str; 6] = ["state", "layout", "tier", "mask", "zones", "plane"];

/// Mutating methods that count as a structural write when their
/// receiver chain names an epoch target.
const EPOCH_MUTATORS: [&str; 13] = [
    "push", "insert", "remove", "splice", "drain", "truncate", "clear", "retain", "swap", "extend",
    "rebuild", "iter_mut", "take",
];

/// Methods that are a structural write regardless of receiver.
const EPOCH_ALWAYS_MUTATORS: [&str; 1] = ["drop_tier"];

/// Non-`_live` aggregate kernels in `ads_storage::scan`: correct only
/// when every row of the slice is known live.
pub const NONLIVE_KERNELS: [&str; 12] = [
    "count_in_range",
    "count_in_range_with_minmax",
    "collect_in_range",
    "fill_bitmap_in_range",
    "sum_in_range",
    "sum_all",
    "aggregate_in_range",
    "collect_in_range_with_minmax",
    "fill_bitmap_in_range_with_minmax",
    "count_in_range_with_minmax_and_mask",
    "min_max",
    "min_max_in_range",
];

/// Symbols the lifecycle pass pairs set-sites with clears for.
const LIFECYCLE_SYMBOLS: [&str; 3] = ["tier", "layout", "mask"];

/// Function-name fragments that mark a structural lifecycle path.
const LIFECYCLE_FNS: [&str; 5] = ["split", "merge", "deactivate", "coalesce", "compact"];

/// One file's lexed + line views, shared by every pass.
pub struct FileScan<'a> {
    pub ctx: &'a FileCtx,
    pub lines: &'a [Line],
    pub mask: &'a [bool],
    pub tf: &'a TokenFile,
}

impl FileScan<'_> {
    fn diag(&self, rule: &'static str, line: usize, msg: String) -> Diagnostic {
        Diagnostic {
            rule,
            path: self.ctx.path.clone(),
            line,
            msg,
        }
    }

    fn line_masked(&self, line: usize) -> bool {
        self.mask
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    fn site_justified(&self, line: usize, marker: &str) -> bool {
        let idx = line.saturating_sub(1);
        idx < self.lines.len() && has_marker(self.lines, idx, marker, 3)
    }

    /// True when a comment carrying `marker` is attached to the
    /// function: anywhere in the contiguous doc/comment block directly
    /// above the header (attributes allowed between), or anywhere
    /// inside the body.
    fn fn_justified(&self, item: &FnItem, marker: &str) -> bool {
        if self
            .tf
            .comment_in_lines(item.header_line, item.end_line, marker)
        {
            return true;
        }
        // Walk the attached block above the header: comment lines and
        // attribute lines (`#[...]`), stopping at the first real code.
        let mut i = item.header_line.saturating_sub(1);
        while i > 0 {
            i -= 1;
            let Some(l) = self.lines.get(i) else { break };
            let code = l.code.trim();
            if !code.is_empty() && !code.starts_with("#[") && !code.starts_with("#!") {
                break;
            }
            if l.comment.contains(marker) {
                return true;
            }
        }
        false
    }
}

/// Whether `text` is one of the assignment operators.
fn is_assign(text: &str) -> bool {
    ASSIGN_OPS.contains(&text)
}

/// Structural-write sites in one leaf: `(line, what)` pairs.
fn leaf_writes(tf: &TokenFile, leaf: &[usize]) -> Vec<(usize, String)> {
    let code = &tf.code;
    let mut out = Vec::new();
    let has_let = leaf
        .iter()
        .any(|&p| code[p].kind == TokKind::Ident && code[p].text == "let");
    for (k, &p) in leaf.iter().enumerate() {
        let t = &code[p];
        // Assignment whose LHS names a target field/collection.
        if t.kind == TokKind::Punct && is_assign(&t.text) && !has_let {
            let lhs_hit = leaf[..k].iter().rev().take(8).find_map(|&q| {
                let u = &code[q];
                (u.kind == TokKind::Ident && EPOCH_TARGETS.contains(&u.text.as_str()))
                    .then(|| u.text.clone())
            });
            if let Some(field) = lhs_hit {
                out.push((t.line, format!("`{field}` assignment")));
            }
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = k > 0 && code[leaf[k - 1]].text == ".";
        // Mutating method on a target receiver chain.
        if prev_dot && EPOCH_ALWAYS_MUTATORS.contains(&t.text.as_str()) {
            out.push((t.line, format!("`.{}()`", t.text)));
        } else if prev_dot
            && EPOCH_MUTATORS.contains(&t.text.as_str())
            && leaf[..k.saturating_sub(1)].iter().rev().take(6).any(|&q| {
                let u = &code[q];
                u.kind == TokKind::Ident && EPOCH_TARGETS.contains(&u.text.as_str())
            })
        {
            out.push((t.line, format!("`.{}()` on zone structure", t.text)));
        }
        // `&mut` borrow of a target handed to a callee.
        if t.text == "mut" && k > 0 && code[leaf[k - 1]].text == "&" {
            let borrowed = leaf[k + 1..].iter().take(6).any(|&q| {
                let u = &code[q];
                u.kind == TokKind::Ident && EPOCH_TARGETS.contains(&u.text.as_str())
            });
            if borrowed {
                out.push((t.line, "`&mut` borrow of zone structure".into()));
            }
        }
    }
    out
}

/// Whether a leaf bumps the mutation epoch (`mutation_epoch +=` or a
/// `bump_epoch` call).
fn leaf_bumps(tf: &TokenFile, leaf: &[usize]) -> bool {
    let code = &tf.code;
    leaf.iter().enumerate().any(|(k, &p)| {
        let t = &code[p];
        t.kind == TokKind::Ident
            && (t.text == "bump_epoch"
                || (t.text == "mutation_epoch"
                    && leaf.get(k + 1).is_some_and(|&q| is_assign(&code[q].text))))
    })
}

/// Pass 1: epoch discipline over `crates/core/src/adaptive/`.
pub fn epoch_pass(fs: &FileScan<'_>, out: &mut Vec<Diagnostic>) {
    if !fs.ctx.path.starts_with("crates/core/src/adaptive/") || fs.ctx.path.ends_with("/tests.rs") {
        return;
    }
    for item in fs.tf.functions() {
        if fs.line_masked(item.header_line) {
            continue;
        }
        let mut all = Vec::new();
        leaves(&item.tree, &mut all);
        let writes: Vec<(usize, String)> = all
            .iter()
            .flat_map(|leaf| leaf_writes(fs.tf, leaf))
            .filter(|(line, _)| !fs.line_masked(*line))
            .collect();
        if writes.is_empty() {
            continue;
        }
        if on_every_path(&item.tree, &|leaf| leaf_bumps(fs.tf, leaf)) {
            continue;
        }
        if fs.fn_justified(&item, "epoch:") {
            continue;
        }
        let (first_line, what) = &writes[0];
        out.push(fs.diag(
            "epoch-discipline",
            *first_line,
            format!(
                "fn `{}` writes zone structure ({}, {} site(s)) without bumping \
                 `mutation_epoch` on every path; bump it or add an \
                 `// epoch: <why reader-invisible>` justification",
                item.name,
                what,
                writes.len()
            ),
        ));
    }
}

/// Pass 2: publication discipline over `crates/server/src/`.
pub fn publication_pass(fs: &FileScan<'_>, out: &mut Vec<Diagnostic>) {
    if !fs.ctx.path.starts_with("crates/server/src/") {
        return;
    }
    let code = &fs.tf.code;
    for item in fs.tf.functions() {
        if !item.name.starts_with("publish") || fs.line_masked(item.header_line) {
            continue;
        }
        let (start, end) = item.body;
        // Locate the generation bump: `generation` followed closely by
        // `fetch_add`/`store`.
        let bump = (start..end).find(|&i| {
            code[i].kind == TokKind::Ident
                && code[i].text == "generation"
                && (i + 1..(i + 4).min(end)).any(|j| {
                    code[j].kind == TokKind::Ident
                        && (code[j].text == "fetch_add" || code[j].text == "store")
                })
        });
        let Some(bump_at) = bump else {
            continue; // delegating publisher: no bump of its own
        };
        // Skip past the bump's own statement.
        let mut i = bump_at;
        let mut depth = 0i32;
        while i < end {
            match code[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        // Anything stored after the bump is a protocol violation.
        let mut stmt_has_let = false;
        while i < end {
            let t = &code[i];
            if t.kind == TokKind::Ident && t.text == "let" {
                stmt_has_let = true;
            }
            if t.kind == TokKind::Punct && t.text == ";" {
                stmt_has_let = false;
            }
            let is_store_call = t.kind == TokKind::Ident
                && i > 0
                && code[i - 1].text == "."
                && matches!(t.text.as_str(), "store" | "push" | "insert" | "write")
                && code.get(i + 1).is_some_and(|n| n.text == "(");
            let is_assignment = t.kind == TokKind::Punct && is_assign(&t.text) && !stmt_has_let;
            if is_store_call || is_assignment {
                out.push(fs.diag(
                    "publication-discipline",
                    t.line,
                    format!(
                        "fn `{}` writes state after the generation bump; readers \
                         acquiring the new generation may observe the old payload \
                         — store everything before the bump",
                        item.name
                    ),
                ));
                break;
            }
            i += 1;
        }
    }
}

/// Pass 3: live-mask discipline — non-`_live` kernel calls need a
/// `// live:` justification outside the scalar oracle and tests.
pub fn live_mask_pass(fs: &FileScan<'_>, out: &mut Vec<Diagnostic>) {
    let p = &fs.ctx.path;
    let in_scope = [
        "crates/storage/src/",
        "crates/engine/src/",
        "crates/server/src/",
        "crates/core/src/",
    ]
    .iter()
    .any(|pre| p.starts_with(pre));
    if !in_scope
        || p == "crates/storage/src/scan.rs"
        || p.ends_with("/tests.rs")
        || fs.ctx.is_test_file()
    {
        return;
    }
    let code = &fs.tf.code;
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident
            || !NONLIVE_KERNELS.contains(&t.text.as_str())
            || code.get(i + 1).is_none_or(|n| n.text != "(")
            || fs.line_masked(t.line)
        {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| code[j].text.as_str());
        // `.min_max()` is a method on some other type; `fn min_max` is
        // a definition; `scalar::` calls ARE the oracle.
        if prev == Some(".") || prev == Some("fn") {
            continue;
        }
        if prev == Some("::") && i >= 2 && code[i - 2].text == "scalar" {
            continue;
        }
        if fs.site_justified(t.line, "live:") {
            continue;
        }
        out.push(fs.diag(
            "live-mask",
            t.line,
            format!(
                "non-`_live` kernel `{}` outside the scalar oracle; deleted rows \
                 leak into the answer unless every row is live — use the `_live` \
                 variant or add `// live: <why tombstone-free>`",
                t.text
            ),
        ));
    }
}

/// Pass 4: lifecycle symmetry across `crates/core/src/adaptive/`.
///
/// Cross-file: set-sites (tier/layout/mask promotion) are collected
/// over the whole directory, then every structural lifecycle function
/// must clear (or guard, or justify) each promoted symbol.
pub fn lifecycle_pass(files: &[FileScan<'_>], out: &mut Vec<Diagnostic>) {
    let adaptive: Vec<&FileScan<'_>> = files
        .iter()
        .filter(|fs| {
            fs.ctx.path.starts_with("crates/core/src/adaptive/")
                && !fs.ctx.path.ends_with("/tests.rs")
        })
        .collect();
    if adaptive.is_empty() {
        return;
    }
    // Which symbols are ever promoted?
    let mut promoted: Vec<&str> = Vec::new();
    for fs in &adaptive {
        let code = &fs.tf.code;
        for i in 0..code.len() {
            let t = &code[i];
            if t.kind != TokKind::Ident
                || !LIFECYCLE_SYMBOLS.contains(&t.text.as_str())
                || fs.line_masked(t.line)
            {
                continue;
            }
            if code.get(i + 1).is_none_or(|n| n.text != "=") {
                continue;
            }
            let rhs_promotes = (i + 2..(i + 6).min(code.len()))
                .any(|j| matches!(code[j].text.as_str(), "Some" | "Reorganized"));
            if rhs_promotes && !promoted.contains(&t.text.as_str()) {
                // narrowing the borrow: LIFECYCLE_SYMBOLS entries are
                // 'static, re-find the static str.
                if let Some(s) = LIFECYCLE_SYMBOLS.iter().find(|s| **s == t.text) {
                    promoted.push(s);
                }
            }
        }
    }
    if promoted.is_empty() {
        return;
    }
    for fs in &adaptive {
        for item in fs.tf.functions() {
            let lname = item.name.to_lowercase();
            if !LIFECYCLE_FNS.iter().any(|f| lname.contains(f)) || fs.line_masked(item.header_line)
            {
                continue;
            }
            // Only structural transitions owe clears: a read-only
            // helper that merely *decides* (should_split etc.) writes
            // nothing.
            let mut all = Vec::new();
            leaves(&item.tree, &mut all);
            let writes_structure = all.iter().any(|leaf| !leaf_writes(fs.tf, leaf).is_empty());
            if !writes_structure {
                continue;
            }
            if fs.fn_justified(&item, "lifecycle:") {
                continue;
            }
            let code = &fs.tf.code;
            let (start, end) = item.body;
            for sym in &promoted {
                let cleared = (start..end).any(|i| {
                    let t = &code[i];
                    if t.kind != TokKind::Ident {
                        return false;
                    }
                    // `drop_tier()` clears the tier; `is_reorganized`
                    // guards mean the layout case is explicitly routed.
                    if *sym == "tier" && t.text == "drop_tier" {
                        return true;
                    }
                    if *sym == "layout" && t.text == "is_reorganized" {
                        return true;
                    }
                    if t.text != *sym {
                        return false;
                    }
                    // `sym = None` / `sym = ZoneLayout::Flat`,
                    // struct-literal `sym: None` / `sym: ZoneLayout::Flat`,
                    // or `sym.take()`.
                    let next = code.get(i + 1).map(|n| n.text.as_str());
                    if next == Some(".") && code.get(i + 2).is_some_and(|n| n.text == "take") {
                        return true;
                    }
                    if next == Some("=") || next == Some(":") {
                        return (i + 2..(i + 6).min(end))
                            .any(|j| matches!(code[j].text.as_str(), "None" | "Flat"));
                    }
                    false
                });
                if !cleared {
                    out.push(fs.diag(
                        "lifecycle-symmetry",
                        item.header_line,
                        format!(
                            "lifecycle fn `{}` transitions zone structure but never \
                             clears `{sym}` (promoted elsewhere in this directory); \
                             clear it, guard it, or add `// lifecycle: <why>`",
                            item.name
                        ),
                    ));
                }
            }
        }
    }
}

//! Token-stream lexer: the primary IR for v2 rules and protocol passes.
//!
//! The v1 scanner reduced source to per-line (code, comment) strings,
//! which is exact for string/comment stripping but forces every rule
//! into substring matching. v2 lexes the same character stream into a
//! token vector — identifiers, multi-char operators, literals, and
//! comments, each carrying its source line — so rules match token
//! sequences (`Ordering` `::` `Relaxed`, `as` `u32`) instead of
//! substrings, and the dataflow passes can parse function bodies.
//!
//! The lexer handles the constructs that defeat naive scanners:
//! nested block comments, raw strings (`r#"..."#`, any hash depth,
//! plus `b"`/`br#"` byte forms), escaped char literals, and the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).

/// Token class. Comments are kept in the stream (the justification
/// rules need their text and position); rules that only care about
/// executable code filter on kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `zones`, `Ordering`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// Char literal (`'x'`, `'\n'`).
    CharLit,
    /// String literal (ordinary, raw, or byte), contents included.
    StrLit,
    /// Numeric literal, suffix included (`1_000u64`, `0.5`).
    NumLit,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
    /// Line, block, or doc comment; text excludes the delimiters.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// Multi-char operators, longest first so maximal munch is a prefix
/// scan. `..=` and the shift-assigns are three chars; everything else
/// two.
const MULTI_PUNCT: [&str; 21] = [
    "..=", "<<=", ">>=", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=",
];

/// Assignment operators (the `=` family, excluding comparisons and
/// `=>`): what the dataflow passes treat as a write.
pub const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Lexes `src` into a token stream. Never fails: unrecognised bytes
/// become single-char `Punct` tokens, so a malformed file degrades to
/// noise rather than a crash.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments first: they shadow every operator start.
        if c == '/' && next == '/' {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Comment,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c == '/' && next == '*' {
            let tok_line = line;
            let start = i + 2;
            let mut depth = 1u32;
            let mut j = start;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            toks.push(Tok {
                kind: TokKind::Comment,
                text: chars[start..end].iter().collect(),
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Raw / byte string starts: r", r#", b", br#", rb is not Rust.
        if (c == 'r' || c == 'b') && !prev_is_ident_char(&toks) {
            if let Some((tok, consumed, newlines)) = try_raw_or_byte_string(&chars, i, line) {
                toks.push(tok);
                i += consumed;
                line += newlines;
                continue;
            }
        }
        if c == '"' {
            let tok_line = line;
            let mut j = i + 1;
            let mut text = String::new();
            while j < chars.len() {
                let s = chars[j];
                if s == '\\' {
                    j += 2;
                    continue;
                }
                if s == '"' {
                    break;
                }
                if s == '\n' {
                    line += 1;
                }
                text.push(s);
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::StrLit,
                text,
                line: tok_line,
            });
            i = (j + 1).min(chars.len());
            continue;
        }
        if c == '\'' {
            // Char literal or lifetime. `'\...'` and `'X'` are chars;
            // anything else (`'a`, `'static`, `'_`) is a lifetime.
            if next == '\\' {
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: chars[i..(j + 1).min(chars.len())].iter().collect(),
                    line,
                });
                i = (j + 1).min(chars.len());
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut seen_dot = false;
            while j < chars.len() {
                let d = chars[j];
                if d.is_alphanumeric() || d == '_' {
                    j += 1;
                } else if d == '.'
                    && !seen_dot
                    && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                {
                    // `1.5` continues the number; `0..10` does not.
                    seen_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::NumLit,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Operators: maximal munch over the multi-char table.
        let mut matched = None;
        for op in MULTI_PUNCT {
            let n = op.len();
            if i + n <= chars.len() && chars[i..i + n].iter().collect::<String>() == op {
                matched = Some(op);
                break;
            }
        }
        if let Some(op) = matched {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line,
            });
            i += op.len();
        } else {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    toks
}

/// True when the previous token could glue onto an `r`/`b` prefix —
/// i.e. we are mid-identifier (`for` ends in `r` but was already lexed
/// whole, so this only guards pathological splits).
fn prev_is_ident_char(toks: &[Tok]) -> bool {
    // The ident lexer consumes maximally, so a fresh `r`/`b` at this
    // point is always token-initial; nothing to guard.
    let _ = toks;
    false
}

/// Attempts to lex a raw or byte string at `chars[i]` (which is `r` or
/// `b`). Returns `(token, chars_consumed, newlines_inside)` or `None`
/// when it is just an identifier starting with r/b.
fn try_raw_or_byte_string(chars: &[char], i: usize, line: usize) -> Option<(Tok, usize, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') {
            // b"..." — ordinary escapes apply.
            let mut k = j + 1;
            let mut newlines = 0usize;
            while k < chars.len() {
                match chars[k] {
                    '\\' => k += 2,
                    '"' => break,
                    c => {
                        if c == '\n' {
                            newlines += 1;
                        }
                        k += 1;
                    }
                }
            }
            let text: String = chars[j + 1..k.min(chars.len())].iter().collect();
            return Some((
                Tok {
                    kind: TokKind::StrLit,
                    text,
                    line,
                },
                (k + 1).min(chars.len()) - i,
                newlines,
            ));
        }
        if chars.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    } else {
        j += 1; // past 'r'
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    let body_start = j + 1;
    let mut k = body_start;
    let mut newlines = 0usize;
    loop {
        if k >= chars.len() {
            break;
        }
        if chars[k] == '\n' {
            newlines += 1;
            k += 1;
            continue;
        }
        if chars[k] == '"' {
            let mut seen = 0usize;
            let mut m = k + 1;
            while seen < hashes && chars.get(m) == Some(&'#') {
                seen += 1;
                m += 1;
            }
            if seen == hashes {
                let text: String = chars[body_start..k].iter().collect();
                return Some((
                    Tok {
                        kind: TokKind::StrLit,
                        text,
                        line,
                    },
                    m - i,
                    newlines,
                ));
            }
        }
        k += 1;
    }
    // Unterminated raw string: consume to EOF.
    let text: String = chars[body_start..].iter().collect();
    Some((
        Tok {
            kind: TokKind::StrLit,
            text,
            line,
        },
        chars.len() - i,
        newlines,
    ))
}

//! `ads-lint`: repo-invariant static analysis, v2.
//!
//! A std-only analyzer enforcing the workspace's machine-checked
//! concurrency, robustness, and skipping-protocol conventions. v1 was
//! a line scanner; v2 lexes every file into a token stream
//! ([`lexer`]), parses function bodies into statement trees with a
//! branch-join dataflow layer ([`flow`]), and runs both the original
//! style rules (now token-exact) and four protocol passes
//! ([`passes`]) over that IR. The tool stays dependency-free (the
//! offline build forbids syn/clippy plugins) and fast enough to gate
//! CI.
//!
//! Rules (see DESIGN.md "Correctness tooling" for rationale):
//!
//! | rule               | requirement                                          |
//! |--------------------|------------------------------------------------------|
//! | `ordering-comment` | every atomic `Ordering::` use carries `// ordering:` (match-pattern positions exempt) |
//! | `unwrap-invariant` | no `unwrap()`/`expect(` in non-test code unless `// invariant:`-tagged |
//! | `cast-narrowing`   | no bare `as u32`/`as usize` unless `// narrowing:`-tagged |
//! | `atomic-import`    | crates/server must import atomics via its `sync` module |
//! | `unsafe-allow`     | `allow(unsafe_code)` requires a DESIGN.md pointer    |
//! | `forbid-unsafe`    | every crate root declares `#![forbid(unsafe_code)]`  |
//!
//! Protocol passes (the v2 additions):
//!
//! | pass                     | protocol it guards                              |
//! |--------------------------|-------------------------------------------------|
//! | `epoch-discipline`       | zone-structure writes bump `mutation_epoch` on every path (else `// epoch:`) |
//! | `publication-discipline` | `publish*` fns store payload before the generation bump, nothing after |
//! | `live-mask`              | non-`_live` kernels only with `// live:` outside the scalar oracle/tests |
//! | `lifecycle-symmetry`     | tier/layout/mask promotions cleared on split/merge/deactivate/coalesce/compact paths |
//!
//! False-positive escape hatches, in order of preference: a
//! justification comment at the site, or a `rule path-prefix` line in
//! the allowlist file (for whole modules where the rule does not
//! apply).

#![forbid(unsafe_code)]

pub mod flow;
pub mod lexer;
pub mod passes;

use flow::TokenFile;
use lexer::{lex, TokKind};
use passes::FileScan;
use std::fmt;

/// One finding: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// A source line split into executable code and comment text by the
/// line lexer: string/char literal contents are blanked out of `code`,
/// and comments (line, doc, and block) land in `comment`. The token
/// stream is the primary IR; this view remains for justification
/// markers and the test-region mask, which are inherently line
/// concepts.
#[derive(Debug, Clone)]
pub struct Line {
    pub num: usize,
    pub code: String,
    pub comment: String,
}

/// Lexes `src` into per-line (code, comment) pairs. Handles nested
/// block comments, ordinary/raw string literals, char literals, and
/// distinguishes lifetimes (`'a`) from char literals (`'a'`).
pub fn strip_source(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        LineComment,
        Str,
        RawStr(u32),
    }
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut num = 1usize;
    let mut st = St::Code;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut prev_code_char = ' ';
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(Line {
                num,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            num += 1;
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '/' && next == '/' {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'r'
                    && !prev_code_char.is_alphanumeric()
                    && prev_code_char != '_'
                    && (next == '"' || next == '#')
                {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('r');
                        code.push('"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.push(c);
                        prev_code_char = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime. A char literal closes
                    // within a few chars; a lifetime never closes.
                    if next == '\\' {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        code.push_str("' '");
                        i = (j + 1).min(chars.len());
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime: keep the tick, continue as code.
                        code.push('\'');
                        i += 1;
                    }
                    prev_code_char = '\'';
                } else {
                    code.push(c);
                    prev_code_char = c;
                    i += 1;
                }
            }
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::Block(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if c == '*' && next == '/' {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    st = St::Code;
                    prev_code_char = '"';
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push('"');
                        st = St::Code;
                        prev_code_char = '"';
                        i = j;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line { num, code, comment });
    }
    lines
}

/// Marks each line that is test-only code: inside a `#[cfg(test)]` /
/// `#[test]` / `#[bench]` item (tracked by brace depth), so production
/// rules skip it.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // Brace depths at which a test item opened; while non-empty we are
    // inside test code.
    let mut regions: Vec<i32> = Vec::new();
    let mut pending_attr = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") || code.contains("#[bench]") {
            pending_attr = true;
        }
        let mut in_test_here = !regions.is_empty() || pending_attr;
        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_attr {
                        // The attributed item's body opens here; the
                        // region lasts until depth returns to this level.
                        regions.push(depth);
                        pending_attr = false;
                        in_test_here = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last().is_some_and(|&d| depth <= d) {
                        regions.pop();
                    }
                }
                // `#[cfg(test)] use ...;` or `mod tests;` — the
                // attribute applied to a braceless item.
                ';' if pending_attr && !code.trim_start().starts_with("#[") => {
                    pending_attr = false;
                }
                _ => {}
            }
        }
        mask[idx] = in_test_here || !regions.is_empty();
    }
    mask
}

/// Per-file facts the path-sensitive rules need. Paths are
/// root-relative with forward slashes.
#[derive(Debug, Clone)]
pub struct FileCtx {
    pub path: String,
}

impl FileCtx {
    pub fn new(path: impl Into<String>) -> Self {
        FileCtx { path: path.into() }
    }

    /// Whole-file test/bench/example context: exempt from the
    /// robustness rules (panicking on bad input is fine there).
    pub(crate) fn is_test_file(&self) -> bool {
        let p = &self.path;
        p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
            || p.starts_with("tests/")
            || p.starts_with("benches/")
            || p.starts_with("examples/")
            || p.starts_with("crates/bench/")
    }

    /// crates/server source outside the sync indirection module.
    fn is_server_non_sync(&self) -> bool {
        self.path.starts_with("crates/server/src/") && !self.path.ends_with("/sync.rs")
    }

    /// Crate roots (lib.rs, main.rs, src/bin/*.rs) must forbid unsafe.
    fn is_crate_root(&self) -> bool {
        let p = &self.path;
        (p.starts_with("crates/") && (p.ends_with("/src/lib.rs") || p.ends_with("/src/main.rs")))
            || (p.contains("/src/bin/") && p.ends_with(".rs"))
    }
}

/// True when `lines[idx]`, one of the `window - 1` lines above it, or any
/// line of the contiguous comment block immediately above it carries
/// `marker` in a comment — i.e. the site is justified. The block rule
/// lets a multi-line justification keep its marker on the first line
/// without the fixed window cutting it off.
pub(crate) fn has_marker(lines: &[Line], idx: usize, marker: &str, window: usize) -> bool {
    let lo = idx.saturating_sub(window - 1);
    if lines[lo..=idx].iter().any(|l| l.comment.contains(marker)) {
        return true;
    }
    // Walk the attached block directly above the site: comment lines,
    // plus attribute lines (`#[allow(...)]` between a justification and
    // its site must not orphan the comment).
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#!");
        if !code.is_empty() && !is_attr {
            return false;
        }
        if l.comment.contains(marker) {
            return true;
        }
        if l.comment.is_empty() && !is_attr {
            // A blank line ends the attached block.
            return false;
        }
    }
    false
}

const ATOMIC_ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs every file-local rule and pass over one file. Allowlisting and
/// the cross-file lifecycle pass happen in the caller (see
/// [`Allowlist`] and [`scan_repo`]).
pub fn scan_file(ctx: &FileCtx, src: &str) -> Vec<Diagnostic> {
    let lines = strip_source(src);
    let mask = test_mask(&lines);
    let tf = TokenFile::new(lex(src));
    let fs = FileScan {
        ctx,
        lines: &lines,
        mask: &mask,
        tf: &tf,
    };
    let mut out = scan_one(&fs);
    out.sort_by_key(|d| d.line);
    out
}

/// Runs the whole suite — file-local rules plus the cross-file
/// lifecycle pass — over a set of `(ctx, source)` pairs.
pub fn scan_repo(files: &[(FileCtx, String)]) -> Vec<Diagnostic> {
    let parsed: Vec<(usize, Vec<Line>, Vec<bool>, TokenFile)> = files
        .iter()
        .enumerate()
        .map(|(i, (_, src))| {
            let lines = strip_source(src);
            let mask = test_mask(&lines);
            (i, lines, mask, TokenFile::new(lex(src)))
        })
        .collect();
    let scans: Vec<FileScan<'_>> = parsed
        .iter()
        .map(|(i, lines, mask, tf)| FileScan {
            ctx: &files[*i].0,
            lines,
            mask,
            tf,
        })
        .collect();
    let mut out = Vec::new();
    for fs in &scans {
        out.extend(scan_one(fs));
    }
    passes::lifecycle_pass(&scans, &mut out);
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

/// The file-local rules + passes over one prepared [`FileScan`].
fn scan_one(fs: &FileScan<'_>) -> Vec<Diagnostic> {
    let ctx = fs.ctx;
    let lines = fs.lines;
    let mask = fs.mask;
    let code = &fs.tf.code;
    let mut out = Vec::new();
    let diag = |rule: &'static str, line: usize, msg: String| Diagnostic {
        rule,
        path: ctx.path.clone(),
        line,
        msg,
    };
    let masked = |line: usize| mask.get(line.saturating_sub(1)).copied().unwrap_or(false);
    let justified = |line: usize, marker: &str| {
        let idx = line.saturating_sub(1);
        idx < lines.len() && has_marker(lines, idx, marker, 3)
    };

    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| code.get(i + k).map(|n| n.text.as_str());
        let prev = |k: usize| i.checked_sub(k).map(|j| code[j].text.as_str());

        // ordering-comment: atomic `Ordering::Variant` uses need a
        // justification. The five variant names keep std::cmp::Ordering
        // (Less/Equal/Greater) out of scope; match-pattern positions
        // (`Ordering::Relaxed => ...`, `A | B`, the second argument of
        // `matches!`) are semantics code inspecting an ordering, not an
        // atomic access site.
        if t.text == "Ordering" && next(1) == Some("::") {
            if let Some(variant) = next(2) {
                if ATOMIC_ORDERING_VARIANTS.contains(&variant) {
                    // Inside `matches!(expr, pat)`: walk back to the
                    // unmatched `(` and check what invoked it.
                    let in_matches_macro = || {
                        let mut depth = 0i32;
                        for j in (0..i).rev().take(40) {
                            match code[j].text.as_str() {
                                ")" | "]" | "}" => depth += 1,
                                "(" | "[" | "{" if depth > 0 => depth -= 1,
                                "(" => {
                                    return j >= 2
                                        && code[j - 1].text == "!"
                                        && code[j - 2].text == "matches";
                                }
                                "[" | "{" => return false,
                                _ => {}
                            }
                        }
                        false
                    };
                    let in_pattern = matches!(next(3), Some("=>") | Some("|"))
                        || prev(1) == Some("|")
                        || in_matches_macro();
                    if !in_pattern && !justified(t.line, "ordering:") {
                        out.push(diag(
                            "ordering-comment",
                            t.line,
                            format!(
                                "`Ordering::{variant}` without an adjacent \
                                 `// ordering:` justification"
                            ),
                        ));
                    }
                }
            }
        }

        // unwrap-invariant: production code must not panic casually.
        if !ctx.is_test_file()
            && !masked(t.line)
            && prev(1) == Some(".")
            && ((t.text == "unwrap" && next(1) == Some("(") && next(2) == Some(")"))
                || (t.text == "expect" && next(1) == Some("(")))
            && !justified(t.line, "invariant:")
        {
            out.push(diag(
                "unwrap-invariant",
                t.line,
                "`unwrap()`/`expect(` in non-test code without an \
                 adjacent `// invariant:` justification"
                    .into(),
            ));
        }

        // cast-narrowing: silent truncation needs a guard note.
        if !ctx.is_test_file()
            && !masked(t.line)
            && t.text == "as"
            && matches!(next(1), Some("u32") | Some("usize"))
            && !justified(t.line, "narrowing:")
        {
            out.push(diag(
                "cast-narrowing",
                t.line,
                "bare `as u32`/`as usize` without an adjacent \
                 `// narrowing:` justification"
                    .into(),
            ));
        }

        // atomic-import: crates/server goes through its sync module so
        // the model-check build swaps in the shims everywhere at once.
        if ctx.is_server_non_sync()
            && t.text == "std"
            && next(1) == Some("::")
            && next(2) == Some("sync")
            && next(3) == Some("::")
            && next(4) == Some("atomic")
        {
            out.push(diag(
                "atomic-import",
                t.line,
                "direct `std::sync::atomic` use in crates/server; \
                 import via `crate::sync` so model checking covers it"
                    .into(),
            ));
        }

        // unsafe-allow: re-enabling unsafe needs a design rationale.
        if t.text == "allow" && next(1) == Some("(") && next(2) == Some("unsafe_code") {
            let lo = t.line.saturating_sub(2);
            let pointed = fs.tf.comment_in_lines(lo, t.line, "DESIGN.md");
            if !pointed {
                out.push(diag(
                    "unsafe-allow",
                    t.line,
                    "`allow(unsafe_code)` without a `// see DESIGN.md` pointer".into(),
                ));
            }
        }
    }

    // forbid-unsafe: crate roots must carry the attribute.
    if ctx.is_crate_root() {
        let has_forbid = code.windows(6).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
        });
        if !has_forbid {
            out.push(diag(
                "forbid-unsafe",
                1,
                "crate root missing `#![forbid(unsafe_code)]`".into(),
            ));
        }
    }

    passes::epoch_pass(fs, &mut out);
    passes::publication_pass(fs, &mut out);
    passes::live_mask_pass(fs, &mut out);
    out
}

/// The allowlist: `rule path-prefix` lines, `#` comments and blanks
/// ignored. A diagnostic is suppressed when an entry's rule matches and
/// the diagnostic's path starts with the entry's prefix.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(prefix), None) => {
                    entries.push((rule.to_string(), prefix.to_string()));
                }
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `rule path-prefix`, got {raw:?}",
                        n + 1
                    ));
                }
            }
        }
        Ok(Allowlist { entries })
    }

    pub fn permits(&self, d: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|(rule, prefix)| rule == d.rule && d.path.starts_with(prefix))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

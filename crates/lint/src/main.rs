//! CLI for `ads-lint`: walk a source tree, run every rule, print
//! `path:line: [rule] message` diagnostics, and exit non-zero when any
//! survive the allowlist — CI-gateable with no configuration beyond an
//! optional `lint-allow.txt` at the root.
//!
//! Usage: `ads-lint [--allowlist FILE] [ROOT]`
//!
//! ROOT defaults to the current directory; the allowlist defaults to
//! `ROOT/lint-allow.txt` when present.

#![forbid(unsafe_code)]

use ads_lint::{scan_repo, Allowlist, FileCtx};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ads-lint: --allowlist requires a file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ads-lint [--allowlist FILE] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("ads-lint: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let allowlist = {
        let path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.txt"));
        if path.exists() {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("ads-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Allowlist::parse(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("ads-lint: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            Allowlist::default()
        }
    };

    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    // Read everything up front: the lifecycle pass pairs promotion
    // sites with clears across files, so scanning is repo-at-once.
    let mut sources: Vec<(FileCtx, String)> = Vec::with_capacity(files.len());
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ads-lint: cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        sources.push((FileCtx::new(relative_slash_path(&root, file)), src));
    }

    let mut shown = 0usize;
    let mut suppressed = 0usize;
    for d in scan_repo(&sources) {
        if allowlist.permits(&d) {
            suppressed += 1;
        } else {
            println!("{d}");
            shown += 1;
        }
    }

    eprintln!(
        "ads-lint: {} file(s), {shown} finding(s), {suppressed} allowlisted",
        files.len()
    );
    if shown > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively collects `.rs` files, skipping build output, VCS
/// metadata, and hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Root-relative path with forward slashes, matching allowlist entries
/// and FileCtx expectations on every platform.
fn relative_slash_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

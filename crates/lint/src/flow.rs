//! Function-body parsing and the intra-function dataflow layer.
//!
//! The protocol passes need more than token matching: the
//! epoch-discipline rule asks whether a function that writes
//! reader-visible zone state bumps `mutation_epoch` **on every path**.
//! Answering that requires a control-flow view of the body, so this
//! module parses each `fn` item's token range into a statement tree —
//!
//! * [`Node::Leaf`]: a straight-line statement (token positions);
//! * [`Node::Seq`]: a block, statements in order;
//! * [`Node::Branch`]: `if`/`else` chains and `match` arms, with an
//!   exhaustiveness flag (`if` without `else` is not exhaustive);
//! * [`Node::Loop`]: `loop`/`while`/`for` bodies (may run zero times);
//!
//! — and evaluates path predicates over it by branch join: a `Seq`
//! satisfies "on every path" if any statement does; a `Branch` only if
//! it is exhaustive and **all** alternatives do; a `Loop` never does
//! (zero iterations is a path).
//!
//! Deliberate approximations, chosen to be cheap and predictable:
//! expression-position control flow (`let x = if c { .. } else { .. }`)
//! is a single leaf, so a bump anywhere inside counts as unconditional;
//! early `return`s are not separate exit paths. Sites these misjudge
//! carry `// epoch:` justifications instead — the pass's escape hatch.

use crate::lexer::{Tok, TokKind};

/// A parsed statement tree node. Token positions index into the *code*
/// token vector (comments filtered out) the parser was given.
#[derive(Debug)]
pub enum Node {
    /// Straight-line statement: the positions of its tokens.
    Leaf(Vec<usize>),
    /// Block: child statements in source order.
    Seq(Vec<Node>),
    /// Alternatives (`if`/`else` chain or `match` arms). `exhaustive`
    /// is false for `if` without a final `else`.
    Branch(Vec<Node>, bool),
    /// Loop body — may execute zero times.
    Loop(Box<Node>),
}

/// One `fn` item found in a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub header_line: usize,
    /// Last line of the body (closing brace).
    pub end_line: usize,
    /// Code-token positions of the body, outer braces excluded.
    pub body: (usize, usize),
    /// Parsed statement tree of the body.
    pub tree: Node,
}

/// A file lexed once, with the comment tokens split out so the parser
/// sees pure code while the justification rules keep comment text and
/// positions.
pub struct TokenFile {
    /// Code tokens only (no comments), in source order.
    pub code: Vec<Tok>,
    /// `(line, text)` of every comment token.
    pub comments: Vec<(usize, String)>,
}

impl TokenFile {
    /// Splits a raw lexer stream into the code/comment views.
    pub fn new(toks: Vec<Tok>) -> TokenFile {
        let mut code = Vec::with_capacity(toks.len());
        let mut comments = Vec::new();
        for t in toks {
            if t.kind == TokKind::Comment {
                comments.push((t.line, t.text));
            } else {
                code.push(t);
            }
        }
        TokenFile { code, comments }
    }

    /// True when any comment on a line in `[lo, hi]` contains `marker`.
    pub fn comment_in_lines(&self, lo: usize, hi: usize, marker: &str) -> bool {
        self.comments
            .iter()
            .any(|(line, text)| *line >= lo && *line <= hi && text.contains(marker))
    }

    /// Parses every `fn` item in the file. Nested fns parse as their
    /// own items too (their bodies are also inside the outer item's
    /// tree — harmless double coverage).
    pub fn functions(&self) -> Vec<FnItem> {
        let code = &self.code;
        let mut items = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            if code[i].kind == TokKind::Ident && code[i].text == "fn" {
                if let Some(item) = self.parse_fn(i) {
                    i = item.body.1 + 1;
                    items.push(item);
                    continue;
                }
            }
            i += 1;
        }
        items
    }

    /// Parses one `fn` starting at the `fn` keyword position, or None
    /// for declarations without a body (`fn f();` in traits) and
    /// `fn`-pointer types (`fn(i64) -> T`).
    fn parse_fn(&self, fn_pos: usize) -> Option<FnItem> {
        let code = &self.code;
        let name_tok = code.get(fn_pos + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let name = name_tok.text.clone();
        // Scan for the body's `{` at bracket depth 0; a `;` first means
        // a bodyless declaration.
        let mut depth = 0i32;
        let mut j = fn_pos + 2;
        loop {
            let t = code.get(j)?;
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" if depth == 0 => return None,
                    _ => {}
                }
            }
            j += 1;
        }
        let open = j;
        let close = self.matching_brace(open)?;
        let body = (open + 1, close);
        let mut pos = body.0;
        let stmts = self.parse_seq(&mut pos, body.1);
        Some(FnItem {
            name,
            header_line: code[fn_pos].line,
            end_line: code[close].line,
            body: (open, close),
            tree: Node::Seq(stmts),
        })
    }

    /// Position of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> Option<usize> {
        let code = &self.code;
        let mut depth = 0i32;
        for (j, t) in code.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(j);
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Parses statements from `*pos` until `end` (exclusive) or an
    /// unmatched `}`.
    fn parse_seq(&self, pos: &mut usize, end: usize) -> Vec<Node> {
        let code = &self.code;
        let mut out = Vec::new();
        while *pos < end {
            let t = &code[*pos];
            if t.kind == TokKind::Punct && t.text == "}" {
                break;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        out.extend(self.parse_if(pos, end));
                        continue;
                    }
                    "match" => {
                        out.extend(self.parse_match(pos, end));
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        *pos += 1;
                        let header = self.collect_until_block(pos, end);
                        if !header.is_empty() {
                            out.push(Node::Leaf(header));
                        }
                        let body = self.parse_block(pos, end);
                        out.push(Node::Loop(Box::new(body)));
                        continue;
                    }
                    "unsafe" if self.peek_is(*pos + 1, "{") => {
                        *pos += 1;
                        out.push(self.parse_block(pos, end));
                        continue;
                    }
                    _ => {}
                }
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                out.push(self.parse_block(pos, end));
                continue;
            }
            out.push(Node::Leaf(self.collect_stmt(pos, end)));
        }
        out
    }

    fn peek_is(&self, pos: usize, text: &str) -> bool {
        self.code.get(pos).is_some_and(|t| t.text == text)
    }

    /// Parses a `{ ... }` block at `*pos` into a `Seq`. If the token at
    /// `*pos` is not `{`, returns an empty Seq (malformed input
    /// degrades to nothing rather than looping).
    fn parse_block(&self, pos: &mut usize, end: usize) -> Node {
        if !self.peek_is(*pos, "{") {
            return Node::Seq(Vec::new());
        }
        *pos += 1; // consume `{`
        let stmts = self.parse_seq(pos, end);
        if self.peek_is(*pos, "}") {
            *pos += 1;
        }
        Node::Seq(stmts)
    }

    /// `if cond { .. } [else if .. ] [else { .. }]` → condition leaf +
    /// Branch node.
    fn parse_if(&self, pos: &mut usize, end: usize) -> Vec<Node> {
        *pos += 1; // consume `if`
        let cond = self.collect_until_block(pos, end);
        let mut nodes = Vec::new();
        if !cond.is_empty() {
            nodes.push(Node::Leaf(cond));
        }
        let then = self.parse_block(pos, end);
        let mut alts = vec![then];
        let mut exhaustive = false;
        if self.code.get(*pos).is_some_and(|t| t.text == "else") {
            *pos += 1;
            if self.code.get(*pos).is_some_and(|t| t.text == "if") {
                let mut tail = self.parse_if(pos, end);
                // The nested chain's own exhaustiveness propagates.
                if let Some(Node::Branch(inner, inner_ex)) = tail.pop() {
                    nodes.extend(tail); // nested condition leaf
                    exhaustive = inner_ex;
                    alts.push(Node::Branch(inner, inner_ex));
                }
            } else {
                alts.push(self.parse_block(pos, end));
                exhaustive = true;
            }
        }
        nodes.push(Node::Branch(alts, exhaustive));
        nodes
    }

    /// `match scrutinee { pat => body, ... }` → scrutinee leaf +
    /// exhaustive Branch over arm bodies. Pattern tokens are dropped:
    /// they bind, they don't write.
    fn parse_match(&self, pos: &mut usize, end: usize) -> Vec<Node> {
        *pos += 1; // consume `match`
        let scrutinee = self.collect_until_block(pos, end);
        let mut nodes = Vec::new();
        if !scrutinee.is_empty() {
            nodes.push(Node::Leaf(scrutinee));
        }
        if !self.peek_is(*pos, "{") {
            nodes.push(Node::Branch(Vec::new(), false));
            return nodes;
        }
        let close = self.matching_brace(*pos).unwrap_or(end).min(end);
        *pos += 1;
        let mut arms = Vec::new();
        while *pos < close {
            // Pattern (and optional guard) up to `=>` at depth 0.
            let mut depth = 0i32;
            while *pos < close {
                let t = &self.code[*pos];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=>" if depth == 0 => break,
                        _ => {}
                    }
                }
                *pos += 1;
            }
            if *pos >= close {
                break;
            }
            *pos += 1; // consume `=>`
            if self.peek_is(*pos, "{") {
                arms.push(self.parse_block(pos, close));
                if self.peek_is(*pos, ",") {
                    *pos += 1;
                }
            } else {
                // Expression arm: tokens to the `,` at depth 0 (or the
                // match's closing brace).
                let mut leaf = Vec::new();
                let mut d = 0i32;
                while *pos < close {
                    let t = &self.code[*pos];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => d += 1,
                            ")" | "]" | "}" => d -= 1,
                            "," if d == 0 => break,
                            _ => {}
                        }
                    }
                    leaf.push(*pos);
                    *pos += 1;
                }
                if self.peek_is(*pos, ",") {
                    *pos += 1;
                }
                arms.push(Node::Leaf(leaf));
            }
        }
        if self.peek_is(*pos, "}") {
            *pos += 1;
        }
        // Rust matches are exhaustive by construction.
        nodes.push(Node::Branch(arms, true));
        nodes
    }

    /// Collects tokens until a `{` at bracket depth 0 (not consumed) —
    /// the condition of an `if`/`while`/`for`/`match` header. Struct
    /// literals cannot appear brace-free in these positions, so the
    /// first depth-0 `{` is always the block.
    fn collect_until_block(&self, pos: &mut usize, end: usize) -> Vec<usize> {
        let code = &self.code;
        let mut depth = 0i32;
        let mut out = Vec::new();
        while *pos < end {
            let t = &code[*pos];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    _ => {}
                }
            }
            out.push(*pos);
            *pos += 1;
        }
        out
    }

    /// Collects a straight-line statement: tokens to the `;` at depth 0
    /// (consumed), with depth-0 `{...}` groups (struct literals,
    /// trailing closures, `let..else` blocks, expression-position
    /// control flow) folded into the leaf.
    fn collect_stmt(&self, pos: &mut usize, end: usize) -> Vec<usize> {
        let code = &self.code;
        let mut depth = 0i32;
        let mut out = Vec::new();
        while *pos < end {
            let t = &code[*pos];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            // Enclosing block closes: leaf ends here.
                            return out;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => {
                        out.push(*pos);
                        *pos += 1;
                        return out;
                    }
                    _ => {}
                }
            }
            out.push(*pos);
            *pos += 1;
        }
        out
    }
}

/// Evaluates "does `pred` hold on every path through `node`", where
/// `pred` tests a single leaf.
pub fn on_every_path(node: &Node, pred: &dyn Fn(&[usize]) -> bool) -> bool {
    match node {
        Node::Leaf(toks) => pred(toks),
        Node::Seq(stmts) => stmts.iter().any(|s| on_every_path(s, pred)),
        Node::Branch(alts, exhaustive) => {
            *exhaustive && !alts.is_empty() && alts.iter().all(|a| on_every_path(a, pred))
        }
        Node::Loop(_) => false,
    }
}

/// Collects every leaf of the tree, in source order, into `out`.
pub fn leaves<'a>(node: &'a Node, out: &mut Vec<&'a Vec<usize>>) {
    match node {
        Node::Leaf(toks) => out.push(toks),
        Node::Seq(stmts) => {
            for s in stmts {
                leaves(s, out);
            }
        }
        Node::Branch(alts, _) => {
            for a in alts {
                leaves(a, out);
            }
        }
        Node::Loop(body) => leaves(body, out),
    }
}

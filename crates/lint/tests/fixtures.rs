//! Fixture tests for every ads-lint rule: each fixture is an inline
//! source string scanned through the public API, with positive cases
//! (the rule fires at the right line) and negative cases (justified or
//! out-of-scope code stays clean).

use ads_lint::{scan_file, scan_repo, strip_source, test_mask, Allowlist, Diagnostic, FileCtx};

fn rules_at(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
    scan_file(&FileCtx::new(path), src)
}

/// Diagnostics of one rule only — pass fixtures often trip a second
/// rule on purpose (an unjustified write is usually also an epoch
/// finding), and each test asserts on its own pass.
fn only(diags: Vec<Diagnostic>, rule: &str) -> Vec<(String, usize)> {
    diags
        .into_iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.path, d.line))
        .collect()
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_strips_strings_and_comments() {
    let src = "let x = \"Ordering::Relaxed .unwrap()\"; // ordering: not code\n\
               let y = 1; /* as u32 */\n";
    let lines = strip_source(src);
    assert!(!lines[0].code.contains("Relaxed"));
    assert!(lines[0].comment.contains("ordering:"));
    assert!(!lines[1].code.contains("u32"));
    assert!(lines[1].comment.contains("as u32"));
}

#[test]
fn lexer_handles_raw_strings_and_chars() {
    let src = "let s = r#\"x.unwrap() \"quoted\" \"#;\n\
               let c = '\"'; let l: &'static str = \"ok\";\n\
               let esc = '\\n'; x.unwrap();\n";
    let lines = strip_source(src);
    assert!(!lines[0].code.contains("unwrap"), "{:?}", lines[0].code);
    // The double quote hidden in a char literal must not open a string.
    assert!(!lines[1].code.contains("ok"));
    // Code after an escaped char literal is still seen.
    assert!(lines[2].code.contains(".unwrap()"));
}

#[test]
fn lexer_handles_nested_block_comments() {
    let src = "/* outer /* inner */ still comment .unwrap() */ let x = 1;\n";
    let lines = strip_source(src);
    assert!(!lines[0].code.contains("unwrap"));
    assert!(lines[0].code.contains("let x = 1;"));
}

#[test]
fn test_mask_tracks_cfg_test_modules() {
    let src = "fn prod() { x.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t() { y.unwrap(); }\n\
               }\n\
               fn prod2() {}\n";
    let lines = strip_source(src);
    let mask = test_mask(&lines);
    assert_eq!(mask, vec![false, true, true, true, true, false]);
}

// ------------------------------------------------------ ordering-comment

#[test]
fn ordering_comment_fires_without_justification() {
    let src = "use std::sync::atomic::Ordering;\n\
               fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n";
    let diags = scan("crates/core/src/x.rs", src);
    assert_eq!(rules_at(&diags), vec![("ordering-comment", 2)]);
}

#[test]
fn ordering_comment_accepts_adjacent_marker() {
    let src = "fn f(a: &AtomicU64) {\n\
                   // ordering: Acquire — pairs with publish().\n\
                   a.load(Ordering::Acquire);\n\
               }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn ordering_comment_ignores_cmp_ordering() {
    let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }\n\
               fn g(o: Ordering) { matches!(o, Ordering::Equal); }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn ordering_comment_applies_to_test_code_too() {
    // Concurrency tests document their orderings like production code.
    let src = "#[cfg(test)]\nmod tests {\n fn t(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n}\n";
    let diags = scan("crates/core/src/x.rs", src);
    assert_eq!(rules_at(&diags), vec![("ordering-comment", 3)]);
}

// ------------------------------------------------------ unwrap-invariant

#[test]
fn unwrap_fires_in_production_code() {
    let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"m\"); }\n";
    let diags = scan("crates/core/src/x.rs", src);
    assert_eq!(
        rules_at(&diags),
        vec![("unwrap-invariant", 1), ("unwrap-invariant", 2)]
    );
}

#[test]
fn unwrap_accepts_invariant_tag() {
    let src = "fn f() {\n\
                   // invariant: the queue is non-empty after push above.\n\
                   x.unwrap();\n\
               }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn unwrap_exempt_in_tests_benches_examples() {
    let src = "fn f() { x.unwrap(); }\n";
    for path in [
        "crates/core/tests/t.rs",
        "tests/integration.rs",
        "examples/demo.rs",
        "crates/bench/src/report.rs",
    ] {
        assert!(scan(path, src).is_empty(), "{path} should be exempt");
    }
}

#[test]
fn unwrap_exempt_inside_cfg_test_module() {
    let src = "fn prod() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { x.unwrap(); }\n\
               }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

// -------------------------------------------------------- cast-narrowing

#[test]
fn cast_narrowing_fires_on_bare_casts() {
    let src = "fn f(x: u64) -> u32 { x as u32 }\nfn g(x: u64) -> usize { x as usize }\n";
    let diags = scan("crates/core/src/x.rs", src);
    assert_eq!(
        rules_at(&diags),
        vec![("cast-narrowing", 1), ("cast-narrowing", 2)]
    );
}

#[test]
fn cast_narrowing_accepts_marker_and_ignores_widening() {
    let src = "fn f(x: u64) -> u32 {\n\
                   // narrowing: x < u32::MAX by the block-size bound.\n\
                   x as u32\n\
               }\n\
               fn g(x: u32) -> u64 { x as u64 }\n\
               fn h() { let alias = x; }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn cast_narrowing_needs_token_boundary() {
    // `alias u32`-style substrings and identifiers ending in `as` must
    // not match.
    let src = "fn f() { let canvas_u32 = 1; bias_usize(); }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

// --------------------------------------------------------- atomic-import

#[test]
fn atomic_import_fires_only_in_server_outside_sync() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
    let diags = scan("crates/server/src/stats.rs", src);
    assert_eq!(rules_at(&diags), vec![("atomic-import", 1)]);
    assert!(scan("crates/server/src/sync.rs", src).is_empty());
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------- unsafe rules

#[test]
fn unsafe_allow_needs_design_pointer() {
    let bad = "#![allow(unsafe_code)]\n";
    let diags = scan("crates/core/src/x.rs", bad);
    assert_eq!(rules_at(&diags), vec![("unsafe-allow", 1)]);

    let good = "// SIMD intrinsics; see DESIGN.md \"unsafe policy\".\n#![allow(unsafe_code)]\n";
    assert!(scan("crates/core/src/x.rs", good).is_empty());
}

#[test]
fn forbid_unsafe_required_in_crate_roots() {
    let bare = "pub fn f() {}\n";
    for root in [
        "crates/core/src/lib.rs",
        "crates/cli/src/main.rs",
        "crates/bench/src/bin/harness.rs",
    ] {
        let diags = scan(root, bare);
        assert_eq!(rules_at(&diags), vec![("forbid-unsafe", 1)], "{root}");
    }
    // Non-root modules don't need the attribute.
    assert!(scan("crates/core/src/scan.rs", bare).is_empty());
    // Roots that carry it are clean.
    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(scan("crates/core/src/lib.rs", good).is_empty());
}

// ------------------------------------------------------------- allowlist

#[test]
fn allowlist_suppresses_by_rule_and_prefix() {
    let allow = Allowlist::parse(
        "# kernel modules may narrow under block-size guards\n\
         cast-narrowing crates/storage/\n\
         \n\
         ordering-comment crates/check/src/\n",
    )
    .unwrap();
    assert_eq!(allow.len(), 2);

    let hit = |rule, path: &str| Diagnostic {
        rule,
        path: path.into(),
        line: 1,
        msg: String::new(),
    };
    assert!(allow.permits(&hit("cast-narrowing", "crates/storage/src/scan.rs")));
    // Different rule, same path: not suppressed.
    assert!(!allow.permits(&hit("unwrap-invariant", "crates/storage/src/scan.rs")));
    // Same rule, different path: not suppressed.
    assert!(!allow.permits(&hit("cast-narrowing", "crates/server/src/stats.rs")));
}

#[test]
fn allowlist_rejects_malformed_lines() {
    assert!(Allowlist::parse("just-one-field\n").is_err());
    assert!(Allowlist::parse("rule path extra-field\n").is_err());
}

// ------------------------------------------------------ epoch-discipline

const ADAPTIVE: &str = "crates/core/src/adaptive/x.rs";

#[test]
fn epoch_fires_on_seeded_missing_bump() {
    // Seeded protocol bug: a structural write with no epoch bump means
    // the sharded republication diff never sees the change.
    let src = "impl M {\n\
                   fn grow(&mut self) {\n\
                       self.zones.push(z);\n\
                   }\n\
               }\n";
    let diags = only(scan(ADAPTIVE, src), "epoch-discipline");
    assert_eq!(diags, vec![(ADAPTIVE.to_string(), 3)]);
}

#[test]
fn epoch_accepts_unconditional_bump() {
    let src = "impl M {\n\
                   fn grow(&mut self) {\n\
                       self.zones.push(z);\n\
                       self.mutation_epoch += 1;\n\
                   }\n\
               }\n";
    assert!(only(scan(ADAPTIVE, src), "epoch-discipline").is_empty());
}

#[test]
fn epoch_fires_on_seeded_conditional_bump() {
    // The bump exists but only on one path: the dataflow join must
    // still flag the function.
    let src = "impl M {\n\
                   fn grow(&mut self, big: bool) {\n\
                       self.zones.push(z);\n\
                       if big {\n\
                           self.mutation_epoch += 1;\n\
                       }\n\
                   }\n\
               }\n";
    let diags = only(scan(ADAPTIVE, src), "epoch-discipline");
    assert_eq!(diags, vec![(ADAPTIVE.to_string(), 3)]);
}

#[test]
fn epoch_joins_exhaustive_branches() {
    // A bump in BOTH arms of an if/else covers every path.
    let src = "impl M {\n\
                   fn grow(&mut self, big: bool) {\n\
                       self.zones.push(z);\n\
                       if big {\n\
                           self.mutation_epoch += 1;\n\
                       } else {\n\
                           self.bump_epoch();\n\
                       }\n\
                   }\n\
               }\n";
    assert!(only(scan(ADAPTIVE, src), "epoch-discipline").is_empty());
}

#[test]
fn epoch_accepts_doc_justification() {
    let src = "impl M {\n\
                   /// epoch: constructor — not reader-reachable yet.\n\
                   fn with_zones(&mut self) {\n\
                       self.zones.push(z);\n\
                   }\n\
               }\n";
    assert!(only(scan(ADAPTIVE, src), "epoch-discipline").is_empty());
}

#[test]
fn epoch_out_of_scope_elsewhere() {
    let src = "fn grow(&mut self) { self.zones.push(z); }\n";
    assert!(only(scan("crates/engine/src/x.rs", src), "epoch-discipline").is_empty());
    assert!(only(
        scan("crates/core/src/adaptive/tests.rs", src),
        "epoch-discipline"
    )
    .is_empty());
}

// ------------------------------------------------ publication-discipline

const SERVER: &str = "crates/server/src/publish.rs";

#[test]
fn publication_fires_on_seeded_store_after_bump() {
    // Seeded protocol bug: the payload store lands after the
    // generation bump, so a reader acquiring the new generation can
    // read the old payload.
    let src = "fn publish_map(&self) {\n\
                   self.generation.store(2);\n\
                   self.slot.store(p);\n\
               }\n";
    let diags = only(scan(SERVER, src), "publication-discipline");
    assert_eq!(diags, vec![(SERVER.to_string(), 3)]);
}

#[test]
fn publication_accepts_store_before_bump() {
    let src = "fn publish_map(&self) {\n\
                   self.slot.store(p);\n\
                   self.generation.store(2);\n\
               }\n";
    assert!(only(scan(SERVER, src), "publication-discipline").is_empty());
}

#[test]
fn publication_allows_reads_and_lets_after_bump() {
    // Local bindings and pure reads after the bump publish nothing.
    let src = "fn publish_map(&self) {\n\
                   self.slot.store(p);\n\
                   self.generation.fetch_add(1);\n\
                   let published = self.slot.len();\n\
                   trace(published);\n\
               }\n";
    assert!(only(scan(SERVER, src), "publication-discipline").is_empty());
}

#[test]
fn publication_scopes_to_publish_fns_in_server() {
    let src = "fn rotate(&self) {\n\
                   self.generation.store(2);\n\
                   self.slot.store(p);\n\
               }\n";
    // Not a publish* fn: out of scope.
    assert!(only(scan(SERVER, src), "publication-discipline").is_empty());
    // publish* fn outside crates/server: out of scope.
    let pub_src = "fn publish_map(&self) {\n\
                       self.generation.store(2);\n\
                       self.slot.store(p);\n\
                   }\n";
    assert!(only(
        scan("crates/engine/src/x.rs", pub_src),
        "publication-discipline"
    )
    .is_empty());
}

// --------------------------------------------------------------- live-mask

const ENGINE: &str = "crates/engine/src/x.rs";

#[test]
fn live_mask_fires_on_seeded_nonlive_kernel() {
    // Seeded protocol bug: a delete-blind kernel on a path that can
    // carry tombstones silently counts dead rows.
    let src = "fn f(data: &[i64]) {\n\
                   let c = count_in_range(data, lo, hi);\n\
               }\n";
    let diags = only(scan(ENGINE, src), "live-mask");
    assert_eq!(diags, vec![(ENGINE.to_string(), 2)]);
}

#[test]
fn live_mask_accepts_justification() {
    let src = "fn f(data: &[i64]) {\n\
                   // live: data is freshly generated — no delete vector.\n\
                   let c = count_in_range(data, lo, hi);\n\
               }\n";
    assert!(only(scan(ENGINE, src), "live-mask").is_empty());
}

#[test]
fn live_mask_skips_methods_definitions_and_oracle() {
    // `payload.min_max()` is a method on another type, `fn min_max` is
    // a definition, and `scalar::` calls ARE the ground-truth oracle.
    let src = "fn min_max(c: &[i64]) -> (i64, i64) { todo() }\n\
               fn g(payload: &P) {\n\
                   let b = payload.min_max();\n\
                   let c = scalar::count_in_range(d, lo, hi);\n\
               }\n";
    assert!(only(scan(ENGINE, src), "live-mask").is_empty());
}

#[test]
fn live_mask_out_of_scope_in_kernels_and_tests() {
    let src = "fn f(data: &[i64]) { let c = count_in_range(data, lo, hi); }\n";
    // The kernel module itself defines and composes these.
    assert!(only(scan("crates/storage/src/scan.rs", src), "live-mask").is_empty());
    assert!(only(scan("crates/engine/tests/t.rs", src), "live-mask").is_empty());
    assert!(only(scan("crates/core/src/adaptive/tests.rs", src), "live-mask").is_empty());
}

// ------------------------------------------------------ lifecycle-symmetry

fn scan_pair(a: (&str, &str), b: (&str, &str)) -> Vec<Diagnostic> {
    scan_repo(&[
        (FileCtx::new(a.0), a.1.to_string()),
        (FileCtx::new(b.0), b.1.to_string()),
    ])
}

const PROMOTER: &str = "crates/core/src/adaptive/tier.rs";
const LIFECYCLE: &str = "crates/core/src/adaptive/maintenance.rs";

// A promotion site (with its epoch bump, so only the pass under test
// fires) shared by the lifecycle fixtures below.
const PROMOTE_SRC: &str = "fn promote(&mut self) {\n\
                               zone.tier = Some(t);\n\
                               self.mutation_epoch += 1;\n\
                           }\n";

#[test]
fn lifecycle_fires_on_seeded_missing_clear() {
    // Seeded protocol bug: merge restructures zones but leaves the
    // promoted tier of the absorbed zone dangling.
    let merge = "fn merge_zones(&mut self) {\n\
                     self.zones.remove(i);\n\
                     self.mutation_epoch += 1;\n\
                 }\n";
    let diags = only(
        scan_pair((PROMOTER, PROMOTE_SRC), (LIFECYCLE, merge)),
        "lifecycle-symmetry",
    );
    assert_eq!(diags, vec![(LIFECYCLE.to_string(), 1)]);
}

#[test]
fn lifecycle_accepts_clear_take_or_drop() {
    for clear in [
        "zone.tier = None;",
        "zone.tier.take();",
        "zone.drop_tier();",
    ] {
        let merge = format!(
            "fn merge_zones(&mut self) {{\n\
                 {clear}\n\
                 self.zones.remove(i);\n\
                 self.mutation_epoch += 1;\n\
             }}\n"
        );
        let diags = only(
            scan_pair((PROMOTER, PROMOTE_SRC), (LIFECYCLE, &merge)),
            "lifecycle-symmetry",
        );
        assert!(diags.is_empty(), "{clear} should count as a clear");
    }
}

#[test]
fn lifecycle_accepts_justification() {
    let merge = "/// lifecycle: only Dead zones merge; tier cleared at death.\n\
                 fn merge_zones(&mut self) {\n\
                     self.zones.remove(i);\n\
                     self.mutation_epoch += 1;\n\
                 }\n";
    assert!(only(
        scan_pair((PROMOTER, PROMOTE_SRC), (LIFECYCLE, merge)),
        "lifecycle-symmetry"
    )
    .is_empty());
}

#[test]
fn lifecycle_exempts_read_only_deciders() {
    // `should_split` matches a lifecycle name but writes nothing.
    let decider = "fn should_split(&self) -> bool {\n\
                       self.zones.len() > 1\n\
                   }\n";
    assert!(only(
        scan_pair((PROMOTER, PROMOTE_SRC), (LIFECYCLE, decider)),
        "lifecycle-symmetry"
    )
    .is_empty());
}

#[test]
fn lifecycle_silent_without_promotions() {
    // No file promotes: lifecycle fns owe nothing.
    let merge = "fn merge_zones(&mut self) {\n\
                     self.zones.remove(i);\n\
                     self.mutation_epoch += 1;\n\
                 }\n";
    let plain = "fn observe(&mut self) { self.n += 1; }\n";
    assert!(only(
        scan_pair((PROMOTER, plain), (LIFECYCLE, merge)),
        "lifecycle-symmetry"
    )
    .is_empty());
}

// -------------------------------------------- token-matcher regressions

#[test]
fn ordering_comment_exempts_matches_macro() {
    // `matches!(ord, Ordering::SeqCst)` inspects an ordering value —
    // it IS a match pattern, not an atomic access site.
    let src = "fn f(ord: Ordering) -> bool { matches!(ord, Ordering::SeqCst) }\n";
    assert!(scan("crates/check/src/x.rs", src).is_empty());
}

#[test]
fn marker_survives_intervening_attribute() {
    // An `#[allow(...)]` between the justification and its site must
    // not orphan the comment.
    let src = "fn f(a: &AtomicU64) {\n\
                   // ordering: Relaxed — single unobserved cell.\n\
                   #[allow(clippy::redundant_closure_call)]\n\
                   (cb)(a.load(Ordering::Relaxed));\n\
               }\n";
    assert!(scan("crates/core/src/x.rs", src).is_empty());
}

// ------------------------------------------------------------ end-to-end

#[test]
fn scan_reports_diagnostics_in_line_order_with_display_format() {
    let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n\
               fn g() { x.unwrap(); }\n";
    let diags = scan("crates/core/src/x.rs", src);
    assert_eq!(
        rules_at(&diags),
        vec![("ordering-comment", 1), ("unwrap-invariant", 2)]
    );
    assert_eq!(
        diags[0].to_string(),
        "crates/core/src/x.rs:1: [ordering-comment] `Ordering::Release` \
         without an adjacent `// ordering:` justification"
    );
}

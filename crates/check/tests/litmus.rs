//! Litmus tests for the model checker itself: classic weak-memory shapes
//! where the correct outcome set is known from the C++11/Rust memory
//! model. These prove the checker finds real bugs (stale reads under
//! `Relaxed`) and does NOT report false positives on correctly
//! synchronized code.

use ads_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use ads_check::sync::{thread, Arc, Condvar, Mutex};
use ads_check::{model, try_model, Config};

/// Message passing with Release/Acquire: the reader that sees the flag
/// must see the data. Correct code — the checker must NOT fail.
#[test]
fn message_passing_release_acquire_passes() {
    let explored = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            // ordering: Relaxed — ordered by the Release store of `flag`.
            d.store(42, Ordering::Relaxed);
            // ordering: Release — publishes the data store above.
            f.store(1, Ordering::Release);
        });
        // ordering: Acquire — pairs with the Release store of `flag`.
        if flag.load(Ordering::Acquire) == 1 {
            // ordering: Relaxed — ordered by the Acquire load above.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    // Both flag outcomes (0 and 1 observed) must have been explored.
    assert!(explored.executions >= 2, "explored {explored:?}");
}

/// The same shape with the Release downgraded to Relaxed: now a reader
/// may see flag == 1 but stale data == 0. The checker MUST fail, even
/// though the host (x86 TSO) would never exhibit this reordering.
#[test]
fn message_passing_relaxed_flag_fails() {
    let report = try_model(Config::default(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            // ordering: Relaxed — BUG under test: nothing orders `data`.
            d.store(42, Ordering::Relaxed);
            // ordering: Relaxed — BUG under test: no release pairing.
            f.store(1, Ordering::Relaxed);
        });
        // ordering: Acquire — correct on the reader side, but the writer
        // never releases, so it synchronizes with nothing.
        if flag.load(Ordering::Acquire) == 1 {
            // ordering: Relaxed — may legally observe 0 here.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    })
    .expect_err("relaxed publication must be caught");
    assert!(report.contains("panicked"), "report: {report}");
}

/// The dual bug: Release store kept, but the reader loads the flag
/// `Relaxed` — no acquire, no synchronizes-with, stale data reachable.
#[test]
fn message_passing_relaxed_reader_fails() {
    try_model(Config::default(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            // ordering: Relaxed — ordered by the Release store below.
            d.store(42, Ordering::Relaxed);
            // ordering: Release — correct writer side.
            f.store(1, Ordering::Release);
        });
        // ordering: Relaxed — BUG under test: discards the pairing.
        if flag.load(Ordering::Relaxed) == 1 {
            // ordering: Relaxed — may legally observe 0 here.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    })
    .expect_err("relaxed consumption must be caught");
}

/// Store buffering (Dekker): with SeqCst both threads cannot read 0.
/// Our SeqCst model (a global clock every SeqCst op joins) excludes the
/// r1 == r2 == 0 outcome, so this must pass.
#[test]
fn store_buffering_seqcst_excludes_both_zero() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            // ordering: SeqCst — Dekker-style flag needs total order.
            x2.store(1, Ordering::SeqCst);
            // ordering: SeqCst — must observe the other thread's store.
            y2.load(Ordering::SeqCst)
        });
        // ordering: SeqCst — Dekker-style flag needs total order.
        y.store(1, Ordering::SeqCst);
        // ordering: SeqCst — must observe the other thread's store.
        let r1 = x.load(Ordering::SeqCst);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "both threads read 0 under SeqCst");
    });
}

/// Store buffering with Relaxed: r1 == r2 == 0 IS a legal outcome and
/// the checker must find the interleaving+visibility that produces it.
#[test]
fn store_buffering_relaxed_finds_both_zero() {
    try_model(Config::default(), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            // ordering: Relaxed — BUG under test: Dekker needs SeqCst.
            x2.store(1, Ordering::Relaxed);
            // ordering: Relaxed — BUG under test: may miss the store.
            y2.load(Ordering::Relaxed)
        });
        // ordering: Relaxed — BUG under test: Dekker needs SeqCst.
        y.store(1, Ordering::Relaxed);
        // ordering: Relaxed — BUG under test: may miss the store.
        let r1 = x.load(Ordering::Relaxed);
        let r2 = t.join().unwrap();
        assert!(r1 == 1 || r2 == 1, "both threads read 0");
    })
    .expect_err("relaxed store buffering must expose r1 == r2 == 0");
}

/// Coherence: a thread that observed value 2 of a location never later
/// observes value 1 (per-location modification order is respected even
/// under Relaxed).
#[test]
fn coherence_no_going_back() {
    model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            // ordering: Relaxed — monotone counter, coherence suffices.
            x2.store(1, Ordering::Relaxed);
            // ordering: Relaxed — monotone counter, coherence suffices.
            x2.store(2, Ordering::Relaxed);
        });
        // ordering: Relaxed — coherence still forbids regression.
        let a = x.load(Ordering::Relaxed);
        // ordering: Relaxed — coherence still forbids regression.
        let b = x.load(Ordering::Relaxed);
        assert!(b >= a, "coherence violated: read {a} then {b}");
        t.join().unwrap();
    });
}

/// Mutexes synchronize: a counter incremented under a lock by two
/// threads always ends at 2 (no lost update), and the lock also
/// publishes plain (modeled-atomic Relaxed) data.
#[test]
fn mutex_counter_no_lost_update() {
    model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let mut g = n2.lock().unwrap();
            *g += 1;
        });
        {
            let mut g = n.lock().unwrap();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// fetch_add is a read-modify-write: two concurrent increments never
/// lose an update even at Relaxed (RMW atomicity is independent of
/// ordering strength).
#[test]
fn fetch_add_relaxed_never_loses_updates() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            // ordering: Relaxed — RMW atomicity alone prevents loss.
            n2.fetch_add(1, Ordering::Relaxed);
        });
        // ordering: Relaxed — RMW atomicity alone prevents loss.
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        // ordering: Acquire — join already ordered the child; Acquire for
        // the final read-back.
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
}

/// A non-atomic-looking racy counter (load; add; store) DOES lose
/// updates, and the checker finds the interleaving.
#[test]
fn load_store_counter_loses_update() {
    try_model(Config::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            // ordering: SeqCst — BUG under test: strong ordering does not
            // make a load+store read-modify-write atomic.
            let v = n2.load(Ordering::SeqCst);
            // ordering: SeqCst — BUG under test: see above.
            n2.store(v + 1, Ordering::SeqCst);
        });
        // ordering: SeqCst — BUG under test: see above.
        let v = n.load(Ordering::SeqCst);
        // ordering: SeqCst — BUG under test: see above.
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        // ordering: SeqCst — final read-back.
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect_err("check-then-act counter must lose an update");
}

/// Condvar handoff: consumer waits for the producer's item; no lost
/// wakeup, no deadlock (the checker reports deadlock as a failure).
#[test]
fn condvar_handoff() {
    model(|| {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock().unwrap();
            *g = Some(7);
            cv.notify_one();
            drop(g);
        });
        let (m, cv) = &*slot;
        let mut g = m.lock().unwrap();
        while g.is_none() {
            g = cv.wait(g).unwrap();
        }
        assert_eq!(*g, Some(7));
        drop(g);
        t.join().unwrap();
    });
}

/// Deadlock detection: both threads block on a condvar nobody signals.
#[test]
fn deadlock_is_reported() {
    let report = try_model(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    })
    .expect_err("lost-forever wait must be reported");
    assert!(report.contains("deadlock"), "report: {report}");
}

/// Three threads, shared flag + data: exercises spawn/join bookkeeping
/// and the sleep-set reduction on a larger (but still finite) space.
#[test]
fn three_thread_publication() {
    let explored = model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let ready = Arc::new(AtomicBool::new(false));
        let (d1, r1) = (Arc::clone(&data), Arc::clone(&ready));
        let writer = thread::spawn(move || {
            // ordering: Relaxed — ordered by the Release store below.
            d1.store(9, Ordering::Relaxed);
            // ordering: Release — publishes `data`.
            r1.store(true, Ordering::Release);
        });
        let (d2, r2) = (Arc::clone(&data), Arc::clone(&ready));
        let reader = thread::spawn(move || {
            // ordering: Acquire — pairs with the writer's Release.
            if r2.load(Ordering::Acquire) {
                // ordering: Relaxed — ordered by the Acquire load above.
                assert_eq!(d2.load(Ordering::Relaxed), 9);
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
        // ordering: Acquire — joins already ordered both children.
        assert_eq!(data.load(Ordering::Acquire), 9);
    });
    assert!(explored.executions >= 2, "explored {explored:?}");
}

/// The exploration is deterministic: same model, same counts.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        model(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                // ordering: Relaxed — independent counter.
                x2.fetch_add(1, Ordering::Relaxed);
            });
            // ordering: Relaxed — independent counter.
            x.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.pruned, b.pruned);
}

/// Preemption bounding under-approximates: with bound 0 the buggy
/// store-buffering outcome needs no preemption to manifest via weak
/// visibility, but a context-switch-dependent bug is missed. This test
/// just checks the bound caps the state space without false failures.
#[test]
fn preemption_bound_shrinks_space() {
    let full = model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            // ordering: Relaxed — independent stores.
            x2.store(1, Ordering::Relaxed);
            // ordering: Relaxed — independent stores.
            x2.store(2, Ordering::Relaxed);
        });
        // ordering: Relaxed — concurrent observer.
        let _ = x.load(Ordering::Relaxed);
        t.join().unwrap();
    });
    let bounded = ads_check::model_with(
        Config {
            preemption_bound: Some(0),
            ..Config::default()
        },
        || {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                // ordering: Relaxed — independent stores.
                x2.store(1, Ordering::Relaxed);
                // ordering: Relaxed — independent stores.
                x2.store(2, Ordering::Relaxed);
            });
            // ordering: Relaxed — concurrent observer.
            let _ = x.load(Ordering::Relaxed);
            t.join().unwrap();
        },
    );
    assert!(
        bounded.executions <= full.executions,
        "bounded {bounded:?} vs full {full:?}"
    );
}

/// Shims degrade gracefully outside a model: plain std behavior.
#[test]
fn shims_work_outside_model() {
    let n = Arc::new(AtomicU64::new(0));
    let m = Arc::new(Mutex::new(1u64));
    let (n2, m2) = (Arc::clone(&n), Arc::clone(&m));
    let t = thread::spawn(move || {
        // ordering: Relaxed — plain counter outside any model.
        n2.fetch_add(5, Ordering::Relaxed);
        *m2.lock().unwrap() += 1;
    });
    t.join().unwrap();
    // ordering: Acquire — join already synchronized; read-back.
    assert_eq!(n.load(Ordering::Acquire), 5);
    assert_eq!(*m.lock().unwrap(), 2);
}

//! The deterministic scheduler: exhaustive DFS over interleavings plus
//! weak-memory value branching.
//!
//! ## Execution model
//!
//! A model execution runs the user closure with real OS threads, but a
//! single **token** serializes them: exactly one thread runs user code at
//! any instant. Every shim operation (mutex lock/unlock, condvar
//! wait/notify, atomic load/store/rmw, spawn/join/yield) is a *yield
//! point*: the thread declares the operation it is about to perform, a
//! scheduling decision picks which declared operation executes next, and
//! only the chosen thread proceeds. Each decision with more than one
//! candidate becomes a **branch point**; the runner re-executes the
//! closure, replaying recorded branch choices as a prefix and advancing
//! the deepest unexplored branch, until the whole tree is explored (DFS
//! over a persistent choice stack — the loom/CHESS architecture).
//!
//! ## Weak memory
//!
//! Atomics are not executed against a single "current value". Every store
//! is appended to a per-location history stamped with the storing
//! thread's vector clock (and, for `Release`-or-stronger stores, a
//! synchronization clock; RMWs extend release sequences). A load may
//! observe **any** store that per-thread coherence and happens-before do
//! not forbid; when several stores are eligible, the choice is itself a
//! branch point. An `Acquire`-or-stronger load of a `Release`-headed
//! store joins its synchronization clock — so an erroneous `Relaxed` on a
//! publication counter genuinely lets readers observe stale data, instead
//! of being masked by the host's (x86-TSO) hardware. `SeqCst` is
//! approximated by an additional global clock all `SeqCst` operations
//! join through (sound for the store-buffering shapes this repo uses; we
//! do not model fences or the full C++20 SC axioms).
//!
//! ## Reduction
//!
//! Two cuts keep the state count tractable without (for the first) losing
//! soundness:
//!
//! * **Sleep sets**: after a branch explores thread `t`, `t` is put to
//!   sleep for the sibling branches and stays asleep along them until a
//!   *dependent* operation (same location, at least one write; or a
//!   thread-control operation) executes. Sleeping threads are not
//!   re-branched, which removes interleavings that only commute
//!   independent operations. This is the classic sound partial-order
//!   reduction.
//! * **Bounded preemption** (opt-in via [`Config::preemption_bound`]):
//!   scheduling away from a thread that could have continued counts as a
//!   preemption; paths over the bound are pruned. This is a deliberate
//!   under-approximation — see DESIGN.md for what it can miss.

use crate::vclock::VClock;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

pub(crate) type Tid = usize;
pub(crate) type Addr = usize;

/// Panic payload used to unwind parked threads when an execution aborts
/// (failure found, or path pruned by a reduction). Never user-visible.
struct Abort;

/// Exploration limits and knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Hard cap on executions; exceeding it fails the model run loudly
    /// ("state space not exhausted") instead of silently passing.
    pub max_executions: usize,
    /// `Some(n)`: prune paths with more than `n` preemptive context
    /// switches (unsound under-approximation, useful for big models).
    /// `None`: fully exhaustive.
    pub preemption_bound: Option<usize>,
    /// Cap on operations per execution, to catch accidental unbounded
    /// loops inside models.
    pub max_ops_per_execution: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 500_000,
            preemption_bound: None,
            max_ops_per_execution: 20_000,
        }
    }
}

/// What a model run explored.
#[derive(Debug, Clone)]
pub struct Explored {
    /// Executions (complete or pruned) that were run.
    pub executions: usize,
    /// Executions cut short by the sleep-set reduction.
    pub pruned: usize,
}

/// One operation a thread declares at a yield point.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Pseudo-op a freshly spawned thread starts with.
    Start,
    Spawn,
    Join(Tid),
    Lock(Addr),
    Unlock(Addr),
    CvWait {
        cv: Addr,
        mutex: Addr,
    },
    CvNotifyOne(Addr),
    CvNotifyAll(Addr),
    Load {
        addr: Addr,
        ord: Ordering,
        init: u64,
    },
    Store {
        addr: Addr,
        ord: Ordering,
        init: u64,
        val: u64,
    },
    Rmw {
        addr: Addr,
        ord: Ordering,
        init: u64,
        kind: RmwKind,
        operand: u64,
    },
    Yield,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Swap,
}

/// What executing an op hands back to the declaring thread.
pub(crate) enum OpResult {
    Unit,
    Value(u64),
}

/// The footprint of an op, for the sleep-set independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Footprint {
    /// Never conflicts (pure scheduling point).
    Local,
    Read(Addr),
    Write(Addr),
    /// Touches two locations as writes (condvar ops touch cv + mutex).
    Write2(Addr, Addr),
    /// Conservatively dependent with everything (spawn/join/start).
    ThreadCtl,
}

impl Op {
    fn footprint(&self) -> Footprint {
        match self {
            Op::Start | Op::Spawn | Op::Join(_) => Footprint::ThreadCtl,
            Op::Yield => Footprint::Local,
            Op::Lock(a) | Op::Unlock(a) => Footprint::Write(*a),
            Op::CvWait { cv, mutex } => Footprint::Write2(*cv, *mutex),
            Op::CvNotifyOne(a) | Op::CvNotifyAll(a) => Footprint::Write(*a),
            Op::Load { addr, .. } => Footprint::Read(*addr),
            Op::Store { addr, .. } | Op::Rmw { addr, .. } => Footprint::Write(*addr),
        }
    }

    fn describe(&self) -> String {
        match self {
            Op::Start => "start".into(),
            Op::Spawn => "spawn".into(),
            Op::Join(t) => format!("join(T{t})"),
            Op::Lock(a) => format!("lock(m{:x})", a & 0xffff),
            Op::Unlock(a) => format!("unlock(m{:x})", a & 0xffff),
            Op::CvWait { cv, .. } => format!("cv-wait(c{:x})", cv & 0xffff),
            Op::CvNotifyOne(a) => format!("notify-one(c{:x})", a & 0xffff),
            Op::CvNotifyAll(a) => format!("notify-all(c{:x})", a & 0xffff),
            Op::Load { addr, ord, .. } => format!("load(a{:x}, {ord:?})", addr & 0xffff),
            Op::Store { addr, ord, val, .. } => {
                format!("store(a{:x}, {val}, {ord:?})", addr & 0xffff)
            }
            Op::Rmw {
                addr,
                ord,
                kind,
                operand,
                ..
            } => {
                format!("rmw-{kind:?}(a{:x}, {operand}, {ord:?})", addr & 0xffff)
            }
            Op::Yield => "yield".into(),
        }
    }
}

/// True when the two footprints may not commute.
fn dependent(a: Footprint, b: Footprint) -> bool {
    use Footprint::*;
    let touches = |f: Footprint, addr: Addr, write: bool| match f {
        Local => false,
        Read(x) => x == addr && write,
        Write(x) => x == addr,
        Write2(x, y) => x == addr || y == addr,
        ThreadCtl => true,
    };
    match (a, b) {
        (Local, _) | (_, Local) => false,
        (ThreadCtl, _) | (_, ThreadCtl) => true,
        (Read(x), other) => touches(other, x, true),
        (Write(x), other) => touches(other, x, false) || matches!(other, Read(y) if y == x),
        (Write2(x, y), other) => {
            touches(other, x, false)
                || touches(other, y, false)
                || matches!(other, Read(z) if z == x || z == y)
        }
    }
}

/// A store in a location's modification order.
#[derive(Debug, Clone)]
struct StoreElem {
    val: u64,
    /// The storing thread's full clock at the store event (used for the
    /// "may this load still observe that store?" happens-before test).
    event_vc: VClock,
    /// The clock an acquire-load of this store synchronizes with (release
    /// store: the storer's clock; RMW: joined with the clock of the store
    /// it read, extending the release sequence; relaxed store: empty).
    sync_vc: VClock,
}

#[derive(Debug, Default)]
struct AtomicHist {
    stores: Vec<StoreElem>,
}

#[derive(Debug, Default)]
struct MutexSt {
    held_by: Option<Tid>,
    clock: VClock,
}

#[derive(Debug, Default)]
struct CvSt {
    /// FIFO of (waiter tid, the mutex it must re-acquire).
    waiters: Vec<(Tid, Addr)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Has (or will get) a declared op and can be scheduled once the op
    /// is enabled.
    Active,
    /// Parked on a condvar; needs a notify to become Active again.
    Waiting,
    Finished,
}

struct ThreadSt {
    status: Status,
    pending: Option<Op>,
    vc: VClock,
    /// Per-location floor into the modification order: a thread never
    /// observes a store older than one it has already observed or made.
    seen: HashMap<Addr, usize>,
    final_vc: VClock,
}

impl ThreadSt {
    fn new(vc: VClock) -> Self {
        ThreadSt {
            status: Status::Active,
            pending: None,
            vc,
            seen: HashMap::new(),
            final_vc: VClock::new(),
        }
    }
}

/// One entry of the persistent DFS choice stack.
#[derive(Debug)]
enum Node {
    /// A scheduling decision: which declared op runs next.
    Sched {
        /// Candidate tids in deterministic (ascending) order, after the
        /// sleep-set and preemption filters. Footprints are recomputed
        /// from the live pending ops on replay, so only tids are stored:
        /// a `Footprint` embeds the *address* of the location it touches,
        /// and addresses are only meaningful within the one execution
        /// that allocated them — the stack outlives executions.
        candidates: Vec<Tid>,
        /// Tids asleep when the node was created (footprints recomputed
        /// on replay, same reason as above).
        base_sleep: Vec<Tid>,
        idx: usize,
    },
    /// A value decision: which eligible store a load observes.
    Read { total: usize, idx: usize },
}

/// Per-execution mutable state (world + coordination).
struct ExecState {
    threads: Vec<ThreadSt>,
    /// The token: the one thread allowed to run user code / execute ops.
    current: Tid,
    /// Threads not yet Finished.
    live: usize,
    /// The thread that executed the most recent op (preemption account).
    last_exec: Tid,
    preemptions: usize,
    /// Current sleep set along this path.
    sleep: Vec<(Tid, Footprint)>,
    atomics: HashMap<Addr, AtomicHist>,
    mutexes: HashMap<Addr, MutexSt>,
    condvars: HashMap<Addr, CvSt>,
    sc_clock: VClock,
    /// DFS stack, persisted across executions by `begin_execution`.
    stack: Vec<Node>,
    cursor: usize,
    ops_executed: usize,
    trace: Vec<String>,
    failure: Option<String>,
    /// Path cut by the sleep-set reduction (covered by a sibling).
    pruned: bool,
    /// All threads finished (or unwound) — execution over.
    done: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn aborting(&self) -> bool {
        self.failure.is_some() || self.pruned
    }

    /// Is `t`'s declared op currently executable?
    fn enabled(&self, t: Tid) -> bool {
        let th = &self.threads[t];
        if th.status != Status::Active {
            return false;
        }
        match th.pending {
            None => false,
            Some(Op::Lock(m)) => self.mutexes.get(&m).is_none_or(|ms| ms.held_by.is_none()),
            Some(Op::Join(j)) => self.threads[j].status == Status::Finished,
            Some(_) => true,
        }
    }

    fn enabled_threads(&self) -> Vec<Tid> {
        (0..self.threads.len())
            .filter(|&t| self.enabled(t))
            .collect()
    }

    fn record(&mut self, tid: Tid, text: String) {
        self.trace.push(format!("T{tid} {text}"));
    }
}

/// The shared coordination object for one model run.
pub(crate) struct Exec {
    config: Config,
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context, if inside a model execution.
pub(crate) fn ctx() -> Option<(Arc<Exec>, Tid)> {
    CTX.with(|c| c.borrow().as_ref().map(|(e, t)| (Arc::clone(e), *t)))
}

/// Runs `f` with the calling thread's model context, if inside a model.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<Exec>, Tid) -> R) -> Option<R> {
    ctx().map(|(e, t)| f(&e, t))
}

impl Exec {
    fn new(config: Config) -> Self {
        Exec {
            config,
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                live: 0,
                last_exec: 0,
                preemptions: 0,
                sleep: Vec::new(),
                atomics: HashMap::new(),
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                sc_clock: VClock::new(),
                stack: Vec::new(),
                cursor: 0,
                ops_executed: 0,
                trace: Vec::new(),
                failure: None,
                pruned: false,
                done: false,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The coordination mutex can be poisoned when a model thread
        // panics with a real failure; the state stays usable (we only
        // read the failure flag and unwind).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn begin_execution(&self) {
        let mut st = self.lock_state();
        st.threads = vec![ThreadSt::new({
            let mut vc = VClock::new();
            vc.tick(0);
            vc
        })];
        st.current = 0;
        st.live = 1;
        st.last_exec = 0;
        st.preemptions = 0;
        st.sleep.clear();
        st.atomics.clear();
        st.mutexes.clear();
        st.condvars.clear();
        st.sc_clock = VClock::new();
        st.cursor = 0;
        st.ops_executed = 0;
        st.trace.clear();
        st.failure = None;
        st.pruned = false;
        st.done = false;
        st.os_handles.clear();
    }

    /// Advances the deepest advanceable branch; false when exhausted.
    fn backtrack(&self) -> bool {
        let mut st = self.lock_state();
        loop {
            match st.stack.last_mut() {
                None => return false,
                Some(Node::Sched {
                    candidates, idx, ..
                }) => {
                    if *idx + 1 < candidates.len() {
                        *idx += 1;
                        return true;
                    }
                    st.stack.pop();
                }
                Some(Node::Read { total, idx }) => {
                    if *idx + 1 < *total {
                        *idx += 1;
                        return true;
                    }
                    st.stack.pop();
                }
            }
        }
    }

    fn fail(st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            let mut report = format!("model failure: {msg}\n--- interleaving ---\n");
            for (i, ev) in st.trace.iter().enumerate() {
                report.push_str(&format!("{i:4}: {ev}\n"));
            }
            st.failure = Some(report);
        }
        st.done = st.live == 0;
    }

    /// The scheduling decision: pick which declared op executes next.
    /// Called with `me` parked-or-running at a yield point. Sets
    /// `st.current`; the chosen thread executes its own op when it sees
    /// the token. Returns false when the execution is aborting.
    fn schedule(&self, st: &mut ExecState, me: Tid) -> bool {
        if st.aborting() {
            return false;
        }
        let enabled = st.enabled_threads();
        if enabled.is_empty() {
            if st.live == 0 {
                st.done = true;
            } else {
                let stuck: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("T{i}:{:?}/{:?}", t.status, t.pending))
                    .collect();
                Exec::fail(st, format!("deadlock; stuck threads: {}", stuck.join(" ")));
            }
            return false;
        }

        // Preemption filter: staying on the last-executing thread is
        // free; switching away while it could continue costs one.
        let prev = st.last_exec;
        let prev_enabled = enabled.contains(&prev);
        let over_budget = self
            .config
            .preemption_bound
            .is_some_and(|b| st.preemptions >= b);
        let after_preempt: Vec<Tid> = if over_budget && prev_enabled {
            vec![prev]
        } else {
            enabled.clone()
        };

        // Sleep-set filter.
        let sleeping: Vec<Tid> = st.sleep.iter().map(|&(t, _)| t).collect();
        let candidates: Vec<Tid> = after_preempt
            .iter()
            .copied()
            .filter(|t| !sleeping.contains(t))
            .collect();
        if candidates.is_empty() {
            // Every runnable thread is asleep: this path only commutes
            // independent ops of a sibling branch — prune it.
            st.pruned = true;
            return false;
        }

        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else {
            let footprints: Vec<Footprint> = candidates
                .iter()
                .map(|&t| {
                    st.threads[t]
                        .pending
                        .as_ref()
                        // invariant: a candidate passed enabled(), which
                        // requires a declared pending op.
                        .expect("candidate declared")
                        .footprint()
                })
                .collect();
            let cursor = st.cursor;
            if cursor < st.stack.len() {
                // Replay: reuse the recorded decision; entering branch i
                // puts siblings 0..i to sleep for this subtree until a
                // dependent op executes.
                let (i, base) = match &st.stack[cursor] {
                    Node::Sched {
                        candidates: c,
                        idx,
                        base_sleep,
                        ..
                    } => {
                        if c != &candidates {
                            let msg = format!(
                                "replay divergence: sched candidates {candidates:?} \
                                 vs recorded {c:?} at cursor {cursor}/{}",
                                st.stack.len()
                            );
                            Exec::fail(st, msg);
                            return false;
                        }
                        (*idx, base_sleep.clone())
                    }
                    Node::Read { total, idx } => {
                        let msg = format!(
                            "replay divergence: expected sched node for candidates \
                             {candidates:?}, found read node ({idx}/{total}) at cursor \
                             {cursor}/{}",
                            st.stack.len()
                        );
                        Exec::fail(st, msg);
                        return false;
                    }
                };
                st.sleep = base
                    .iter()
                    .map(|&t| {
                        let fp = st.threads[t]
                            .pending
                            .as_ref()
                            // invariant: a thread enters the sleep set only
                            // as an enabled sibling candidate, so it has a
                            // declared op it cannot retract while asleep.
                            .expect("sleeping thread has a declared op")
                            .footprint();
                        (t, fp)
                    })
                    .collect();
                for j in 0..i {
                    st.sleep.push((candidates[j], footprints[j]));
                }
                st.cursor += 1;
                candidates[i]
            } else {
                st.stack.push(Node::Sched {
                    candidates: candidates.clone(),
                    base_sleep: st.sleep.iter().map(|&(t, _)| t).collect(),
                    idx: 0,
                });
                st.cursor += 1;
                candidates[0]
            }
        };

        if chosen != prev && prev_enabled {
            st.preemptions += 1;
        }
        st.current = chosen;
        let _ = me;
        true
    }

    /// Consults the choice stack for a value decision with `total`
    /// options; returns the option index.
    fn choose_value(&self, st: &mut ExecState, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let cursor = st.cursor;
        let idx = if cursor < st.stack.len() {
            match &st.stack[cursor] {
                Node::Read { total: t, idx } => {
                    debug_assert_eq!(*t, total, "nondeterministic replay");
                    *idx
                }
                Node::Sched { .. } => {
                    Exec::fail(st, "replay divergence: expected read node".into());
                    0
                }
            }
        } else {
            st.stack.push(Node::Read { total, idx: 0 });
            0
        };
        st.cursor += 1;
        idx
    }

    /// Executes `op` on behalf of `me` (who holds the token).
    fn execute(&self, st: &mut ExecState, me: Tid, op: &Op) -> OpResult {
        st.ops_executed += 1;
        if st.ops_executed > self.config.max_ops_per_execution {
            Exec::fail(
                st,
                format!(
                    "execution exceeded {} ops",
                    self.config.max_ops_per_execution
                ),
            );
            return OpResult::Unit;
        }
        let desc = op.describe();
        // Sibling sleepers wake when a dependent op executes.
        let fp = op.footprint();
        st.sleep.retain(|&(_, sfp)| !dependent(sfp, fp));
        st.last_exec = me;
        let result = match *op {
            Op::Start | Op::Spawn | Op::Yield => {
                st.threads[me].vc.tick(me);
                OpResult::Unit
            }
            Op::Join(child) => {
                let child_vc = st.threads[child].final_vc.clone();
                st.threads[me].vc.join(&child_vc);
                st.threads[me].vc.tick(me);
                OpResult::Unit
            }
            Op::Lock(m) => {
                let ms = st.mutexes.entry(m).or_default();
                debug_assert!(ms.held_by.is_none(), "scheduled a disabled lock");
                ms.held_by = Some(me);
                let mclock = ms.clock.clone();
                st.threads[me].vc.join(&mclock);
                st.threads[me].vc.tick(me);
                OpResult::Unit
            }
            Op::Unlock(m) => {
                st.threads[me].vc.tick(me);
                let vc = st.threads[me].vc.clone();
                let ms = st.mutexes.entry(m).or_default();
                ms.held_by = None;
                ms.clock = vc;
                OpResult::Unit
            }
            Op::CvWait { cv, mutex } => {
                // Atomically: release the mutex and park on the condvar.
                st.threads[me].vc.tick(me);
                let vc = st.threads[me].vc.clone();
                let ms = st.mutexes.entry(mutex).or_default();
                ms.held_by = None;
                ms.clock = vc;
                st.condvars.entry(cv).or_default().waiters.push((me, mutex));
                st.threads[me].status = Status::Waiting;
                OpResult::Unit
            }
            Op::CvNotifyOne(cv) => {
                st.threads[me].vc.tick(me);
                if let Some((w, m)) = {
                    let cs = st.condvars.entry(cv).or_default();
                    if cs.waiters.is_empty() {
                        None
                    } else {
                        // FIFO wake: a deterministic single choice. (We do
                        // not branch over which waiter wakes; documented
                        // as a model restriction in DESIGN.md.)
                        Some(cs.waiters.remove(0))
                    }
                } {
                    st.threads[w].status = Status::Active;
                    st.threads[w].pending = Some(Op::Lock(m));
                }
                OpResult::Unit
            }
            Op::CvNotifyAll(cv) => {
                st.threads[me].vc.tick(me);
                let woken: Vec<(Tid, Addr)> =
                    std::mem::take(&mut st.condvars.entry(cv).or_default().waiters);
                for (w, m) in woken {
                    st.threads[w].status = Status::Active;
                    st.threads[w].pending = Some(Op::Lock(m));
                }
                OpResult::Unit
            }
            Op::Load { addr, ord, init } => {
                let val = self.atomic_load(st, me, addr, ord, init);
                st.record(me, format!("{desc} -> {val}"));
                st.threads[me].pending = None;
                return OpResult::Value(val);
            }
            Op::Store {
                addr,
                ord,
                init,
                val,
            } => {
                Exec::ensure_hist(st, addr, init);
                st.threads[me].vc.tick(me);
                if matches!(ord, Ordering::SeqCst) {
                    let sc = st.sc_clock.clone();
                    st.threads[me].vc.join(&sc);
                    let vc = st.threads[me].vc.clone();
                    st.sc_clock.join(&vc);
                }
                let event_vc = st.threads[me].vc.clone();
                let sync_vc = match ord {
                    Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => event_vc.clone(),
                    _ => VClock::new(),
                };
                // invariant: ensure_hist ran at the top of this arm.
                let hist = st.atomics.get_mut(&addr).expect("hist ensured");
                hist.stores.push(StoreElem {
                    val,
                    event_vc,
                    sync_vc,
                });
                let idx = hist.stores.len() - 1;
                st.threads[me].seen.insert(addr, idx);
                OpResult::Unit
            }
            Op::Rmw {
                addr,
                ord,
                init,
                kind,
                operand,
            } => {
                Exec::ensure_hist(st, addr, init);
                // An RMW reads the latest store in modification order.
                let (old, prev_sync) = {
                    let hist = &st.atomics[&addr];
                    // invariant: ensure_hist seeds every history with the
                    // initial value, so stores is never empty.
                    let last = hist.stores.last().expect("hist non-empty");
                    (last.val, last.sync_vc.clone())
                };
                if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
                    st.threads[me].vc.join(&prev_sync);
                }
                st.threads[me].vc.tick(me);
                if matches!(ord, Ordering::SeqCst) {
                    let sc = st.sc_clock.clone();
                    st.threads[me].vc.join(&sc);
                    let vc = st.threads[me].vc.clone();
                    st.sc_clock.join(&vc);
                }
                let new = match kind {
                    RmwKind::Add => old.wrapping_add(operand),
                    RmwKind::Sub => old.wrapping_sub(operand),
                    RmwKind::Swap => operand,
                };
                let event_vc = st.threads[me].vc.clone();
                // RMWs extend the release sequence of the store they read.
                let mut sync_vc = prev_sync;
                if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
                    sync_vc.join(&event_vc);
                }
                // invariant: ensure_hist ran at the top of this arm.
                let hist = st.atomics.get_mut(&addr).expect("hist ensured");
                hist.stores.push(StoreElem {
                    val: new,
                    event_vc,
                    sync_vc,
                });
                let idx = hist.stores.len() - 1;
                st.threads[me].seen.insert(addr, idx);
                st.record(me, format!("{desc} -> {old}"));
                st.threads[me].pending = None;
                return OpResult::Value(old);
            }
        };
        st.record(me, desc);
        st.threads[me].pending = None;
        result
    }

    fn ensure_hist(st: &mut ExecState, addr: Addr, init: u64) {
        st.atomics.entry(addr).or_insert_with(|| AtomicHist {
            stores: vec![StoreElem {
                val: init,
                event_vc: VClock::new(),
                sync_vc: VClock::new(),
            }],
        });
    }

    fn atomic_load(
        &self,
        st: &mut ExecState,
        me: Tid,
        addr: Addr,
        ord: Ordering,
        init: u64,
    ) -> u64 {
        Exec::ensure_hist(st, addr, init);
        if matches!(ord, Ordering::SeqCst) {
            let sc = st.sc_clock.clone();
            st.threads[me].vc.join(&sc);
        }
        let floor = st.threads[me].seen.get(&addr).copied().unwrap_or(0);
        let (min_idx, n) = {
            let hist = &st.atomics[&addr];
            let me_vc = &st.threads[me].vc;
            // A load may not observe a store that is coherence-older than
            // another store which already happened-before the load.
            let mut hb_max = 0;
            for (i, s) in hist.stores.iter().enumerate() {
                if s.event_vc.le(me_vc) {
                    hb_max = i;
                }
            }
            (floor.max(hb_max), hist.stores.len())
        };
        let choice = self.choose_value(st, n - min_idx);
        let idx = min_idx + choice;
        let (val, sync_vc) = {
            let s = &st.atomics[&addr].stores[idx];
            (s.val, s.sync_vc.clone())
        };
        st.threads[me].seen.insert(addr, idx);
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            st.threads[me].vc.join(&sync_vc);
        }
        if matches!(ord, Ordering::SeqCst) {
            let vc = st.threads[me].vc.clone();
            st.sc_clock.join(&vc);
        }
        st.threads[me].vc.tick(me);
        val
    }

    /// The yield-point protocol: declare `op`, let the scheduler pick who
    /// runs, park until granted, execute. Unwinds with `Abort` when the
    /// execution is over (failure or prune).
    pub(crate) fn yield_op(self: &Arc<Self>, me: Tid, op: Op) -> OpResult {
        let mut st = self.lock_state();
        if st.aborting() {
            drop(st);
            std::panic::resume_unwind(Box::new(Abort));
        }
        st.threads[me].pending = Some(op);
        // The labeled block is the abort path: any `break 'abort` falls
        // through to the unwind below; the happy path returns directly.
        'abort: {
            if !self.schedule(&mut st, me) {
                break 'abort;
            }
            self.cv.notify_all();
            while st.current != me && !st.aborting() && !st.done {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.aborting() {
                break 'abort;
            }
            // Token granted: execute my pending op.
            let op = st.threads[me]
                .pending
                .clone()
                // invariant: the scheduler only grants the token to a
                // thread with a declared op; pending is cleared after
                // execution.
                .expect("token holder has an op");
            let was_wait = matches!(op, Op::CvWait { .. });
            let result = self.execute(&mut st, me, &op);
            if st.aborting() {
                break 'abort;
            }
            if was_wait {
                // The wait op parked us; keep scheduling others until a
                // notify re-activates us and the scheduler re-grants.
                if !self.schedule(&mut st, me) {
                    break 'abort;
                }
                self.cv.notify_all();
                let granted = |st: &ExecState| {
                    st.current == me
                        && st.threads[me].status == Status::Active
                        && st.threads[me].pending.is_some()
                };
                while !granted(&st) && !st.aborting() && !st.done {
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                if st.aborting() || st.done {
                    break 'abort;
                }
                // Re-granted with the relock op pending; execute it.
                // invariant: the wake path (CvNotify) re-arms the waiter
                // with a Lock op before re-activating it.
                let relock = st.threads[me].pending.clone().expect("relock pending");
                let r2 = self.execute(&mut st, me, &relock);
                if st.aborting() {
                    break 'abort;
                }
                drop(st);
                return r2;
            }
            drop(st);
            return result;
        }
        drop(st);
        self.cv.notify_all();
        std::panic::resume_unwind(Box::new(Abort));
    }

    /// Like [`Exec::yield_op`] but never unwinds: when the execution is
    /// aborting it silently no-ops. Used from `Drop` impls, where a
    /// second panic during an unwind would abort the process.
    pub(crate) fn yield_op_quiet(self: &Arc<Self>, me: Tid, op: Op) {
        {
            let st = self.lock_state();
            if st.aborting() || st.done {
                return;
            }
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.yield_op(me, op);
        }));
        // An Abort unwind here means the execution ended while we were
        // scheduling the drop-op; swallow it — the thread will observe
        // the abort at its next regular yield point.
        drop(result);
    }

    /// Registers a child thread (called while the parent executes Spawn).
    pub(crate) fn spawn_thread(self: &Arc<Self>, parent: Tid) -> Tid {
        // The Spawn op itself is a yield point first.
        let _ = self.yield_op(parent, Op::Spawn);
        let mut st = self.lock_state();
        let mut vc = st.threads[parent].vc.clone();
        let tid = st.threads.len();
        vc.tick(tid);
        let mut ts = ThreadSt::new(vc);
        ts.pending = Some(Op::Start);
        st.threads.push(ts);
        st.live += 1;
        tid
    }

    pub(crate) fn register_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock_state().os_handles.push(h);
    }

    /// A freshly spawned thread parks here until first granted, then
    /// runs its Start pseudo-op and returns to enter user code.
    pub(crate) fn wait_for_start(self: &Arc<Self>, me: Tid) {
        let mut st = self.lock_state();
        while st.current != me && !st.aborting() && !st.done {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting() || st.done {
            drop(st);
            std::panic::resume_unwind(Box::new(Abort));
        }
        // invariant: spawn_thread declares Op::Start before the child OS
        // thread is created, so it is pending at first grant.
        let op = st.threads[me].pending.clone().expect("start pending");
        self.execute(&mut st, me, &op);
    }

    /// Thread `me`'s closure returned (or unwound): leave the execution.
    pub(crate) fn finish_thread(self: &Arc<Self>, me: Tid) {
        let mut st = self.lock_state();
        st.threads[me].status = Status::Finished;
        st.threads[me].pending = None;
        let vc = st.threads[me].vc.clone();
        st.threads[me].final_vc = vc;
        st.live -= 1;
        st.record(me, "finish".into());
        if st.live == 0 {
            st.done = true;
        } else if !st.aborting() {
            // Hand the token onward.
            self.schedule(&mut st, me);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Records a failure discovered by thread `me` (assertion panic).
    fn report_panic(&self, me: Tid, payload: &(dyn std::any::Any + Send)) {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic (non-string payload)".to_string()
        };
        let mut st = self.lock_state();
        Exec::fail(&mut st, format!("T{me} panicked: {msg}"));
        drop(st);
        self.cv.notify_all();
    }
}

/// Runs the model thread body for a spawned thread: park for start, run,
/// catch panics, finish.
pub(crate) fn child_main<T, F>(exec: Arc<Exec>, me: Tid, f: F, out: Arc<Mutex<Option<T>>>)
where
    F: FnOnce() -> T,
    T: Send,
{
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    let started = {
        let r = catch_unwind(AssertUnwindSafe(|| exec.wait_for_start(me)));
        match r {
            Ok(()) => true,
            Err(p) => {
                if p.downcast_ref::<Abort>().is_none() {
                    exec.report_panic(me, p.as_ref());
                }
                false
            }
        }
    };
    if started {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => {
                *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            }
            Err(p) => {
                if p.downcast_ref::<Abort>().is_none() {
                    exec.report_panic(me, p.as_ref());
                }
            }
        }
    }
    exec.finish_thread(me);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The exploration driver: run executions, DFS the choice stack.
pub(crate) fn explore<F: Fn()>(config: Config, f: F) -> Result<Explored, String> {
    let exec = Arc::new(Exec::new(config.clone()));
    let mut executions = 0usize;
    let mut pruned = 0usize;
    loop {
        exec.begin_execution();
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        let root = catch_unwind(AssertUnwindSafe(&f));
        if let Err(p) = root {
            if p.downcast_ref::<Abort>().is_none() {
                exec.report_panic(0, p.as_ref());
            }
        }
        exec.finish_thread(0);
        // Wait for every model thread to leave the execution, then reap
        // the OS threads so nothing leaks across executions.
        let handles = {
            let mut st = exec.lock_state();
            while st.live > 0 {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            std::mem::take(&mut st.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        CTX.with(|c| *c.borrow_mut() = None);
        executions += 1;

        let (failure, was_pruned) = {
            let st = exec.lock_state();
            (st.failure.clone(), st.pruned)
        };
        if was_pruned {
            pruned += 1;
        }
        if let Some(report) = failure {
            return Err(format!("{report}--- after {executions} execution(s) ---"));
        }
        if !exec.backtrack() {
            return Ok(Explored { executions, pruned });
        }
        if executions >= config.max_executions {
            return Err(format!(
                "state space not exhausted after {executions} executions \
                 (raise Config::max_executions or shrink the model)"
            ));
        }
    }
}

//! Vector clocks: the happens-before bookkeeping of the model checker.
//!
//! Every model thread carries a [`VClock`]; every executed operation ticks
//! the thread's own component. Synchronizing operations (mutex acquire,
//! acquire-load of a release-store, join) merge clocks, which is exactly
//! the happens-before relation the weak-memory visibility rules in
//! `sched` consult.

/// A grow-on-demand vector clock indexed by model thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The empty clock (happens-before everything).
    pub(crate) fn new() -> Self {
        VClock { slots: Vec::new() }
    }

    /// Component `tid`.
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances our own component by one event.
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Pointwise maximum: after `self.join(o)`, everything ordered before
    /// `o` is ordered before us too.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(&other.slots) {
            *s = (*s).max(*o);
        }
    }

    /// True when every component of `self` is <= the matching component of
    /// `other` — i.e. the event stamped `self` happens-before (or equals)
    /// the view `other`.
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(2), 0);
        c.tick(2);
        c.tick(2);
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 1);
        assert_eq!(a.get(1), 2);
    }

    #[test]
    fn le_is_happens_before() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(VClock::new().le(&a));
    }
}

//! Shim synchronization types: `std::sync` look-alikes that report every
//! operation to the model-checking scheduler.
//!
//! Inside a [`crate::model`] execution, each operation (lock, unlock,
//! condvar wait/notify, atomic load/store/rmw, spawn/join) is a yield
//! point the scheduler branches on, and atomics follow the simulated
//! weak-memory semantics described in DESIGN.md. **Outside** a model the
//! types degrade to their `std` equivalents with identical behavior, so
//! a crate compiled against these shims (e.g. `ads-server` with the
//! `check` feature) still runs its ordinary tests and binaries
//! unchanged.
//!
//! Only the API surface the repo actually uses is shimmed: `Mutex::new/
//! lock`, `Condvar::new/wait/notify_one/notify_all`, atomic `new/load/
//! store/swap/fetch_add/fetch_sub`, `thread::spawn/join/yield_now`.
//! `Arc` is re-exported from `std` — its refcount protocol is not under
//! test, and modeled payloads flow through it unchanged.

use crate::sched::{self, Op, OpResult, RmwKind};
use std::sync::LockResult;

pub use std::sync::Arc;

fn addr_of<T>(x: &T) -> usize {
    // narrowing: pointer-to-usize identity for the per-object model
    // address; usize always holds a pointer.
    x as *const T as usize
}

/// A mutual-exclusion lock; see the module docs for the two modes.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn model_addr(&self) -> usize {
        addr_of(&self.inner)
    }

    /// Locks, blocking (in a model: yielding to the scheduler) until
    /// available. Never returns `Err`: the model aborts executions on
    /// panic before poison can be observed, and the fallback maps poison
    /// into the same `Err` shape as `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let in_model = sched::with_ctx(|exec, me| {
            exec.yield_op(me, Op::Lock(self.model_addr()));
        })
        .is_some();
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model: in_model,
            }),
            Err(poison) => {
                let g = poison.into_inner();
                let guard = MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: in_model,
                };
                Err(std::sync::PoisonError::new(guard))
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]; releasing it is itself a model operation.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // invariant: inner is Some until drop/wait consume the guard.
        self.inner.as_ref().expect("guard still held")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // invariant: inner is Some until drop/wait consume the guard.
        self.inner.as_mut().expect("guard still held")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then report the unlock. The quiet
        // variant never unwinds: a panicking unwind may drop guards, and
        // a second panic inside Drop would abort the process.
        let _ = self.inner.take();
        if self.model {
            sched::with_ctx(|exec, me| {
                exec.yield_op_quiet(me, Op::Unlock(self.lock.model_addr()));
            });
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable tied to a [`Mutex`] at wait time, like `std`'s.
///
/// Model restriction: `notify_one` deterministically wakes the
/// longest-waiting thread (FIFO) instead of branching over waiters, and
/// there are no spurious wakeups; see DESIGN.md for why that is an
/// acceptable under-approximation for this repo's protocols.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn model_addr(&self) -> usize {
        addr_of(&self.inner)
    }

    /// Releases the guard's lock, parks until notified, re-acquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mut guard = guard;
        if guard.model {
            let lock = guard.lock;
            // Defuse the guard: with `model` cleared and `inner` taken its
            // Drop is a no-op, so no Unlock op is reported — the model
            // CvWait op below performs the release itself.
            guard.model = false;
            let inner = guard.inner.take();
            drop(guard);
            drop(inner);
            let cv = self.model_addr();
            let mutex = lock.model_addr();
            sched::with_ctx(|exec, me| {
                exec.yield_op(me, Op::CvWait { cv, mutex });
            });
            // The scheduler re-granted us the lock at the model level;
            // mirror it on the real mutex (uncontended by construction).
            let inner = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock,
                inner: Some(inner),
                model: true,
            })
        } else {
            let lock = guard.lock;
            // invariant: guard not yet dropped, inner is Some. Taking the
            // inner guard defuses the shim guard's Drop (non-model, so no
            // Unlock op either way).
            let inner = guard.inner.take().expect("guard still held");
            drop(guard);
            match self.inner.wait(inner) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: false,
                }),
                Err(poison) => {
                    let guard = MutexGuard {
                        lock,
                        inner: Some(poison.into_inner()),
                        model: false,
                    };
                    Err(std::sync::PoisonError::new(guard))
                }
            }
        }
    }

    pub fn notify_one(&self) {
        if sched::with_ctx(|exec, me| {
            exec.yield_op(me, Op::CvNotifyOne(self.model_addr()));
        })
        .is_none()
        {
            self.inner.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if sched::with_ctx(|exec, me| {
            exec.yield_op(me, Op::CvNotifyAll(self.model_addr()));
        })
        .is_none()
        {
            self.inner.notify_all();
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Shim atomics with simulated weak-memory semantics under a model.
pub mod atomic {
    use super::*;
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic {
        ($name:ident, $raw:ty, $std:ty, $to:expr, $from:expr) => {
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub fn new(v: $raw) -> Self {
                    $name {
                        inner: <$std>::new(v),
                    }
                }

                fn model_addr(&self) -> usize {
                    addr_of(&self.inner)
                }

                /// The construction-time value: in a model, the fallback
                /// cell is never written, so it still holds the initial
                /// value the per-execution store history must start from.
                fn init(&self) -> u64 {
                    // ordering: Relaxed — single unobserved cell; only
                    // read to seed the model's per-execution history.
                    #[allow(clippy::redundant_closure_call)]
                    ($to)(self.inner.load(Ordering::Relaxed))
                }

                pub fn load(&self, ord: Ordering) -> $raw {
                    match sched::with_ctx(|exec, me| {
                        exec.yield_op(
                            me,
                            Op::Load {
                                addr: self.model_addr(),
                                ord,
                                init: self.init(),
                            },
                        )
                    }) {
                        Some(OpResult::Value(v)) => ($from)(v),
                        Some(OpResult::Unit) => unreachable!("load returns a value"),
                        None => self.inner.load(ord),
                    }
                }

                pub fn store(&self, val: $raw, ord: Ordering) {
                    if sched::with_ctx(|exec, me| {
                        exec.yield_op(
                            me,
                            Op::Store {
                                addr: self.model_addr(),
                                ord,
                                init: self.init(),
                                val: ($to)(val),
                            },
                        )
                    })
                    .is_none()
                    {
                        self.inner.store(val, ord);
                    }
                }

                pub fn swap(&self, val: $raw, ord: Ordering) -> $raw {
                    self.rmw(RmwKind::Swap, ($to)(val), ord)
                        .unwrap_or_else(|| self.inner.swap(val, ord))
                }

                fn rmw(&self, kind: RmwKind, operand: u64, ord: Ordering) -> Option<$raw> {
                    sched::with_ctx(|exec, me| {
                        match exec.yield_op(
                            me,
                            Op::Rmw {
                                addr: self.model_addr(),
                                ord,
                                init: self.init(),
                                kind,
                                operand,
                            },
                        ) {
                            OpResult::Value(v) => ($from)(v),
                            OpResult::Unit => unreachable!("rmw returns a value"),
                        }
                    })
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // ordering: Relaxed — debug printing only.
                    f.debug_tuple(stringify!($name))
                        .field(&self.inner.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    /// Adds the integer fetch-ops on top of `shim_atomic!`.
    macro_rules! shim_atomic_int {
        ($name:ident, $raw:ty, $to:expr) => {
            impl $name {
                pub fn fetch_add(&self, val: $raw, ord: Ordering) -> $raw {
                    self.rmw(RmwKind::Add, ($to)(val), ord)
                        .unwrap_or_else(|| self.inner.fetch_add(val, ord))
                }

                pub fn fetch_sub(&self, val: $raw, ord: Ordering) -> $raw {
                    self.rmw(RmwKind::Sub, ($to)(val), ord)
                        .unwrap_or_else(|| self.inner.fetch_sub(val, ord))
                }
            }
        };
    }

    shim_atomic!(
        AtomicU64,
        u64,
        std::sync::atomic::AtomicU64,
        (|v: u64| v),
        (|v: u64| v)
    );
    shim_atomic_int!(AtomicU64, u64, (|v: u64| v));
    shim_atomic!(
        AtomicUsize,
        usize,
        std::sync::atomic::AtomicUsize,
        (|v: usize| v as u64),
        // narrowing: the shim stores AtomicUsize values in a u64 history;
        // usize is at most 64 bits on supported targets.
        (|v: u64| v as usize)
    );
    shim_atomic_int!(AtomicUsize, usize, (|v: usize| v as u64));
    shim_atomic!(
        AtomicBool,
        bool,
        std::sync::atomic::AtomicBool,
        (|v: bool| v as u64),
        (|v: u64| v != 0)
    );
}

/// Shim threads: model-registered inside an execution, `std` otherwise.
pub mod thread {
    use super::*;
    use crate::sched::Tid;

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            tid: Tid,
            exec: Arc<crate::sched::Exec>,
            out: Arc<std::sync::Mutex<Option<T>>>,
        },
    }

    /// Handle to a spawned shim thread.
    pub struct JoinHandle<T> {
        imp: Imp<T>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread and returns its result. In a model this
        /// is a scheduling operation establishing happens-before with
        /// the child's whole execution.
        pub fn join(self) -> std::thread::Result<T> {
            match self.imp {
                Imp::Std(h) => h.join(),
                Imp::Model { tid, exec, out } => {
                    let me = crate::sched::with_ctx(|_, me| me)
                        // invariant: Imp::Model is only constructed inside
                        // a model execution, and join() runs on a model
                        // thread of the same execution.
                        .expect("model JoinHandle joined outside its model");
                    exec.yield_op(me, Op::Join(tid));
                    let v = out
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        // invariant: Join only executes once the child
                        // finished; a panicked child aborts the
                        // execution before join can return.
                        .expect("joined child left a result");
                    Ok(v)
                }
            }
        }
    }

    /// Spawns a thread. Inside a model the thread participates in the
    /// scheduled interleaving; outside it is a plain `std` thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match sched::ctx() {
            Some((exec, me)) => {
                let tid = exec.spawn_thread(me);
                let out: Arc<std::sync::Mutex<Option<T>>> = Arc::new(std::sync::Mutex::new(None));
                let exec2 = Arc::clone(&exec);
                let out2 = Arc::clone(&out);
                let os = std::thread::Builder::new()
                    .name(format!("ads-check-{tid}"))
                    .spawn(move || crate::sched::child_main(exec2, tid, f, out2))
                    // invariant: model threads are few and tiny; spawn
                    // failure means the host is out of resources.
                    .expect("spawn model thread");
                exec.register_os_handle(os);
                JoinHandle {
                    imp: Imp::Model { tid, exec, out },
                }
            }
            None => JoinHandle {
                // invariant: mirrors std::thread::spawn's own panic on
                // spawn failure.
                imp: Imp::Std(std::thread::Builder::new().spawn(f).expect("spawn thread")),
            },
        }
    }

    /// A pure scheduling point in a model; `std::thread::yield_now`
    /// otherwise.
    pub fn yield_now() {
        if sched::with_ctx(|exec, me| {
            exec.yield_op(me, Op::Yield);
        })
        .is_none()
        {
            std::thread::yield_now();
        }
    }
}

//! `ads-check`: a std-only, loom-style deterministic concurrency model
//! checker.
//!
//! The offline build forbids loom, ThreadSanitizer, and dylint, so this
//! crate provides the correctness tooling in-tree, the same way
//! `ads-rng` replaced `rand`: shim synchronization types
//! ([`sync::Mutex`], [`sync::Condvar`], [`sync::atomic`],
//! [`sync::thread`]) record every operation, and a DFS scheduler
//! ([`model`]) exhaustively enumerates both **interleavings** (which
//! thread's operation executes next) and **weak-memory visibility**
//! (which store an atomic load observes, as allowed by the declared
//! `Ordering`). An erroneous `Relaxed` on a publication counter is
//! therefore *caught*, not masked by the host hardware's strong (x86
//! TSO) memory model.
//!
//! ```
//! use ads_check::sync::atomic::{AtomicU64, Ordering};
//! use ads_check::sync::{thread, Arc};
//!
//! // Message passing: the Release/Acquire pair makes the data visible.
//! let explored = ads_check::model(|| {
//!     let data = Arc::new(AtomicU64::new(0));
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = thread::spawn(move || {
//!         // ordering: Relaxed — ordered by the Release store below.
//!         d.store(42, Ordering::Relaxed);
//!         // ordering: Release — publishes the data store above.
//!         f.store(1, Ordering::Release);
//!     });
//!     // ordering: Acquire — pairs with the Release store of `flag`.
//!     if flag.load(Ordering::Acquire) == 1 {
//!         // ordering: Relaxed — ordered by the Acquire load above.
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join().unwrap();
//! });
//! assert!(explored.executions > 1);
//! ```
//!
//! What the checker covers and what it cannot is documented in
//! DESIGN.md ("Correctness tooling"): exhaustive within the declared
//! model and bounds; `SeqCst` approximated by a global clock; condvar
//! wakeups FIFO and never spurious; no modeling of fences or
//! `compare_exchange`.

#![forbid(unsafe_code)]

mod sched;
mod vclock;

pub mod sync;

pub use sched::{Config, Explored};

/// Exhaustively explores `f` under the default [`Config`]. Panics with a
/// trace of the violating interleaving when any execution panics (failed
/// assertion), deadlocks, or the state space exceeds the configured
/// bounds.
pub fn model<F: Fn()>(f: F) -> Explored {
    model_with(Config::default(), f)
}

/// [`model`] with explicit exploration bounds.
pub fn model_with<F: Fn()>(config: Config, f: F) -> Explored {
    match sched::explore(config, f) {
        Ok(explored) => explored,
        Err(report) => panic!("{report}"),
    }
}

/// Runs the exploration and returns the failure report instead of
/// panicking — `Err(report)` when a violation was found, `Ok(explored)`
/// when the model is clean. This is how the test suite proves the
/// checker *can* fail: seed a bug, assert `try_model` returns `Err`.
pub fn try_model<F: Fn()>(config: Config, f: F) -> Result<Explored, String> {
    sched::explore(config, f)
}

//! Sessions over dictionary-encoded string columns.
//!
//! String predicates (range, equality, prefix) are translated to inclusive
//! code ranges by the order-preserving dictionary, then answered by the
//! same skipping machinery as any integer column. Appends that introduce
//! unseen strings remap the code space; the session rebuilds its index and
//! reports the cost.

use crate::executor::{execute, AggKind, QueryAnswer};
use crate::metrics::{CumulativeMetrics, QueryMetrics};
use crate::strategy::Strategy;
use ads_core::{RangePredicate, SkippingIndex};
use ads_storage::{AppendEffect, DictColumn};
use std::time::Instant;

/// One dictionary-encoded string column + one skipping index over its
/// codes + running metrics.
pub struct StringColumnSession {
    column: DictColumn,
    strategy: Strategy,
    index: Box<dyn SkippingIndex<u32>>,
    totals: CumulativeMetrics,
    rebuilds: u32,
}

impl StringColumnSession {
    /// Builds the column and its index.
    pub fn new<S: AsRef<str>>(values: &[S], strategy: &Strategy) -> Self {
        let column = DictColumn::from_strings(values);
        let t0 = Instant::now();
        let index = strategy.build_index(column.codes().as_slice());
        StringColumnSession {
            column,
            strategy: strategy.clone(),
            index,
            totals: CumulativeMetrics {
                build_ns: t0.elapsed().as_nanos() as u64,
                ..Default::default()
            },
            rebuilds: 0,
        }
    }

    fn run(&mut self, range: Option<(u32, u32)>, agg: AggKind) -> (QueryAnswer<u32>, QueryMetrics) {
        let Some((lo, hi)) = range else {
            // Dictionary miss: provably empty without touching data. The
            // dictionary acted as the (free) skipping metadata here.
            let mut answer = QueryAnswer::default();
            if agg == AggKind::Positions {
                answer.positions = Some(Vec::new());
            }
            let metrics = QueryMetrics::default();
            self.totals.absorb(&metrics);
            return (answer, metrics);
        };
        let (answer, metrics) = execute(
            self.column.codes().as_slice(),
            self.index.as_mut(),
            RangePredicate::between(lo, hi),
            agg,
        );
        self.totals.absorb(&metrics);
        (answer, metrics)
    }

    /// COUNT of rows with `lo <= value <= hi` (string order).
    pub fn count_between(&mut self, lo: &str, hi: &str) -> (u64, QueryMetrics) {
        let range = self.column.code_range(lo, hi);
        let (answer, m) = self.run(range, AggKind::Count);
        (answer.count, m)
    }

    /// COUNT of rows equal to `s`.
    pub fn count_eq(&mut self, s: &str) -> (u64, QueryMetrics) {
        let range = self.column.code_of(s).map(|c| (c, c));
        let (answer, m) = self.run(range, AggKind::Count);
        (answer.count, m)
    }

    /// COUNT of rows starting with `prefix`.
    pub fn count_prefix(&mut self, prefix: &str) -> (u64, QueryMetrics) {
        let range = self.column.code_range_prefix(prefix);
        let (answer, m) = self.run(range, AggKind::Count);
        (answer.count, m)
    }

    /// Row ids of rows starting with `prefix`, ascending.
    pub fn positions_prefix(&mut self, prefix: &str) -> (Vec<u32>, QueryMetrics) {
        let range = self.column.code_range_prefix(prefix);
        let (answer, m) = self.run(range, AggKind::Positions);
        (answer.positions.unwrap_or_default(), m)
    }

    /// Appends rows; rebuilds the index when the code space was remapped.
    /// Returns the append effect and the maintenance time in nanoseconds.
    pub fn append<S: AsRef<str>>(&mut self, values: &[S]) -> (AppendEffect, u64) {
        let old_rows = self.column.len();
        let t0 = Instant::now();
        let effect = self.column.append(values);
        match effect {
            AppendEffect::Extended => {
                let codes = self.column.codes().as_slice();
                self.index.on_append(&codes[old_rows..], codes);
            }
            AppendEffect::Remapped => {
                self.index = self.strategy.build_index(self.column.codes().as_slice());
                self.rebuilds += 1;
            }
        }
        (effect, t0.elapsed().as_nanos() as u64)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// The string at `row`.
    pub fn value(&self, row: usize) -> &str {
        self.column.value(row)
    }

    /// Distinct values stored.
    pub fn cardinality(&self) -> usize {
        self.column.cardinality()
    }

    /// Index rebuilds forced by dictionary remaps.
    pub fn rebuilds(&self) -> u32 {
        self.rebuilds
    }

    /// Running totals.
    pub fn totals(&self) -> &CumulativeMetrics {
        &self.totals
    }

    /// The index's display name.
    pub fn index_name(&self) -> String {
        self.index.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;

    fn countries(n: usize) -> Vec<String> {
        const POOL: [&str; 10] = [
            "argentina",
            "brazil",
            "canada",
            "denmark",
            "egypt",
            "france",
            "germany",
            "hungary",
            "india",
            "japan",
        ];
        (0..n)
            .map(|i| POOL[(i * 7) % POOL.len()].to_string())
            .collect()
    }

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy::FullScan,
            Strategy::StaticZonemap { zone_rows: 256 },
            Strategy::Adaptive(AdaptiveConfig::default()),
            Strategy::Imprints {
                values_per_line: 8,
                bins: 16,
            },
        ]
    }

    fn reference_count(values: &[String], f: impl Fn(&str) -> bool) -> u64 {
        values.iter().filter(|v| f(v)).count() as u64
    }

    #[test]
    fn range_eq_prefix_match_reference() {
        let values = countries(5000);
        for strategy in strategies() {
            let mut s = StringColumnSession::new(&values, &strategy);
            // Twice so adaptive structures reorganise between runs.
            for _ in 0..2 {
                let (c, _) = s.count_between("brazil", "france");
                assert_eq!(
                    c,
                    reference_count(&values, |v| ("brazil"..="france").contains(&v)),
                    "{} range",
                    s.index_name()
                );
                let (c, _) = s.count_eq("germany");
                assert_eq!(c, reference_count(&values, |v| v == "germany"));
                let (c, _) = s.count_prefix("ja");
                assert_eq!(c, reference_count(&values, |v| v.starts_with("ja")));
            }
        }
    }

    #[test]
    fn dictionary_miss_answers_without_scanning() {
        let values = countries(1000);
        let mut s = StringColumnSession::new(&values, &Strategy::FullScan);
        let (c, m) = s.count_eq("atlantis");
        assert_eq!(c, 0);
        assert_eq!(m.rows_scanned, 0);
        let (c2, _) = s.count_between("x", "z");
        assert_eq!(c2, 0);
        let (pos, _) = s.positions_prefix("zz");
        assert!(pos.is_empty());
    }

    #[test]
    fn positions_are_base_row_ids() {
        let values: Vec<String> = ["b", "a", "ab", "abc", "a"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut s = StringColumnSession::new(&values, &Strategy::StaticZonemap { zone_rows: 2 });
        let (pos, _) = s.positions_prefix("a");
        assert_eq!(pos, vec![1, 2, 3, 4]);
    }

    #[test]
    fn append_known_keeps_index_valid() {
        let values = countries(2000);
        let mut s = StringColumnSession::new(&values, &Strategy::StaticZonemap { zone_rows: 128 });
        let (c0, _) = s.count_eq("brazil");
        let (effect, _) = s.append(&["brazil".to_string(), "japan".to_string()]);
        assert_eq!(effect, AppendEffect::Extended);
        let (c1, _) = s.count_eq("brazil");
        assert_eq!(c1, c0 + 1);
        assert_eq!(s.rebuilds(), 0);
    }

    #[test]
    fn append_unseen_rebuilds_and_stays_correct() {
        let values = countries(2000);
        for strategy in strategies() {
            let mut s = StringColumnSession::new(&values, &strategy);
            s.count_prefix("a");
            let (effect, _) = s.append(&["aachen".to_string(), "zurich".to_string()]);
            assert_eq!(effect, AppendEffect::Remapped, "{}", s.index_name());
            assert_eq!(s.rebuilds(), 1);
            let (c, _) = s.count_prefix("a");
            let mut all = values.clone();
            all.push("aachen".into());
            all.push("zurich".into());
            assert_eq!(c, reference_count(&all, |v| v.starts_with('a')));
            assert_eq!(s.len(), 2002);
            assert!(s.cardinality() >= 12);
        }
    }

    #[test]
    fn adaptive_index_skips_after_warmup() {
        // Sorted-ish string stream: batches of identical values.
        let values: Vec<String> = (0..50_000).map(|i| format!("key{:05}", i / 100)).collect();
        let mut s =
            StringColumnSession::new(&values, &Strategy::Adaptive(AdaptiveConfig::default()));
        let (_, m1) = s.count_between("key00250", "key00260");
        let (_, m2) = s.count_between("key00250", "key00260");
        assert!(
            m2.rows_scanned < m1.rows_scanned / 5,
            "codes of clustered strings should skip: {} vs {}",
            m1.rows_scanned,
            m2.rows_scanned
        );
        assert_eq!(s.value(0), "key00000");
    }
}

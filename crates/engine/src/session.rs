//! A session binds one column to one skipping strategy and runs a query
//! sequence against it, accumulating metrics.

use crate::exec_policy::ExecPolicy;
use crate::executor::{execute_with_policy, AggKind, QueryAnswer};
use crate::metrics::{CumulativeMetrics, QueryMetrics};
use crate::strategy::Strategy;
use ads_core::{RangePredicate, SkippingIndex};
use ads_storage::DataValue;
use std::time::Instant;

/// One column + one skipping index + running metrics.
///
/// This is the unit of comparison throughout the evaluation: identical
/// query sequences are replayed against sessions that differ only in
/// strategy, and the cumulative metrics are the experiment output.
pub struct ColumnSession<T: DataValue> {
    data: Vec<T>,
    index: Box<dyn SkippingIndex<T>>,
    label: String,
    totals: CumulativeMetrics,
    history: Vec<QueryMetrics>,
    record_history: bool,
    policy: ExecPolicy,
}

impl<T: DataValue> ColumnSession<T> {
    /// Builds the strategy's index over `data`, timing the build.
    pub fn new(data: Vec<T>, strategy: &Strategy) -> Self {
        let t0 = Instant::now();
        let index = strategy.build_index(&data);
        let build_ns = t0.elapsed().as_nanos() as u64;
        let label = index.name();
        ColumnSession {
            data,
            index,
            label,
            totals: CumulativeMetrics {
                build_ns,
                ..Default::default()
            },
            history: Vec::new(),
            record_history: false,
            policy: ExecPolicy::default(),
        }
    }

    /// Wraps an already-built index (used by examples that want to keep a
    /// concrete handle for introspection before type erasure).
    pub fn from_index(data: Vec<T>, index: Box<dyn SkippingIndex<T>>) -> Self {
        let label = index.name();
        ColumnSession {
            data,
            index,
            label,
            totals: CumulativeMetrics::default(),
            history: Vec::new(),
            record_history: false,
            policy: ExecPolicy::default(),
        }
    }

    /// Enables per-query metric recording (for latency-over-time plots).
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Sets the execution policy (builder form).
    pub fn with_exec_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the execution policy for subsequent queries. Answers and
    /// adaptation are policy-independent; only latency changes.
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The current execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Executes one query.
    pub fn query(
        &mut self,
        pred: RangePredicate<T>,
        agg: AggKind,
    ) -> (QueryAnswer<T>, QueryMetrics) {
        let (answer, metrics) =
            execute_with_policy(&self.data, self.index.as_mut(), pred, agg, &self.policy);
        self.totals.absorb(&metrics);
        if self.record_history {
            self.history.push(metrics);
        }
        (answer, metrics)
    }

    /// Convenience: COUNT query.
    pub fn count(&mut self, pred: RangePredicate<T>) -> u64 {
        self.query(pred, AggKind::Count).0.count
    }

    /// Appends rows, maintaining the index; returns maintenance time (ns).
    pub fn append(&mut self, values: &[T]) -> u64 {
        let old = self.data.len();
        self.data.extend_from_slice(values);
        let t0 = Instant::now();
        self.index.on_append(&self.data[old..], &self.data);
        t0.elapsed().as_nanos() as u64
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The column data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// The strategy's display name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Running totals.
    pub fn totals(&self) -> &CumulativeMetrics {
        &self.totals
    }

    /// Per-query history (empty unless enabled).
    pub fn history(&self) -> &[QueryMetrics] {
        &self.history
    }

    /// The underlying index (for name/size/trace inspection).
    pub fn index(&self) -> &dyn SkippingIndex<T> {
        self.index.as_ref()
    }

    /// Bytes of metadata plus any data copy the index holds.
    pub fn index_bytes(&self) -> (usize, usize) {
        (self.index.metadata_bytes(), self.index.data_copy_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;

    #[test]
    fn session_accumulates_totals() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut s = ColumnSession::new(data, &Strategy::StaticZonemap { zone_rows: 1000 });
        assert_eq!(s.count(RangePredicate::between(10, 19)), 10);
        assert_eq!(s.count(RangePredicate::between(5000, 5099)), 100);
        assert_eq!(s.totals().queries, 2);
        assert!(s.totals().zones_skipped > 0);
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn history_recording_toggle() {
        let data: Vec<i64> = (0..100).collect();
        let mut s = ColumnSession::new(data.clone(), &Strategy::FullScan).record_history(true);
        s.count(RangePredicate::all());
        assert_eq!(s.history().len(), 1);
        let mut s2 = ColumnSession::new(data, &Strategy::FullScan);
        s2.count(RangePredicate::all());
        assert!(s2.history().is_empty());
    }

    #[test]
    fn append_stays_correct_across_strategies() {
        for strat in Strategy::roster() {
            let mut s = ColumnSession::new((0..1000).collect::<Vec<i64>>(), &strat);
            s.count(RangePredicate::between(0, 10));
            s.append(&(1000..1100).collect::<Vec<i64>>());
            assert_eq!(
                s.count(RangePredicate::between(990, 1050)),
                61,
                "{}",
                s.label()
            );
            assert_eq!(s.len(), 1100);
        }
    }

    #[test]
    fn adaptive_session_improves_over_time() {
        let data: Vec<i64> = (0..100_000).collect();
        let mut s = ColumnSession::new(data, &Strategy::Adaptive(AdaptiveConfig::default()))
            .record_history(true);
        let pred = RangePredicate::between(5_000, 5_999);
        for _ in 0..5 {
            assert_eq!(s.count(pred), 1000);
        }
        let h = s.history();
        assert_eq!(h[0].rows_scanned, 100_000);
        assert!(
            h[4].rows_scanned < 20_000,
            "later queries should skip: {}",
            h[4].rows_scanned
        );
    }

    #[test]
    fn build_time_recorded_for_eager_structures() {
        let data: Vec<i64> = (0..50_000).collect();
        let s = ColumnSession::new(data, &Strategy::SortedOracle);
        assert!(s.totals().build_ns > 0);
        let (meta, copy) = s.index_bytes();
        assert!(meta > 0 && copy > 0);
    }
}

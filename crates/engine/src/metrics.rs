//! Per-query and cumulative execution metrics.

/// What one query cost and what its pruning achieved.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryMetrics {
    /// Wall-clock nanoseconds for prune + scan + observe.
    pub wall_ns: u64,
    /// Zone-metadata entries examined.
    pub zones_probed: usize,
    /// Zones excluded by metadata.
    pub zones_skipped: usize,
    /// Rows the scan actually touched.
    pub rows_scanned: usize,
    /// Rows answered from metadata alone (full-match ranges).
    pub rows_full_match: usize,
    /// Rows satisfying the predicate.
    pub rows_matched: u64,
    /// Adaptation events (build/split/merge/deactivate/revive or crack
    /// partitions) this query triggered.
    pub adapt_events: u64,
    /// Nanoseconds in the prune phase (metadata probes).
    pub prune_ns: u64,
    /// Nanoseconds in the scan phase (kernels + result merge).
    pub scan_ns: u64,
    /// Nanoseconds in the observe phase (feedback + adaptation).
    pub observe_ns: u64,
    /// Worker threads the scan phase used (1 = sequential).
    pub threads_used: usize,
    /// Conjuncts whose index was probed (0 for single-column queries or
    /// when the planner fell back to scan-and-filter).
    pub conjuncts_probed: usize,
    /// True when a conjunction query probed no index at all (the planner's
    /// scan-and-filter fallback).
    pub plan_fallback: bool,
}

impl QueryMetrics {
    /// Fraction of an `n`-row table the scan did not touch.
    pub fn skip_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            1.0 - self.rows_scanned as f64 / n as f64
        }
    }
}

/// Running totals over a query sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct CumulativeMetrics {
    /// Queries executed.
    pub queries: u64,
    /// Total wall nanoseconds across queries (excludes index build).
    pub wall_ns: u64,
    /// Nanoseconds spent building the initial index.
    pub build_ns: u64,
    /// Total rows scanned.
    pub rows_scanned: u64,
    /// Total rows answered from metadata.
    pub rows_full_match: u64,
    /// Total metadata probes.
    pub zones_probed: u64,
    /// Total zones skipped.
    pub zones_skipped: u64,
    /// Total matching rows returned.
    pub rows_matched: u64,
    /// Total adaptation events.
    pub adapt_events: u64,
    /// Total nanoseconds pruning.
    pub prune_ns: u64,
    /// Total nanoseconds scanning.
    pub scan_ns: u64,
    /// Total nanoseconds observing.
    pub observe_ns: u64,
    /// Largest scan-phase thread count any query used.
    pub max_threads_used: usize,
    /// Queries that fell back to scan-and-filter without probing.
    pub plan_fallbacks: u64,
}

impl CumulativeMetrics {
    /// Folds one query's metrics in.
    pub fn absorb(&mut self, m: &QueryMetrics) {
        self.queries += 1;
        self.wall_ns += m.wall_ns;
        self.rows_scanned += m.rows_scanned as u64;
        self.rows_full_match += m.rows_full_match as u64;
        self.zones_probed += m.zones_probed as u64;
        self.zones_skipped += m.zones_skipped as u64;
        self.rows_matched += m.rows_matched;
        self.adapt_events += m.adapt_events;
        self.prune_ns += m.prune_ns;
        self.scan_ns += m.scan_ns;
        self.observe_ns += m.observe_ns;
        self.max_threads_used = self.max_threads_used.max(m.threads_used);
        // narrowing: bool -> u64 is 0 or 1 by definition.
        self.plan_fallbacks += m.plan_fallback as u64;
    }

    /// Mean query latency in nanoseconds (0 when no queries ran).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.queries as f64
        }
    }

    /// Total wall time including the build, in nanoseconds.
    pub fn total_with_build_ns(&self) -> u64 {
        self.wall_ns + self.build_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut c = CumulativeMetrics::default();
        let m = QueryMetrics {
            wall_ns: 100,
            zones_probed: 4,
            zones_skipped: 2,
            rows_scanned: 50,
            rows_full_match: 10,
            rows_matched: 12,
            adapt_events: 1,
            prune_ns: 5,
            scan_ns: 80,
            observe_ns: 15,
            threads_used: 4,
            conjuncts_probed: 2,
            plan_fallback: true,
        };
        c.absorb(&m);
        c.absorb(&m);
        assert_eq!(c.queries, 2);
        assert_eq!(c.wall_ns, 200);
        assert_eq!(c.rows_scanned, 100);
        assert_eq!(c.zones_probed, 8);
        assert_eq!(c.rows_matched, 24);
        assert_eq!(c.mean_latency_ns(), 100.0);
        assert_eq!((c.prune_ns, c.scan_ns, c.observe_ns), (10, 160, 30));
        assert_eq!(c.max_threads_used, 4);
        assert_eq!(c.plan_fallbacks, 2);
        c.absorb(&QueryMetrics::default());
        assert_eq!(c.max_threads_used, 4, "max, not last");
    }

    #[test]
    fn skip_fraction() {
        let m = QueryMetrics {
            rows_scanned: 25,
            ..Default::default()
        };
        assert!((m.skip_fraction(100) - 0.75).abs() < 1e-12);
        assert_eq!(m.skip_fraction(0), 0.0);
    }

    #[test]
    fn build_time_included_in_total() {
        let c = CumulativeMetrics {
            wall_ns: 10,
            build_ns: 5,
            ..Default::default()
        };
        assert_eq!(c.total_with_build_ns(), 15);
        assert_eq!(CumulativeMetrics::default().mean_latency_ns(), 0.0);
    }
}

//! Disjunctive predicates: `v IN (…)` and unions of ranges.
//!
//! A disjunction normalises to a set of disjoint ranges (sorted, merged),
//! then executes as one pruned query per range; because the ranges are
//! disjoint, counts and sums add and position lists merge without
//! duplicates. Each range pays its own prune — the same evaluation shape
//! mainstream engines use for OR-of-ranges over min/max statistics.

use crate::executor::{execute, AggKind, QueryAnswer};
use crate::metrics::QueryMetrics;
use ads_core::{RangePredicate, SkippingIndex};
use ads_storage::{Bitmap, DataValue};

/// Sorts and merges overlapping/adjacent ranges into a canonical disjoint
/// set. The result covers exactly the union of the inputs.
pub fn normalize_ranges<T: DataValue>(mut preds: Vec<RangePredicate<T>>) -> Vec<RangePredicate<T>> {
    preds.sort_by(|a, b| a.lo.total_cmp(&b.lo));
    let mut out: Vec<RangePredicate<T>> = Vec::with_capacity(preds.len());
    for p in preds {
        match out.last_mut() {
            // Overlapping (p.lo <= last.hi): extend. Merely adjacent
            // integer ranges (hi + 1 == lo) are kept separate — detecting
            // adjacency needs successor arithmetic the generic value
            // type does not offer, and correctness does not depend on it.
            Some(last) if p.lo.le_total(&last.hi) => {
                last.hi = last.hi.max_total(p.hi);
            }
            _ => out.push(p),
        }
    }
    out
}

/// Builds the point ranges of `v IN (values)`.
///
/// ```
/// use ads_engine::{in_list, execute_disjunction, AggKind, Strategy};
/// let data: Vec<i64> = (0..1000).collect();
/// let mut idx = Strategy::StaticZonemap { zone_rows: 100 }.build_index(&data);
/// let (answer, _) = execute_disjunction(&data, idx.as_mut(), in_list(&[5, 500, 2000]), AggKind::Count);
/// assert_eq!(answer.count, 2);
/// ```
pub fn in_list<T: DataValue>(values: &[T]) -> Vec<RangePredicate<T>> {
    normalize_ranges(values.iter().map(|&v| RangePredicate::point(v)).collect())
}

/// Executes a disjunction of ranges with aggregate `agg`.
///
/// The input is normalised first, so callers may pass overlapping ranges;
/// metrics are summed across the per-range executions (wall time is the
/// true total, probes count every metadata read paid).
pub fn execute_disjunction<T: DataValue>(
    data: &[T],
    index: &mut dyn SkippingIndex<T>,
    preds: Vec<RangePredicate<T>>,
    agg: AggKind,
) -> (QueryAnswer<T>, QueryMetrics) {
    let ranges = normalize_ranges(preds);
    let mut answer = QueryAnswer::<T>::default();
    if agg == AggKind::Sum {
        answer.sum = Some(0.0);
    }
    if agg == AggKind::Positions {
        answer.positions = Some(Vec::new());
    }
    let mut metrics = QueryMetrics::default();

    for pred in ranges {
        let (a, m) = execute(data, index, pred, agg);
        answer.count += a.count;
        if let (Some(total), Some(part)) = (answer.sum.as_mut(), a.sum) {
            *total += part;
        }
        answer.min = match (answer.min, a.min) {
            (Some(x), Some(y)) => Some(x.min_total(y)),
            (x, y) => x.or(y),
        };
        answer.max = match (answer.max, a.max) {
            (Some(x), Some(y)) => Some(x.max_total(y)),
            (x, y) => x.or(y),
        };
        if let (Some(all), Some(part)) = (answer.positions.as_mut(), a.positions) {
            all.extend(part);
        }
        metrics.wall_ns += m.wall_ns;
        metrics.zones_probed += m.zones_probed;
        metrics.zones_skipped += m.zones_skipped;
        metrics.rows_scanned += m.rows_scanned;
        metrics.rows_full_match += m.rows_full_match;
        metrics.adapt_events += m.adapt_events;
    }
    metrics.rows_matched = answer.count;

    if let Some(positions) = answer.positions.as_mut() {
        // Disjoint value ranges mean no duplicates, but view-coordinate
        // indexes reorganise *between* the per-range executions, so the
        // concatenation is not necessarily sorted. Scatter into a bitmap
        // and read back word-wise: one pass, already sorted, no
        // comparison sort over the (potentially large) match list.
        let mut bm = Bitmap::new(data.len());
        for &p in positions.iter() {
            // narrowing: positions are u32 row ids; usize is at least 32
            // bits on supported targets.
            bm.set(p as usize);
        }
        *positions = bm.to_positions();
    }
    (answer, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn data() -> Vec<i64> {
        (0..20_000).map(|i| (i * 2654435761i64) % 1000).collect()
    }

    fn reference_union(
        data: &[i64],
        ranges: &[RangePredicate<i64>],
        agg: AggKind,
    ) -> QueryAnswer<i64> {
        // Brute-force over the union predicate.
        let matches = |v: i64| ranges.iter().any(|p| p.matches(v));
        let mut answer = QueryAnswer::default();
        let qualifying: Vec<(usize, i64)> = data
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, v)| matches(v))
            .collect();
        answer.count = qualifying.len() as u64;
        match agg {
            AggKind::Sum => answer.sum = Some(qualifying.iter().map(|&(_, v)| v as f64).sum()),
            AggKind::Min => answer.min = qualifying.iter().map(|&(_, v)| v).min(),
            AggKind::Max => answer.max = qualifying.iter().map(|&(_, v)| v).max(),
            AggKind::Positions => {
                answer.positions = Some(qualifying.iter().map(|&(i, _)| i as u32).collect())
            }
            AggKind::Count => {}
        }
        answer
    }

    #[test]
    fn normalize_merges_overlaps_keeps_disjoint() {
        let norm = normalize_ranges(vec![
            RangePredicate::between(10i64, 20),
            RangePredicate::between(15, 30),
            RangePredicate::between(50, 60),
            RangePredicate::between(5, 12),
        ]);
        assert_eq!(norm.len(), 2);
        assert_eq!((norm[0].lo, norm[0].hi), (5, 30));
        assert_eq!((norm[1].lo, norm[1].hi), (50, 60));
    }

    #[test]
    fn normalize_handles_duplicates_and_points() {
        let norm = normalize_ranges(vec![
            RangePredicate::point(5i64),
            RangePredicate::point(5),
            RangePredicate::point(7),
        ]);
        assert_eq!(norm.len(), 2);
    }

    #[test]
    fn in_list_builds_points() {
        let preds = in_list(&[9i64, 3, 3, 7]);
        assert_eq!(preds.len(), 3);
        assert!(preds.windows(2).all(|w| w[0].lo < w[1].lo));
    }

    #[test]
    fn disjunction_matches_reference_across_strategies() {
        let data = data();
        let ranges = vec![
            RangePredicate::between(100i64, 150),
            RangePredicate::between(700, 720),
            RangePredicate::point(999),
        ];
        for strategy in Strategy::roster() {
            let mut idx = strategy.build_index(&data);
            for agg in [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max] {
                let (got, _) = execute_disjunction(&data, idx.as_mut(), ranges.clone(), agg);
                let want = reference_union(&data, &ranges, agg);
                assert_eq!(got.count, want.count, "{} {agg:?}", strategy.label());
                if agg == AggKind::Sum {
                    let (a, b) = (got.sum.unwrap(), want.sum.unwrap());
                    assert!((a - b).abs() < 1e-6, "{}", strategy.label());
                }
                assert_eq!(got.min, want.min);
                assert_eq!(got.max, want.max);
            }
        }
    }

    #[test]
    fn disjunction_positions_match_reference() {
        let data = data();
        let ranges = vec![
            RangePredicate::between(0i64, 10),
            RangePredicate::between(990, 999),
        ];
        for strategy in Strategy::roster() {
            let mut idx = strategy.build_index(&data);
            // Twice so adaptive/cracking state changes between runs.
            let _ = execute_disjunction(&data, idx.as_mut(), ranges.clone(), AggKind::Positions);
            let (got, _) =
                execute_disjunction(&data, idx.as_mut(), ranges.clone(), AggKind::Positions);
            let want = reference_union(&data, &ranges, AggKind::Positions);
            assert_eq!(got.positions, want.positions, "{}", strategy.label());
        }
    }

    #[test]
    fn overlapping_input_not_double_counted() {
        let data = data();
        let overlapping = vec![
            RangePredicate::between(100i64, 200),
            RangePredicate::between(150, 250),
        ];
        let mut idx = Strategy::FullScan.build_index(&data);
        let (got, _) =
            execute_disjunction(&data, idx.as_mut(), overlapping.clone(), AggKind::Count);
        let want = reference_union(&data, &overlapping, AggKind::Count);
        assert_eq!(got.count, want.count);
    }

    #[test]
    fn empty_disjunction() {
        let data = data();
        let mut idx = Strategy::FullScan.build_index(&data);
        let (got, m) = execute_disjunction(&data, idx.as_mut(), vec![], AggKind::Count);
        assert_eq!(got.count, 0);
        assert_eq!(m.rows_scanned, 0);
    }

    #[test]
    fn skipping_helps_in_lists_on_sorted_data() {
        let sorted: Vec<i64> = (0..100_000).collect();
        let mut idx = Strategy::StaticZonemap { zone_rows: 1024 }.build_index(&sorted);
        let preds = in_list(&[5i64, 50_000, 99_999]);
        let (got, m) = execute_disjunction(&sorted, idx.as_mut(), preds, AggKind::Count);
        assert_eq!(got.count, 3);
        assert!(m.rows_scanned <= 3 * 1024, "scanned {}", m.rows_scanned);
    }
}

//! Execution policy: how much hardware parallelism one query may use.
//!
//! The policy is deliberately tiny — a thread budget plus a
//! profitability floor — because the paper's protocol fixes everything
//! else: *what* to scan comes from the index's [`ads_core::PruneOutcome`],
//! and the executor merges per-unit results in unit order, so answers and
//! observation feedback are bit-identical at any thread count. Parallelism
//! is purely a latency knob, never a semantics knob.

use ads_storage::parallel;

/// Per-session (or per-query) execution configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Maximum worker threads one query's scan phase may use. `0` and `1`
    /// both mean sequential.
    pub threads: usize,
    /// Minimum scanned rows per thread before an extra thread pays for its
    /// start-up; queries below `threads * min_rows_per_thread` rows use
    /// fewer threads (possibly one).
    pub min_rows_per_thread: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::sequential()
    }
}

impl ExecPolicy {
    /// The sequential policy: one thread, classic executor behaviour.
    pub fn sequential() -> Self {
        ExecPolicy {
            threads: 1,
            min_rows_per_thread: parallel::MIN_ROWS_PER_THREAD,
        }
    }

    /// A parallel policy with the default profitability floor.
    pub fn parallel(threads: usize) -> Self {
        ExecPolicy {
            threads,
            ..ExecPolicy::sequential()
        }
    }

    /// Threads a scan over `rows` rows will actually use under this policy.
    pub fn effective_threads(&self, rows: usize) -> usize {
        parallel::effective_threads(rows, self.threads, self.min_rows_per_thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecPolicy::default().threads, 1);
        assert_eq!(ExecPolicy::default().effective_threads(usize::MAX), 1);
    }

    #[test]
    fn effective_threads_respects_floor() {
        let p = ExecPolicy {
            threads: 8,
            min_rows_per_thread: 1000,
        };
        assert_eq!(p.effective_threads(500), 1);
        assert_eq!(p.effective_threads(2_000), 2);
        assert_eq!(p.effective_threads(1_000_000), 8);
        assert_eq!(ExecPolicy::parallel(0).effective_threads(1_000_000), 1);
    }
}

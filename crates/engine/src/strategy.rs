//! Strategy descriptors: declarative picks of a skipping structure.

use ads_baselines::{ColumnImprints, CrackerColumn, FullScan, SortedOracle};
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::{Activated, SkippingIndex, StaticZonemap};
use ads_storage::DataValue;

/// A declarative description of which skipping structure to use; the
/// engine builds the matching [`SkippingIndex`] per column.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// No skipping: plain full scans.
    FullScan,
    /// Classic eager zonemap with fixed `zone_rows` granularity.
    StaticZonemap {
        /// Rows per zone.
        zone_rows: usize,
    },
    /// Adaptive zonemap (the paper's contribution).
    Adaptive(AdaptiveConfig),
    /// Column imprints.
    Imprints {
        /// Rows per imprint line.
        values_per_line: usize,
        /// Histogram bins (2..=64).
        bins: usize,
    },
    /// Database cracking.
    Cracking,
    /// Fully sorted projection (upper bound).
    SortedOracle,
    /// Index-level adaptation: any base-coordinate strategy wrapped with
    /// benefit metering and dormancy (see [`ads_core::Activated`]).
    Activated(Box<Strategy>),
}

impl Strategy {
    /// Builds the index for a column. Build cost (eager for static
    /// structures, O(zones) for adaptive) is the caller's to measure.
    pub fn build_index<T: DataValue>(&self, data: &[T]) -> Box<dyn SkippingIndex<T>> {
        match self {
            Strategy::FullScan => Box::new(FullScan::new(data.len())),
            Strategy::StaticZonemap { zone_rows } => {
                Box::new(StaticZonemap::build(data, *zone_rows))
            }
            Strategy::Adaptive(config) => {
                Box::new(AdaptiveZonemap::new(data.len(), config.clone()))
            }
            Strategy::Imprints {
                values_per_line,
                bins,
            } => Box::new(ColumnImprints::build(data, *values_per_line, *bins)),
            Strategy::Cracking => Box::new(CrackerColumn::build(data)),
            Strategy::SortedOracle => Box::new(SortedOracle::build(data)),
            Strategy::Activated(inner) => {
                assert!(
                    inner.base_coords(),
                    "Activated requires a base-coordinate inner strategy"
                );
                let built = inner.build_index(data);
                Box::new(Activated::with_defaults(built, data.len()))
            }
        }
    }

    /// Short label for reports (matches the built index's `name()` shape).
    pub fn label(&self) -> String {
        match self {
            Strategy::FullScan => "full-scan".into(),
            Strategy::StaticZonemap { zone_rows } => format!("static-zonemap({zone_rows})"),
            Strategy::Adaptive(_) => "adaptive-zonemap".into(),
            Strategy::Imprints {
                values_per_line,
                bins,
            } => format!("imprints({values_per_line}x{bins})"),
            Strategy::Cracking => "cracking".into(),
            Strategy::SortedOracle => "sorted-oracle".into(),
            Strategy::Activated(inner) => format!("activated({})", inner.label()),
        }
    }

    /// The default comparison roster used across the experiments.
    pub fn roster() -> Vec<Strategy> {
        vec![
            Strategy::FullScan,
            Strategy::StaticZonemap { zone_rows: 4096 },
            Strategy::Adaptive(AdaptiveConfig::default()),
            Strategy::Imprints {
                values_per_line: 8,
                bins: 64,
            },
            Strategy::Cracking,
            Strategy::SortedOracle,
        ]
    }

    /// True for strategies whose pruned ranges address the base column
    /// (required for multi-column intersection).
    pub fn base_coords(&self) -> bool {
        !matches!(self, Strategy::Cracking | Strategy::SortedOracle)
    }

    /// Convenience: wraps this strategy in index-level activation.
    pub fn activated(self) -> Strategy {
        Strategy::Activated(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::RangePredicate;

    #[test]
    fn builds_every_roster_entry() {
        let data: Vec<i64> = (0..1000).collect();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let out = idx.prune(&RangePredicate::between(10, 20));
            // Soundness smoke check: candidates plus full matches must be
            // able to hold the 11 qualifying rows.
            assert!(
                out.rows_to_scan() + out.rows_full_match() >= 11 || out.rows_full_match() == 11,
                "{} lost rows",
                strat.label()
            );
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = Strategy::roster().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn coords_classification() {
        assert!(Strategy::FullScan.base_coords());
        assert!(Strategy::StaticZonemap { zone_rows: 64 }.base_coords());
        assert!(!Strategy::Cracking.base_coords());
        assert!(!Strategy::SortedOracle.base_coords());
        assert!(Strategy::StaticZonemap { zone_rows: 64 }
            .activated()
            .base_coords());
    }

    #[test]
    fn activated_strategy_builds_and_answers() {
        let data: Vec<i64> = (0..5000).collect();
        let strat = Strategy::StaticZonemap { zone_rows: 256 }.activated();
        assert_eq!(strat.label(), "activated(static-zonemap(256))");
        let mut idx = strat.build_index(&data);
        let out = idx.prune(&RangePredicate::between(100, 199));
        assert!(out.rows_to_scan() + out.rows_full_match() >= 100);
    }

    #[test]
    #[should_panic(expected = "base-coordinate")]
    fn activated_rejects_view_strategies() {
        let data: Vec<i64> = vec![1, 2, 3];
        Strategy::Cracking.activated().build_index(&data);
    }
}

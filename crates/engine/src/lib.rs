//! # ads-engine — scan executor with pluggable data skipping
//!
//! The query-engine layer of the reproduction: it executes range-predicate
//! scan queries (COUNT / SUM / MIN / MAX / POSITIONS) over `ads-storage`
//! columns, delegating pruning to any [`ads_core::SkippingIndex`] and
//! feeding scan by-products back so adaptive structures can reorganise.
//!
//! * [`Strategy`] — declarative index choice (full scan, static zonemap,
//!   adaptive zonemap, imprints, cracking, sorted oracle);
//! * [`executor::execute`] — one query end-to-end, with [`QueryMetrics`];
//! * [`ColumnSession`] — a column + strategy + cumulative metrics, the unit
//!   every experiment compares;
//! * [`TableSession`] — conjunctive multi-column filtering by candidate
//!   range intersection, with a cost-based probe planner ([`planner`])
//!   that orders, restricts, and gates per-column metadata probes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjunction;
pub mod exec_policy;
pub mod executor;
pub mod histogram;
pub mod metrics;
pub mod planner;
pub mod session;
pub mod sharded_exec;
pub mod strategy;
pub mod string_session;
pub mod table_session;

pub use disjunction::{execute_disjunction, in_list, normalize_ranges};
pub use exec_policy::ExecPolicy;
pub use executor::{
    execute, execute_reference, execute_reference_with_deletes, execute_with_policy, scan_pruned,
    scan_pruned_with_deletes, AggKind, QueryAnswer, ScanPhase,
};
pub use histogram::LatencyHistogram;
pub use metrics::{CumulativeMetrics, QueryMetrics};
pub use planner::{FallbackReason, PlanMode, PlanStep, PlanTrace};
pub use session::ColumnSession;
pub use sharded_exec::{
    execute_sharded, execute_sharded_with_deletes, scan_sharded, ShardLaneMetrics, ShardScanInput,
    ShardedQueryMetrics, ShardedScanResult,
};
pub use strategy::Strategy;
pub use string_session::StringColumnSession;
pub use table_session::{AnyPredicate, TableSession, TableSessionError};

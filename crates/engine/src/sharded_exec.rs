//! Shard-aware execution: prune each shard independently, fan every
//! shard's scan units through one parallel map, merge in shard order.
//!
//! The sharded path reuses the unsharded executor's machinery wholesale:
//! per shard it builds the same work-item list ([`build_work_items`]),
//! scans items with the same pure kernel dispatch ([`scan_item`]), and
//! folds per-item results with the same merge ([`merge_item_results`]) —
//! the only new code is the shard-major concatenation around it. Two
//! consequences, both load-bearing:
//!
//! * **Equivalence at one shard.** With `shards = 1` the global item
//!   list, the thread split, every kernel call, the answer fold, and the
//!   observation batch are exactly the unsharded [`scan_pruned`]'s — the
//!   sharded path *is* the old path, so answers and all downstream
//!   adaptation are bit-identical (pinned by the regression suite).
//! * **Deterministic merges at any shard count.** Items are ordered
//!   shard-major and each shard's partial results fold in item order, so
//!   f64 SUM accumulation order is a pure function of the prune outcomes
//!   — never of the thread count.
//!
//! [`scan_pruned`]: crate::executor::scan_pruned

use crate::exec_policy::ExecPolicy;
use crate::executor::{
    build_work_items, merge_item_results, scan_item, AggKind, ItemResult, QueryAnswer, ScanPhase,
    WorkItem,
};
use crate::metrics::QueryMetrics;
use ads_core::adaptive::ShardedZonemap;
use ads_core::{PruneOutcome, RangePredicate, ScanObservation, SkippingIndex};
use ads_storage::{parallel, DataValue, DeleteVector, ShardedColumn};
use std::time::Instant;

/// What one shard's lane contributed to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardLaneMetrics {
    /// Shard index.
    pub shard: usize,
    /// Rows the shard holds.
    pub rows: usize,
    /// Zone-metadata entries examined in this shard.
    pub zones_probed: usize,
    /// Zones excluded by metadata in this shard.
    pub zones_skipped: usize,
    /// Rows the scan actually touched in this shard.
    pub rows_scanned: usize,
    /// Rows answered from metadata alone in this shard.
    pub rows_full_match: usize,
    /// Rows of this shard satisfying the predicate.
    pub rows_matched: u64,
}

/// [`QueryMetrics`] plus the per-shard breakdown. The flat `query` view
/// sums the lanes, so existing consumers (`CumulativeMetrics::absorb`,
/// stats displays) keep working unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryMetrics {
    /// Whole-query totals, shaped exactly like the unsharded metrics.
    pub query: QueryMetrics,
    /// Per-shard prune/skip accounting, in shard order.
    pub shards: Vec<ShardLaneMetrics>,
}

/// One shard's scan-phase input: its column slice, its (already computed)
/// prune outcome in shard-local coordinates, and its global start row.
pub struct ShardScanInput<'a, T: DataValue> {
    /// The shard's column data.
    pub data: &'a [T],
    /// The shard lane's prune outcome, in shard-local row coordinates.
    pub outcome: &'a PruneOutcome,
    /// Global row id of the shard's first row (offsets POSITIONS output).
    pub start: usize,
    /// The shard's tombstones, in shard-local row coordinates; `None` (or
    /// an all-live vector) scans unmasked.
    pub live: Option<&'a DeleteVector>,
}

/// What [`scan_sharded`] produced.
pub struct ShardedScanResult<T: DataValue> {
    /// The merged global answer (positions in global row ids).
    pub answer: QueryAnswer<T>,
    /// One observation batch per shard, in shard order and shard-local
    /// coordinates — ready to feed to the matching lane's `observe` /
    /// `apply_feedback`. Every shard gets an entry, even fully skipped
    /// ones, because the feedback protocol's bookkeeping (query clocks,
    /// skip counters, revival) runs per lane per query.
    pub observations: Vec<ScanObservation<T>>,
    /// Timing and sizing of the fused scan phase.
    pub phase: ScanPhase,
    /// Per-shard accounting, in shard order.
    pub lanes: Vec<ShardLaneMetrics>,
}

/// The pure read path of a sharded query: scans every shard's pruned
/// outcome in one weighted parallel fan and merges shard-major.
///
/// Like [`scan_pruned`](crate::executor::scan_pruned) this touches no
/// index state and is callable with shared references only, so concurrent
/// readers can execute against immutable per-shard snapshots — each lane
/// of which may be a *different* published version: soundness is
/// shard-local (each outcome describes exactly its own slice), so any mix
/// of lane versions yields exact answers for the union of those versions.
pub fn scan_sharded<T: DataValue>(
    inputs: &[ShardScanInput<'_, T>],
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
) -> ShardedScanResult<T> {
    let t_scan = Instant::now();

    // Shard-major global work list, remembering each shard's item count
    // so results can be sliced back per shard after the fan.
    let lane_items: Vec<Vec<WorkItem>> = inputs
        .iter()
        .map(|l| build_work_items(l.outcome, agg))
        .collect();
    let mut tagged: Vec<(usize, WorkItem)> =
        Vec::with_capacity(lane_items.iter().map(Vec::len).sum());
    for (s, items) in lane_items.iter().enumerate() {
        tagged.extend(items.iter().map(|it| (s, *it)));
    }

    let scan_rows: usize = tagged.iter().map(|(_, it)| it.rows()).sum();
    let threads_used = policy.effective_threads(scan_rows);

    let mut results: Vec<ItemResult<T>> = parallel::par_map_weighted(
        &tagged,
        threads_used,
        |(_, it)| it.rows(),
        |_, (s, item)| {
            scan_item(
                inputs[*s].data,
                &inputs[*s].outcome.reorg_units,
                pred,
                agg,
                item,
                inputs[*s].live.filter(|dv| dv.has_deletes()),
            )
        },
    );

    // Split results back into per-shard runs (they are contiguous because
    // the work list is shard-major). Back-to-front so each split is O(run).
    let mut per_lane: Vec<Vec<ItemResult<T>>> = Vec::with_capacity(inputs.len());
    for items in lane_items.iter().rev() {
        per_lane.push(results.split_off(results.len() - items.len()));
    }
    per_lane.reverse();

    // Fold shard partials in shard order. Each shard's partial comes from
    // the same in-order item merge the unsharded executor uses.
    let mut answer = QueryAnswer::default();
    let mut sum = 0.0f64;
    let mut mmin = T::MAX_VALUE;
    let mut mmax = T::MIN_VALUE;
    let mut positions: Vec<u32> = Vec::new();
    let mut observations: Vec<ScanObservation<T>> = Vec::with_capacity(inputs.len());
    let mut lanes: Vec<ShardLaneMetrics> = Vec::with_capacity(inputs.len());
    let mut rows_scanned_total = 0usize;

    for (s, (input, (items, lane_results))) in inputs
        .iter()
        .zip(lane_items.iter().zip(per_lane))
        .enumerate()
    {
        let (lane_answer, lane_obs, lane_rows_scanned) = merge_item_results(
            input.outcome,
            pred,
            agg,
            items,
            lane_results,
            input.live.filter(|dv| dv.has_deletes()),
        );
        answer.count += lane_answer.count;
        if let Some(lane_sum) = lane_answer.sum {
            sum += lane_sum;
        }
        if let Some(m) = lane_answer.min {
            mmin = mmin.min_total(m);
        }
        if let Some(m) = lane_answer.max {
            mmax = mmax.max_total(m);
        }
        if let Some(p) = lane_answer.positions {
            // Lane positions are shard-local and sorted; shards are
            // contiguous in shard order, so offset-and-append keeps the
            // global list sorted.
            // narrowing: shard starts are u32 row ids by the storage
            // contract.
            positions.extend(p.into_iter().map(|pos| pos + input.start as u32));
        }
        rows_scanned_total += lane_rows_scanned;
        lanes.push(ShardLaneMetrics {
            shard: s,
            rows: input.data.len(),
            zones_probed: input.outcome.zones_probed,
            zones_skipped: input.outcome.zones_skipped,
            rows_scanned: lane_rows_scanned,
            rows_full_match: input.outcome.rows_full_match()
                + input.outcome.rows_positional_match(),
            rows_matched: lane_answer.count,
        });
        observations.push(lane_obs);
    }

    match agg {
        AggKind::Count => {}
        AggKind::Sum => answer.sum = Some(sum),
        AggKind::Min => answer.min = (answer.count > 0).then_some(mmin),
        AggKind::Max => answer.max = (answer.count > 0).then_some(mmax),
        AggKind::Positions => answer.positions = Some(positions),
    }

    ShardedScanResult {
        answer,
        observations,
        phase: ScanPhase {
            rows_scanned: rows_scanned_total,
            threads_used,
            scan_ns: t_scan.elapsed().as_nanos() as u64,
        },
        lanes,
    }
}

/// Executes one query over a sharded column with inline adaptation: every
/// lane runs prune → scan → observe exactly as the unsharded
/// [`execute_with_policy`](crate::executor::execute_with_policy) does,
/// with the scan phase fused across shards.
pub fn execute_sharded<T: DataValue>(
    column: &ShardedColumn<T>,
    zonemap: &mut ShardedZonemap<T>,
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
) -> (QueryAnswer<T>, ShardedQueryMetrics) {
    execute_sharded_with_deletes(column, zonemap, None, pred, agg, policy)
}

/// As [`execute_sharded`], masking each shard's tombstoned rows via
/// `deletes` when given (one [`DeleteVector`] per shard, in shard-local
/// coordinates). This is the inline-adaptation mutation path: answers
/// cover live rows only, while the observations applied to each lane keep
/// `(min, max)` over all rows so zone bounds stay conservative over
/// tombstones.
///
/// # Panics
/// Panics if shard layouts differ, or `deletes` is `Some` with a vector
/// count or per-shard length not matching the column.
pub fn execute_sharded_with_deletes<T: DataValue>(
    column: &ShardedColumn<T>,
    zonemap: &mut ShardedZonemap<T>,
    deletes: Option<&[DeleteVector]>,
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
) -> (QueryAnswer<T>, ShardedQueryMetrics) {
    assert_eq!(
        column.num_shards(),
        zonemap.num_shards(),
        "column and zonemap shard layouts differ"
    );
    if let Some(dvs) = deletes {
        assert_eq!(
            dvs.len(),
            column.num_shards(),
            "one delete vector per shard required"
        );
        for (s, dv) in dvs.iter().enumerate() {
            assert_eq!(
                dv.len(),
                column.shard(s).len(),
                "shard {s} delete vector length mismatch"
            );
        }
    }
    let t0 = Instant::now();
    let events_before: u64 = zonemap.lanes().iter().map(|l| l.adapt_events()).sum();

    // Prune every lane mutably — each lane's query clock, skip counters,
    // and revival checks advance every query, matching the inline
    // protocol even for shards the predicate entirely skips.
    let outcomes: Vec<PruneOutcome> = (0..zonemap.num_shards())
        .map(|s| zonemap.lane_mut(s).prune(&pred))
        .collect();
    let prune_ns = t0.elapsed().as_nanos() as u64;

    let inputs: Vec<ShardScanInput<'_, T>> = outcomes
        .iter()
        .enumerate()
        .map(|(s, outcome)| ShardScanInput {
            data: column.shard(s).as_slice(),
            outcome,
            start: column.start(s),
            live: deletes.map(|dvs| &dvs[s]),
        })
        .collect();
    let result = scan_sharded(&inputs, pred, agg, policy);
    drop(inputs);

    let t_obs = Instant::now();
    for (s, obs) in result.observations.iter().enumerate() {
        let lane = zonemap.lane_mut(s);
        lane.observe(obs);
        SkippingIndex::maintain(lane, column.shard(s).as_slice());
    }
    let observe_ns = t_obs.elapsed().as_nanos() as u64;

    let events_after: u64 = zonemap.lanes().iter().map(|l| l.adapt_events()).sum();
    let query = QueryMetrics {
        wall_ns: t0.elapsed().as_nanos() as u64,
        zones_probed: result.lanes.iter().map(|l| l.zones_probed).sum(),
        zones_skipped: result.lanes.iter().map(|l| l.zones_skipped).sum(),
        rows_scanned: result.phase.rows_scanned,
        rows_full_match: result.lanes.iter().map(|l| l.rows_full_match).sum(),
        rows_matched: result.answer.count,
        adapt_events: events_after - events_before,
        prune_ns,
        scan_ns: result.phase.scan_ns,
        observe_ns,
        threads_used: result.phase.threads_used,
        conjuncts_probed: 0,
        plan_fallback: false,
    };
    (
        result.answer,
        ShardedQueryMetrics {
            query,
            shards: result.lanes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_reference;
    use ads_core::adaptive::AdaptiveConfig;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            target_zone_rows: 128,
            min_zone_rows: 16,
            max_zone_rows: 1024,
            ..AdaptiveConfig::default()
        }
    }

    const ALL_AGGS: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Positions,
    ];

    #[test]
    fn sharded_matches_reference_across_shard_and_thread_counts() {
        let data: Vec<i64> = (0..7001).map(|i| (i * 2654435761i64) % 5000).collect();
        for shards in [1, 3, 8] {
            for threads in [1, 4] {
                let column = ShardedColumn::new(data.clone(), shards);
                let mut zm = ShardedZonemap::for_column(&column, cfg());
                let policy = ExecPolicy {
                    threads,
                    min_rows_per_thread: 1,
                };
                for q in 0..20 {
                    let lo = (q * 211) % 4500;
                    let pred = RangePredicate::between(lo, lo + 400);
                    let agg = ALL_AGGS[q as usize % ALL_AGGS.len()];
                    let (got, m) = execute_sharded(&column, &mut zm, pred, agg, &policy);
                    let want = execute_reference(&data, pred, agg);
                    assert_eq!(got, want, "s={shards} t={threads} q={q} {agg:?}");
                    assert_eq!(m.shards.len(), shards);
                    assert_eq!(
                        m.query.rows_matched,
                        m.shards.iter().map(|l| l.rows_matched).sum::<u64>()
                    );
                }
            }
        }
    }

    #[test]
    fn masked_sharded_matches_delete_aware_reference() {
        use crate::executor::execute_reference_with_deletes;
        let data: Vec<i64> = (0..5003).map(|i| (i * 2654435761i64) % 4000).collect();
        for shards in [1, 4] {
            for threads in [1, 4] {
                let column = ShardedColumn::new(data.clone(), shards);
                // Shard-local delete vectors tombstoning every 5th global
                // row, plus a mirrored global vector for the reference.
                let mut global = DeleteVector::new(data.len(), 1);
                let mut per_shard: Vec<DeleteVector> = (0..shards)
                    .map(|s| DeleteVector::new(column.shard(s).len(), 1))
                    .collect();
                for r in (0..data.len()).step_by(5) {
                    global.delete(r);
                    let s = (0..shards)
                        .rfind(|&s| column.start(s) <= r)
                        .expect("row maps to a shard");
                    per_shard[s].delete(r - column.start(s));
                }
                let mut zm = ShardedZonemap::for_column(&column, cfg());
                let policy = ExecPolicy {
                    threads,
                    min_rows_per_thread: 1,
                };
                for q in 0..15 {
                    let lo = (q * 307) % 3500;
                    let pred = RangePredicate::between(lo, lo + 500);
                    let agg = ALL_AGGS[q as usize % ALL_AGGS.len()];
                    let (got, _) = execute_sharded_with_deletes(
                        &column,
                        &mut zm,
                        Some(&per_shard),
                        pred,
                        agg,
                        &policy,
                    );
                    let want = execute_reference_with_deletes(&data, &global, pred, agg);
                    assert_eq!(
                        got.count, want.count,
                        "s={shards} t={threads} q={q} {agg:?}"
                    );
                    assert_eq!(
                        got.sum.map(f64::to_bits),
                        want.sum.map(f64::to_bits),
                        "s={shards} t={threads} q={q} {agg:?}: sum bits diverged"
                    );
                    assert_eq!(got.min, want.min, "s={shards} t={threads} q={q} {agg:?}");
                    assert_eq!(got.max, want.max, "s={shards} t={threads} q={q} {agg:?}");
                    assert_eq!(
                        got.positions, want.positions,
                        "s={shards} t={threads} q={q} {agg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_live_vectors_scan_identically_to_no_vectors() {
        let data: Vec<i64> = (0..3000).map(|i| (i * 97) % 1000).collect();
        let column = ShardedColumn::new(data.clone(), 3);
        let empty: Vec<DeleteVector> = (0..3)
            .map(|s| DeleteVector::new(column.shard(s).len(), 0))
            .collect();
        let mut zm1 = ShardedZonemap::for_column(&column, cfg());
        let mut zm2 = ShardedZonemap::for_column(&column, cfg());
        let pred = RangePredicate::between(100, 400);
        for agg in ALL_AGGS {
            let (a, _) = execute_sharded(&column, &mut zm1, pred, agg, &ExecPolicy::sequential());
            let (b, _) = execute_sharded_with_deletes(
                &column,
                &mut zm2,
                Some(&empty),
                pred,
                agg,
                &ExecPolicy::sequential(),
            );
            assert_eq!(a, b, "{agg:?}");
        }
    }

    #[test]
    fn lane_metrics_attribute_rows_to_the_right_shard() {
        // Sorted data: after adaptation a narrow predicate touches one
        // shard only, and the others report skips, not scans.
        let data: Vec<i64> = (0..4000).collect();
        let column = ShardedColumn::new(data.clone(), 4);
        let mut zm = ShardedZonemap::for_column(&column, cfg());
        let pred = RangePredicate::between(100, 200);
        let policy = ExecPolicy::sequential();
        for _ in 0..3 {
            execute_sharded(&column, &mut zm, pred, AggKind::Count, &policy);
        }
        let (_, m) = execute_sharded(&column, &mut zm, pred, AggKind::Count, &policy);
        assert_eq!(m.shards[0].rows_matched, 101);
        for lane in &m.shards[1..] {
            assert_eq!(lane.rows_matched, 0, "shard {}", lane.shard);
            assert_eq!(lane.rows_scanned, 0, "shard {} scanned", lane.shard);
            assert!(lane.zones_skipped > 0, "shard {} skipped", lane.shard);
        }
    }

    #[test]
    fn empty_tail_shards_are_harmless() {
        // 49 rows over 8 shards: chunk = 7, the first 7 shards cover
        // everything and the 8th is empty.
        let data: Vec<i64> = (0..49).collect();
        let column = ShardedColumn::new(data.clone(), 8);
        let mut zm = ShardedZonemap::for_column(&column, cfg());
        let pred = RangePredicate::between(10, 39);
        let (got, m) = execute_sharded(
            &column,
            &mut zm,
            pred,
            AggKind::Positions,
            &ExecPolicy::sequential(),
        );
        let want = execute_reference(&data, pred, AggKind::Positions);
        assert_eq!(got, want);
        assert_eq!(m.shards.last().unwrap().rows, 0);
    }
}

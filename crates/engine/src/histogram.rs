//! A log-bucketed latency histogram with percentile queries.
//!
//! One implementation serves every consumer that reports latency
//! distributions — the benchmark experiments (E15/E16) and the query
//! service's stats surface — so their percentiles are comparable by
//! construction.
//!
//! Buckets are logarithmic with 8 linear sub-buckets per octave: values
//! `0..8` are recorded exactly, larger values land in the bucket whose
//! lower bound is at most 12.5% below the true value. Recording is O(1)
//! with no allocation; merging is element-wise, which is what lets each
//! worker thread keep a private histogram and the stats reader fold them.

/// Linear sub-buckets per octave, as a power of two.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: exact values `0..SUB`, then `SUB` sub-buckets for
/// each of the `64 - SUB_BITS` octaves a `u64` can occupy.
// narrowing: compile-time constant far below usize::MAX.
const BUCKETS: usize = (SUB + (64 - SUB_BITS) as u64 * SUB) as usize;

/// A mergeable latency histogram over `u64` nanosecond samples.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of a sample.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        // narrowing: v < SUB (a small constant) here.
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (msb - SUB_BITS)) & (SUB - 1);
    // narrowing: bucket index is bounded by BUCKETS, a small constant.
    (SUB + (msb - SUB_BITS) as u64 * SUB + sub) as usize
}

/// Lower bound of a bucket — the value [`LatencyHistogram::percentile_ns`]
/// reports, so reported percentiles never exceed the true sample.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let octave = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    (SUB + sub) << octave
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Folds `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `p`-quantile (`p` in `[0, 1]`), reported as the lower bound of
    /// the containing bucket: at most the true sample value and within
    /// 12.5% below it. Returns 0 when empty.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 95th percentile.
    pub fn p95_ns(&self) -> u64 {
        self.percentile_ns(0.95)
    }

    /// 99th percentile.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Lower bounds are strictly increasing and invert bucket_of.
        for i in 1..BUCKETS {
            assert!(bucket_lower(i) > bucket_lower(i - 1), "bucket {i}");
            assert_eq!(bucket_of(bucket_lower(i)), i, "bucket {i}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(3);
        }
        assert_eq!(h.p50_ns(), 3);
        assert_eq!(h.p99_ns(), 3);
        assert_eq!(h.min_ns(), 3);
        assert_eq!(h.max_ns(), 3);
        assert_eq!(h.mean_ns(), 3.0);
    }

    #[test]
    fn percentiles_on_a_known_uniform_distribution() {
        // 1..=1000 once each: true p50 = 500, p95 = 950, p99 = 990.
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        for (p, truth) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let got = h.percentile_ns(p);
            assert!(
                got <= truth && got as f64 >= truth as f64 * 0.875,
                "p{p}: got {got}, truth {truth}"
            );
        }
        assert!((h.mean_ns() - 500.5).abs() < 1e-9);
        assert_eq!((h.min_ns(), h.max_ns()), (1, 1000));
    }

    #[test]
    fn percentiles_on_a_bimodal_distribution() {
        // 99 fast samples and 1 slow one: p50 fast, p99+ reaches the tail.
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert!(h.p50_ns() <= 1_000 && h.p50_ns() >= 875);
        assert!(h.percentile_ns(1.0) >= 875_000);
        assert_eq!(h.max_ns(), 1_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..500u64 {
            b.record(v * 131 + 9);
            whole.record(v * 131 + 9);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50_ns(), whole.p50_ns());
        assert_eq!(a.p99_ns(), whole.p99_ns());
        assert_eq!(a.min_ns(), whole.min_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert!((a.mean_ns() - whole.mean_ns()).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
    }
}

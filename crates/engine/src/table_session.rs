//! Multi-column sessions: conjunctive predicates over a table, one
//! skipping index per filtered column.
//!
//! Pruning composes by intersection: each column's index nominates its
//! candidate ranges, the executor scans only the intersection, and rows in
//! the intersection of every column's *full-match* ranges are answered
//! without any scan. View-coordinate strategies (cracking, sorted oracle)
//! emit positions in their own copy's order and therefore cannot join this
//! intersection; constructing a table session with one is an error —
//! matching the literature, where cracking is a single-column technique.

use crate::executor::AggKind;
use crate::metrics::{CumulativeMetrics, QueryMetrics};
use crate::strategy::Strategy;
use ads_core::{RangeObservation, RangePredicate, ScanObservation, SkippingIndex};
use ads_storage::{scan, Bitmap, Column, DataValue, RangeSet, StorageError, Table};
use std::collections::BTreeMap;
use std::time::Instant;

/// A range predicate over a column of any supported type.
#[derive(Debug, Clone, Copy)]
pub enum AnyPredicate {
    /// Predicate on an `i32` column.
    I32(RangePredicate<i32>),
    /// Predicate on an `i64` column.
    I64(RangePredicate<i64>),
    /// Predicate on a `u64` column.
    U64(RangePredicate<u64>),
    /// Predicate on an `f64` column.
    F64(RangePredicate<f64>),
}

/// A skipping index over a column of any supported type.
enum AnyIndex {
    I32(Box<dyn SkippingIndex<i32>>),
    I64(Box<dyn SkippingIndex<i64>>),
    U64(Box<dyn SkippingIndex<u64>>),
    F64(Box<dyn SkippingIndex<f64>>),
}

/// Errors from table-session operations.
#[derive(Debug)]
pub enum TableSessionError {
    /// Underlying storage error (missing column, type mismatch, ...).
    Storage(StorageError),
    /// The strategy answers in view coordinates and cannot be intersected.
    ViewStrategy(String),
    /// A conjunct referenced a column with no index.
    NoIndex(String),
    /// Predicate type does not match the column type.
    PredicateType {
        /// Column name.
        column: String,
        /// Stored type.
        expected: &'static str,
    },
}

impl std::fmt::Display for TableSessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableSessionError::Storage(e) => write!(f, "storage error: {e}"),
            TableSessionError::ViewStrategy(s) => {
                write!(f, "strategy {s} answers in view coordinates; multi-column sessions need base coordinates")
            }
            TableSessionError::NoIndex(c) => write!(f, "no index on column {c}"),
            TableSessionError::PredicateType { column, expected } => {
                write!(
                    f,
                    "predicate type mismatch on {column}: column is {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TableSessionError {}

impl From<StorageError> for TableSessionError {
    fn from(e: StorageError) -> Self {
        TableSessionError::Storage(e)
    }
}

/// Result alias for table-session operations.
pub type Result<T> = std::result::Result<T, TableSessionError>;

/// A table plus one skipping index per filtered column.
pub struct TableSession {
    table: Table,
    indexes: BTreeMap<String, AnyIndex>,
    totals: CumulativeMetrics,
}

impl TableSession {
    /// Builds `strategy` indexes over the named columns of `table`.
    pub fn new(table: Table, strategy: &Strategy, columns: &[&str]) -> Result<Self> {
        if !strategy.base_coords() {
            return Err(TableSessionError::ViewStrategy(strategy.label()));
        }
        let t0 = Instant::now();
        let mut indexes = BTreeMap::new();
        for &name in columns {
            let col = table.column(name)?;
            let idx = match col {
                ads_storage::AnyColumn::I32(c) => AnyIndex::I32(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::I64(c) => AnyIndex::I64(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::U64(c) => AnyIndex::U64(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::F64(c) => AnyIndex::F64(strategy.build_index(c.as_slice())),
            };
            indexes.insert(name.to_string(), idx);
        }
        Ok(TableSession {
            table,
            indexes,
            totals: CumulativeMetrics {
                build_ns: t0.elapsed().as_nanos() as u64,
                ..Default::default()
            },
        })
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Running totals.
    pub fn totals(&self) -> &CumulativeMetrics {
        &self.totals
    }

    /// Counts rows satisfying every conjunct.
    pub fn count_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
    ) -> Result<(u64, QueryMetrics)> {
        let (answer, metrics) = self.run_conjunction(conjuncts, AggKind::Count, None)?;
        Ok((answer, metrics))
    }

    /// Sums `agg_column` (any numeric type, as f64) over rows satisfying
    /// every conjunct; returns `(count, sum, metrics)`.
    pub fn sum_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
        agg_column: &str,
    ) -> Result<(u64, f64, QueryMetrics)> {
        let mut sum = 0.0;
        let (count, metrics) =
            self.run_conjunction(conjuncts, AggKind::Sum, Some((agg_column, &mut sum)))?;
        Ok((count, sum, metrics))
    }

    fn run_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
        agg: AggKind,
        sum_out: Option<(&str, &mut f64)>,
    ) -> Result<(u64, QueryMetrics)> {
        let t0 = Instant::now();
        let n = self.table.num_rows();
        let mut zones_probed = 0usize;
        let mut zones_skipped = 0usize;

        // Phase 1: prune every conjunct.
        let mut candidates: Option<RangeSet> = None;
        let mut all_full: Option<RangeSet> = None;
        let mut outcomes = Vec::with_capacity(conjuncts.len());
        for &(name, pred) in conjuncts {
            let idx = self
                .indexes
                .get_mut(name)
                .ok_or_else(|| TableSessionError::NoIndex(name.to_string()))?;
            let out = prune_any(idx, &pred, name)?;
            zones_probed += out.zones_probed;
            zones_skipped += out.zones_skipped;
            let mut cand = out.must_scan.clone();
            for r in out.full_match.ranges() {
                // Union by rebuilding: must_scan and full_match are
                // disjoint, so merging their sorted range lists suffices.
                cand = union_disjoint(&cand, *r);
            }
            candidates = Some(match candidates {
                None => cand.clone(),
                Some(prev) => prev.intersect(&cand),
            });
            all_full = Some(match all_full {
                None => out.full_match.clone(),
                Some(prev) => prev.intersect(&out.full_match),
            });
            outcomes.push((name, pred, out));
        }
        let candidates = candidates.unwrap_or_else(|| RangeSet::full(n));
        let all_full = all_full.unwrap_or_default();

        // Rows in every column's full-match ranges qualify outright.
        let mut count = all_full.covered_rows() as u64;
        let to_scan = candidates.intersect(&all_full.complement(n));

        // Phase 2: scan the remaining candidate ranges, AND-ing per-column
        // qualification bitmaps. Ranges are cut at every column's scan-unit
        // boundaries so that the observations fed back in phase 4 align
        // with zone boundaries — without this, adaptive zonemaps could
        // never materialise metadata from multi-column scans.
        let mut cuts: Vec<usize> = Vec::new();
        for (_, _, out) in &outcomes {
            for u in out.units() {
                cuts.push(u.start);
                cuts.push(u.end);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut scan_pieces: Vec<ads_storage::RowRange> = Vec::new();
        for r in to_scan.ranges() {
            let mut start = r.start;
            let lo = cuts.partition_point(|&c| c <= r.start);
            let hi = cuts.partition_point(|&c| c < r.end);
            for &c in &cuts[lo..hi] {
                if c > start {
                    scan_pieces.push(ads_storage::RowRange::new(start, c));
                    start = c;
                }
            }
            if start < r.end {
                scan_pieces.push(ads_storage::RowRange::new(start, r.end));
            }
        }

        let mut rows_scanned = 0usize;
        let mut per_col_obs: BTreeMap<&str, Vec<RangeObservation64>> = BTreeMap::new();
        let mut survivors_per_range: Vec<(usize, Bitmap)> = Vec::new();
        for r in &scan_pieces {
            let mut combined: Option<Bitmap> = None;
            for &(name, pred, ref out) in &outcomes {
                // A column whose full-match covers this range entirely
                // does not constrain it further and needs no scan.
                if covers(&out.full_match, r.start, r.end) {
                    continue;
                }
                let mut bm = Bitmap::new(r.len());
                let (q, lo_f, hi_f) = fill_any(&self.table, name, &pred, r.start, r.end, &mut bm)?;
                rows_scanned += r.len();
                per_col_obs
                    .entry(name)
                    .or_default()
                    .push(RangeObservation64 {
                        start: r.start,
                        end: r.end,
                        qualifying: q,
                        min: lo_f,
                        max: hi_f,
                    });
                combined = Some(match combined {
                    None => bm,
                    Some(mut prev) => {
                        prev.intersect_with(&bm);
                        prev
                    }
                });
            }
            let survivors = combined.unwrap_or_else(|| Bitmap::ones(r.len()));
            count += survivors.count_ones() as u64;
            if agg == AggKind::Sum {
                survivors_per_range.push((r.start, survivors));
            }
        }

        // Phase 3: optional SUM over the aggregate column.
        if let Some((agg_col, sum)) = sum_out {
            let col = self.table.column(agg_col)?;
            let mut total = 0.0f64;
            // Full-match rows qualify entirely.
            for r in all_full.ranges() {
                total += sum_any_range(col, r.start, r.end);
            }
            for (start, bm) in &survivors_per_range {
                // Word-wise walk: skip empty words outright, iterate set
                // bits of the rest in ascending order (deterministic sum).
                for (w, word) in bm.iter_set_words() {
                    let word_base = start + w * 64;
                    let mut m = word;
                    while m != 0 {
                        // narrowing: trailing_zeros of a u64 is at most
                        // 64.
                        total += value_as_f64(col, word_base + m.trailing_zeros() as usize);
                        m &= m - 1;
                    }
                }
            }
            *sum = total;
        }

        // Phase 4: feed observations back per column (min/max here are of
        // the scanned range, computed as scan by-products).
        for (name, pred, _) in outcomes {
            if let Some(obs) = per_col_obs.remove(name) {
                let idx = self
                    .indexes
                    .get_mut(name)
                    // invariant: phase 1 iterated the same map without
                    // removing entries.
                    .expect("index existed in phase 1");
                observe_any(idx, &pred, obs);
            }
        }

        let metrics = QueryMetrics {
            wall_ns: t0.elapsed().as_nanos() as u64,
            zones_probed,
            zones_skipped,
            rows_scanned,
            rows_full_match: all_full.covered_rows(),
            rows_matched: count,
            adapt_events: 0,
            ..Default::default()
        };
        self.totals.absorb(&metrics);
        Ok((count, metrics))
    }
}

/// Type-erased observation carrying `f64` bounds; converted to the typed
/// observation at the observe step.
struct RangeObservation64 {
    start: usize,
    end: usize,
    qualifying: usize,
    min: f64,
    max: f64,
}

fn covers(set: &RangeSet, start: usize, end: usize) -> bool {
    set.ranges()
        .iter()
        .any(|r| r.start <= start && end <= r.end)
}

/// Union of a canonical range set with one extra disjoint range.
fn union_disjoint(set: &RangeSet, extra: ads_storage::RowRange) -> RangeSet {
    let mut out = RangeSet::with_capacity(set.num_ranges() + 1);
    let mut placed = false;
    for r in set.ranges() {
        if !placed && extra.start <= r.start {
            out.push(extra);
            placed = true;
        }
        out.push(*r);
    }
    if !placed {
        out.push(extra);
    }
    out
}

fn prune_any(
    idx: &mut AnyIndex,
    pred: &AnyPredicate,
    column: &str,
) -> Result<ads_core::PruneOutcome> {
    match (idx, pred) {
        (AnyIndex::I32(i), AnyPredicate::I32(p)) => Ok(i.prune(p)),
        (AnyIndex::I64(i), AnyPredicate::I64(p)) => Ok(i.prune(p)),
        (AnyIndex::U64(i), AnyPredicate::U64(p)) => Ok(i.prune(p)),
        (AnyIndex::F64(i), AnyPredicate::F64(p)) => Ok(i.prune(p)),
        (idx, _) => Err(TableSessionError::PredicateType {
            column: column.to_string(),
            expected: match idx {
                AnyIndex::I32(_) => "i32",
                AnyIndex::I64(_) => "i64",
                AnyIndex::U64(_) => "u64",
                AnyIndex::F64(_) => "f64",
            },
        }),
    }
}

fn fill_any(
    table: &Table,
    name: &str,
    pred: &AnyPredicate,
    start: usize,
    end: usize,
    bm: &mut Bitmap,
) -> Result<(usize, f64, f64)> {
    fn go<T: DataValue>(
        col: &Column<T>,
        p: &RangePredicate<T>,
        start: usize,
        end: usize,
        bm: &mut Bitmap,
    ) -> (usize, f64, f64) {
        let (q, min, max) =
            scan::fill_bitmap_in_range_with_minmax(col.slice(start, end), 0, p.lo, p.hi, bm);
        (q, min.to_f64(), max.to_f64())
    }
    match pred {
        AnyPredicate::I32(p) => Ok(go(table.typed_column::<i32>(name)?, p, start, end, bm)),
        AnyPredicate::I64(p) => Ok(go(table.typed_column::<i64>(name)?, p, start, end, bm)),
        AnyPredicate::U64(p) => Ok(go(table.typed_column::<u64>(name)?, p, start, end, bm)),
        AnyPredicate::F64(p) => Ok(go(table.typed_column::<f64>(name)?, p, start, end, bm)),
    }
}

fn observe_any(idx: &mut AnyIndex, pred: &AnyPredicate, obs: Vec<RangeObservation64>) {
    fn go<T: DataValue + FromF64>(
        idx: &mut Box<dyn SkippingIndex<T>>,
        pred: &RangePredicate<T>,
        obs: Vec<RangeObservation64>,
    ) {
        let ranges = obs
            .into_iter()
            .map(|o| {
                RangeObservation::new(
                    ads_storage::RowRange::new(o.start, o.end),
                    o.qualifying,
                    T::from_f64(o.min),
                    T::from_f64(o.max),
                )
            })
            .collect();
        idx.observe(&ScanObservation {
            predicate: *pred,
            ranges,
        });
    }
    match (idx, pred) {
        (AnyIndex::I32(i), AnyPredicate::I32(p)) => go(i, p, obs),
        (AnyIndex::I64(i), AnyPredicate::I64(p)) => go(i, p, obs),
        (AnyIndex::U64(i), AnyPredicate::U64(p)) => go(i, p, obs),
        (AnyIndex::F64(i), AnyPredicate::F64(p)) => go(i, p, obs),
        _ => {}
    }
}

fn sum_any_range(col: &ads_storage::AnyColumn, start: usize, end: usize) -> f64 {
    fn go<T: DataValue>(c: &Column<T>, start: usize, end: usize) -> f64 {
        let (_, s) = scan::sum_in_range(c.slice(start, end), T::MIN_VALUE, T::MAX_VALUE);
        s
    }
    match col {
        ads_storage::AnyColumn::I32(c) => go(c, start, end),
        ads_storage::AnyColumn::I64(c) => go(c, start, end),
        ads_storage::AnyColumn::U64(c) => go(c, start, end),
        ads_storage::AnyColumn::F64(c) => go(c, start, end),
    }
}

fn value_as_f64(col: &ads_storage::AnyColumn, row: usize) -> f64 {
    match col {
        ads_storage::AnyColumn::I32(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::I64(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::U64(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::F64(c) => c.value(row),
    }
}

/// Inverse of [`DataValue::to_f64`] for observation round-tripping. Lossy
/// in the same places `to_f64` is; zone bounds derived this way remain
/// sound for the workloads here (integers < 2^53).
trait FromF64 {
    /// Converts back from the f64 transport representation.
    fn from_f64(v: f64) -> Self;
}

impl FromF64 for i32 {
    fn from_f64(v: f64) -> Self {
        v as i32
    }
}
impl FromF64 for i64 {
    fn from_f64(v: f64) -> Self {
        v as i64
    }
}
impl FromF64 for u64 {
    fn from_f64(v: f64) -> Self {
        v as u64
    }
}
impl FromF64 for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;
    use ads_storage::Column;

    fn make_table(n: usize) -> Table {
        let mut t = Table::new("events");
        let time: Vec<i64> = (0..n as i64).collect();
        let value: Vec<i64> = (0..n).map(|i| ((i as i64) * 2654435761) % 1000).collect();
        let score: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 10.0).collect();
        t.add_column("time", Column::from_values(time)).unwrap();
        t.add_column("value", Column::from_values(value)).unwrap();
        t.add_column("score", Column::from_values(score)).unwrap();
        t
    }

    fn reference_count(t: &Table, conjuncts: &[(&str, AnyPredicate)]) -> u64 {
        let n = t.num_rows();
        (0..n)
            .filter(|&i| {
                conjuncts.iter().all(|(name, p)| match p {
                    AnyPredicate::I64(p) => {
                        p.matches(t.typed_column::<i64>(name).unwrap().value(i))
                    }
                    AnyPredicate::F64(p) => {
                        p.matches(t.typed_column::<f64>(name).unwrap().value(i))
                    }
                    AnyPredicate::I32(p) => {
                        p.matches(t.typed_column::<i32>(name).unwrap().value(i))
                    }
                    AnyPredicate::U64(p) => {
                        p.matches(t.typed_column::<u64>(name).unwrap().value(i))
                    }
                })
            })
            .count() as u64
    }

    #[test]
    fn conjunction_matches_reference_for_base_strategies() {
        let t = make_table(8000);
        let strategies = [
            Strategy::FullScan,
            Strategy::StaticZonemap { zone_rows: 512 },
            Strategy::Adaptive(AdaptiveConfig::default()),
            Strategy::Imprints {
                values_per_line: 8,
                bins: 32,
            },
        ];
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            (
                "time",
                AnyPredicate::I64(RangePredicate::between(1000, 3000)),
            ),
            (
                "value",
                AnyPredicate::I64(RangePredicate::between(100, 500)),
            ),
        ];
        let expected = reference_count(&t, &conjuncts);
        assert!(expected > 0);
        for strat in strategies {
            let mut ts = TableSession::new(t.clone(), &strat, &["time", "value"]).unwrap();
            // Repeat so adaptive structures reorganise between queries.
            for _ in 0..4 {
                let (count, _) = ts.count_conjunction(&conjuncts).unwrap();
                assert_eq!(count, expected, "{}", strat.label());
            }
        }
    }

    #[test]
    fn three_way_conjunction_with_floats() {
        let t = make_table(5000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            ("time", AnyPredicate::I64(RangePredicate::between(0, 4000))),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 800))),
            (
                "score",
                AnyPredicate::F64(RangePredicate::between(2.0, 7.5)),
            ),
        ];
        let expected = reference_count(&t, &conjuncts);
        let mut ts = TableSession::new(
            t.clone(),
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value", "score"],
        )
        .unwrap();
        let (count, m) = ts.count_conjunction(&conjuncts).unwrap();
        assert_eq!(count, expected);
        assert!(m.zones_probed > 0);
    }

    #[test]
    fn sum_conjunction_matches_reference() {
        let t = make_table(4000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![(
            "time",
            AnyPredicate::I64(RangePredicate::between(100, 1999)),
        )];
        let expected_sum: f64 = (0..4000usize)
            .filter(|&i| (100..=1999).contains(&(i as i64)))
            .map(|i| (((i as i64) * 2654435761) % 1000) as f64)
            .sum();
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value"],
        )
        .unwrap();
        let (count, sum, _) = ts.sum_conjunction(&conjuncts, "value").unwrap();
        assert_eq!(count, 1900);
        assert!((sum - expected_sum).abs() < 1e-6, "{sum} vs {expected_sum}");
    }

    #[test]
    fn view_strategies_rejected() {
        let t = make_table(100);
        assert!(matches!(
            TableSession::new(t, &Strategy::Cracking, &["time"]),
            Err(TableSessionError::ViewStrategy(_))
        ));
    }

    #[test]
    fn missing_index_and_type_mismatch_errors() {
        let t = make_table(100);
        let mut ts = TableSession::new(t, &Strategy::FullScan, &["time"]).unwrap();
        let err = ts
            .count_conjunction(&[("value", AnyPredicate::I64(RangePredicate::all()))])
            .unwrap_err();
        assert!(matches!(err, TableSessionError::NoIndex(_)));
        let err2 = ts
            .count_conjunction(&[("time", AnyPredicate::F64(RangePredicate::all()))])
            .unwrap_err();
        assert!(matches!(err2, TableSessionError::PredicateType { .. }));
    }

    #[test]
    fn skipping_reduces_scanned_rows_on_selective_conjunctions() {
        let t = make_table(64_000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            (
                "time",
                AnyPredicate::I64(RangePredicate::between(1000, 1999)),
            ),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 999))),
        ];
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 1024 },
            &["time", "value"],
        )
        .unwrap();
        let (_, m) = ts.count_conjunction(&conjuncts).unwrap();
        // time is sorted, so intersection confines scans to ~1 zone per column.
        assert!(m.rows_scanned <= 4 * 1024, "scanned {}", m.rows_scanned);
    }
}

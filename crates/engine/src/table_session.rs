//! Multi-column sessions: conjunctive predicates over a table, one
//! skipping index per filtered column.
//!
//! Pruning composes by intersection: each column's index nominates its
//! candidate ranges, the executor scans only the intersection, and rows in
//! the intersection of every column's *full-match* ranges are answered
//! without any scan. View-coordinate strategies (cracking, sorted oracle)
//! emit positions in their own copy's order and therefore cannot join this
//! intersection; constructing a table session with one is an error —
//! matching the literature, where cracking is a single-column technique.

use crate::executor::AggKind;
use crate::metrics::{CumulativeMetrics, QueryMetrics};
use crate::planner::{self, FallbackReason, PlanMode, PlanStep, PlanTrace};
use crate::strategy::Strategy;
use ads_core::{
    CostModel, PruneOutcome, PruneStats, RangeObservation, RangePredicate, ScanObservation,
    SkippingIndex,
};
use ads_storage::{scan, Bitmap, Column, DataValue, RangeSet, StorageError, Table};
use std::collections::BTreeMap;
use std::time::Instant;

/// A range predicate over a column of any supported type.
#[derive(Debug, Clone, Copy)]
pub enum AnyPredicate {
    /// Predicate on an `i32` column.
    I32(RangePredicate<i32>),
    /// Predicate on an `i64` column.
    I64(RangePredicate<i64>),
    /// Predicate on a `u64` column.
    U64(RangePredicate<u64>),
    /// Predicate on an `f64` column.
    F64(RangePredicate<f64>),
}

/// A skipping index over a column of any supported type.
enum AnyIndex {
    I32(Box<dyn SkippingIndex<i32>>),
    I64(Box<dyn SkippingIndex<i64>>),
    U64(Box<dyn SkippingIndex<u64>>),
    F64(Box<dyn SkippingIndex<f64>>),
}

/// Errors from table-session operations.
#[derive(Debug)]
pub enum TableSessionError {
    /// Underlying storage error (missing column, type mismatch, ...).
    Storage(StorageError),
    /// The strategy answers in view coordinates and cannot be intersected.
    ViewStrategy(String),
    /// A conjunct referenced a column with no index.
    NoIndex(String),
    /// Predicate type does not match the column type.
    PredicateType {
        /// Column name.
        column: String,
        /// Stored type.
        expected: &'static str,
    },
    /// A forced probe order was not a permutation of the conjuncts.
    InvalidPlan(String),
}

impl std::fmt::Display for TableSessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableSessionError::Storage(e) => write!(f, "storage error: {e}"),
            TableSessionError::ViewStrategy(s) => {
                write!(f, "strategy {s} answers in view coordinates; multi-column sessions need base coordinates")
            }
            TableSessionError::NoIndex(c) => write!(f, "no index on column {c}"),
            TableSessionError::PredicateType { column, expected } => {
                write!(
                    f,
                    "predicate type mismatch on {column}: column is {expected}"
                )
            }
            TableSessionError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
        }
    }
}

impl std::error::Error for TableSessionError {}

impl From<StorageError> for TableSessionError {
    fn from(e: StorageError) -> Self {
        TableSessionError::Storage(e)
    }
}

/// Result alias for table-session operations.
pub type Result<T> = std::result::Result<T, TableSessionError>;

/// A table plus one skipping index per filtered column.
pub struct TableSession {
    table: Table,
    indexes: BTreeMap<String, AnyIndex>,
    totals: CumulativeMetrics,
    cost: CostModel,
    plan_mode: PlanMode,
    last_plan: Option<PlanTrace>,
    /// Every this-many queries, a gated plan probes every conjunct anyway
    /// so estimates track a shifting workload; 0 disables exploration.
    explore_every: u64,
}

impl TableSession {
    /// Builds `strategy` indexes over the named columns of `table`.
    pub fn new(table: Table, strategy: &Strategy, columns: &[&str]) -> Result<Self> {
        if !strategy.base_coords() {
            return Err(TableSessionError::ViewStrategy(strategy.label()));
        }
        let t0 = Instant::now();
        let mut indexes = BTreeMap::new();
        for &name in columns {
            let col = table.column(name)?;
            let idx = match col {
                ads_storage::AnyColumn::I32(c) => AnyIndex::I32(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::I64(c) => AnyIndex::I64(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::U64(c) => AnyIndex::U64(strategy.build_index(c.as_slice())),
                ads_storage::AnyColumn::F64(c) => AnyIndex::F64(strategy.build_index(c.as_slice())),
            };
            indexes.insert(name.to_string(), idx);
        }
        Ok(TableSession {
            table,
            indexes,
            totals: CumulativeMetrics {
                build_ns: t0.elapsed().as_nanos() as u64,
                ..Default::default()
            },
            cost: CostModel::default(),
            plan_mode: PlanMode::default(),
            last_plan: None,
            explore_every: 64,
        })
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Running totals.
    pub fn totals(&self) -> &CumulativeMetrics {
        &self.totals
    }

    /// Sets how conjunction queries choose their probe order.
    pub fn set_plan_mode(&mut self, mode: PlanMode) {
        self.plan_mode = mode;
    }

    /// The active plan mode.
    pub fn plan_mode(&self) -> &PlanMode {
        &self.plan_mode
    }

    /// The decision record of the most recent conjunction query.
    pub fn last_plan(&self) -> Option<&PlanTrace> {
        self.last_plan.as_ref()
    }

    /// Sets the exploration period of gated plans (0 = never explore).
    pub fn set_explore_every(&mut self, every: u64) {
        self.explore_every = every;
    }

    /// Replaces the cost model the planner prices probes with.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Metadata footprint of the named column's index, in bytes.
    pub fn index_metadata_bytes(&self, column: &str) -> Option<usize> {
        self.indexes.get(column).map(|idx| match idx {
            AnyIndex::I32(i) => i.metadata_bytes(),
            AnyIndex::I64(i) => i.metadata_bytes(),
            AnyIndex::U64(i) => i.metadata_bytes(),
            AnyIndex::F64(i) => i.metadata_bytes(),
        })
    }

    /// Counts rows satisfying every conjunct.
    pub fn count_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
    ) -> Result<(u64, QueryMetrics)> {
        let (answer, metrics) = self.run_conjunction(conjuncts, AggKind::Count, None)?;
        Ok((answer, metrics))
    }

    /// Sums `agg_column` (any numeric type, as f64) over rows satisfying
    /// every conjunct; returns `(count, sum, metrics)`.
    pub fn sum_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
        agg_column: &str,
    ) -> Result<(u64, f64, QueryMetrics)> {
        let mut sum = 0.0;
        let (count, metrics) =
            self.run_conjunction(conjuncts, AggKind::Sum, Some((agg_column, &mut sum)))?;
        Ok((count, sum, metrics))
    }

    fn run_conjunction(
        &mut self,
        conjuncts: &[(&str, AnyPredicate)],
        agg: AggKind,
        sum_out: Option<(&str, &mut f64)>,
    ) -> Result<(u64, QueryMetrics)> {
        let t0 = Instant::now();
        let n = self.table.num_rows();
        let mut zones_probed = 0usize;
        let mut zones_skipped = 0usize;

        // Phase 0: validate every conjunct up front — missing-index and
        // type-mismatch errors must fire even for conjuncts the plan would
        // not probe — and collect pre-probe stats for the planner.
        let mut stats: Vec<Option<PruneStats>> = Vec::with_capacity(conjuncts.len());
        for &(name, pred) in conjuncts {
            let idx = self
                .indexes
                .get(name)
                .ok_or_else(|| TableSessionError::NoIndex(name.to_string()))?;
            check_predicate_type(idx, &pred, name)?;
            stats.push(stats_any(idx));
        }
        let plan = planner::build_probe_plan(&self.plan_mode, &stats)
            .map_err(TableSessionError::InvalidPlan)?;
        let explore = plan.gated
            && self.explore_every > 0
            && self.totals.queries.is_multiple_of(self.explore_every);

        // Phase 1: probe in plan order, intersecting each probed column's
        // surviving candidates into `alive` before the next probe runs —
        // restricted probes then only examine metadata still in play.
        let mut alive = RangeSet::full(n);
        let mut outcomes: Vec<Option<PruneOutcome>> = conjuncts.iter().map(|_| None).collect();
        let mut steps: Vec<PlanStep> = Vec::with_capacity(conjuncts.len());
        for &ci in &plan.order {
            let (name, pred) = conjuncts[ci];
            let alive_before = alive.covered_rows();
            let est = stats[ci].map(|s| s.est_skip_fraction);
            let (probe, benefit) = if plan.forced_fallback {
                (false, 0.0)
            } else if plan.gated && !explore {
                match &stats[ci] {
                    // Gating applies only to estimates backed by history;
                    // cold indexes are always probed so they can learn.
                    Some(s) if s.queries_observed > 0 => {
                        let b = planner::probe_benefit(s, alive_before, n, &self.cost);
                        (b > 0.0, b)
                    }
                    _ => (true, 0.0),
                }
            } else {
                (true, 0.0)
            };
            if probe {
                let idx = self
                    .indexes
                    .get_mut(name)
                    // invariant: phase 0 verified the entry exists.
                    .expect("index validated in phase 0");
                let out = if plan.restricted && alive_before < n {
                    prune_any_within(idx, &pred, &alive, name)?
                } else {
                    prune_any(idx, &pred, name)?
                };
                // Shadow oracle: rows outside `alive` were excluded by
                // earlier conjuncts, so this outcome is only accountable
                // for the candidates still in play.
                #[cfg(feature = "audit")]
                audit_verify_any(&self.table, name, &pred, &out, &alive)?;
                zones_probed += out.zones_probed;
                zones_skipped += out.zones_skipped;
                alive = alive.intersect(&out.must_scan.union(&out.full_match));
                steps.push(PlanStep {
                    column: name.to_string(),
                    probed: true,
                    est_skip_fraction: est,
                    est_benefit: benefit,
                    zones_probed: out.zones_probed,
                    zones_skipped: out.zones_skipped,
                    alive_before,
                    alive_after: alive.covered_rows(),
                });
                outcomes[ci] = Some(out);
            } else {
                steps.push(PlanStep {
                    column: name.to_string(),
                    probed: false,
                    est_skip_fraction: est,
                    est_benefit: benefit,
                    zones_probed: 0,
                    zones_skipped: 0,
                    alive_before,
                    alive_after: alive_before,
                });
            }
        }
        let conjuncts_probed = outcomes.iter().filter(|o| o.is_some()).count();
        let fallback = if conjuncts_probed == 0 && !conjuncts.is_empty() {
            Some(if plan.forced_fallback {
                FallbackReason::Forced
            } else {
                FallbackReason::NoProfitableProbe
            })
        } else {
            None
        };

        // Rows in every column's full-match ranges qualify outright — but
        // only when every conjunct was probed: an unprobed conjunct has
        // certified nothing, so its rows must go through the filter.
        let all_full = if conjuncts_probed == conjuncts.len() && !conjuncts.is_empty() {
            let mut af: Option<RangeSet> = None;
            for out in outcomes.iter().flatten() {
                af = Some(match af {
                    None => out.full_match.clone(),
                    Some(prev) => prev.intersect(&out.full_match),
                });
            }
            af.unwrap_or_default()
        } else {
            RangeSet::new()
        };
        let prune_ns = t0.elapsed().as_nanos() as u64;
        let t_scan = Instant::now();

        let mut count = all_full.covered_rows() as u64;
        let to_scan = alive.intersect(&all_full.complement(n));

        // Phase 2: scan the remaining candidate ranges, AND-ing per-column
        // qualification bitmaps. Ranges are cut at every column's scan-unit
        // boundaries so that the observations fed back in phase 4 align
        // with zone boundaries — without this, adaptive zonemaps could
        // never materialise metadata from multi-column scans.
        let mut cuts: Vec<usize> = Vec::new();
        for out in outcomes.iter().flatten() {
            for u in out.units() {
                cuts.push(u.start);
                cuts.push(u.end);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut scan_pieces: Vec<ads_storage::RowRange> = Vec::new();
        for r in to_scan.ranges() {
            let mut start = r.start;
            let lo = cuts.partition_point(|&c| c <= r.start);
            let hi = cuts.partition_point(|&c| c < r.end);
            for &c in &cuts[lo..hi] {
                if c > start {
                    scan_pieces.push(ads_storage::RowRange::new(start, c));
                    start = c;
                }
            }
            if start < r.end {
                scan_pieces.push(ads_storage::RowRange::new(start, r.end));
            }
        }

        let mut rows_scanned = 0usize;
        let mut per_col_obs: BTreeMap<&str, Vec<ObservationRec>> = BTreeMap::new();
        let mut survivors_per_range: Vec<(usize, Bitmap)> = Vec::new();
        for r in &scan_pieces {
            let mut combined: Option<Bitmap> = None;
            for (ci, &(name, pred)) in conjuncts.iter().enumerate() {
                let probed = outcomes[ci].as_ref();
                // A probed column whose full-match covers this range
                // entirely does not constrain it further and needs no
                // scan; an unprobed column always filters.
                if let Some(out) = probed {
                    if out.full_match.covers_span(r.start, r.end) {
                        continue;
                    }
                }
                let mut bm = Bitmap::new(r.len());
                let (q, bounds) = fill_any(&self.table, name, &pred, r.start, r.end, &mut bm)?;
                rows_scanned += r.len();
                // Observations feed back only to probed indexes — observe
                // without the matching prune would desynchronise an
                // adaptive structure's query clock.
                if probed.is_some() {
                    per_col_obs.entry(name).or_default().push(ObservationRec {
                        start: r.start,
                        end: r.end,
                        qualifying: q,
                        bounds,
                    });
                }
                combined = Some(match combined {
                    None => bm,
                    Some(mut prev) => {
                        prev.intersect_with(&bm);
                        prev
                    }
                });
            }
            let survivors = combined.unwrap_or_else(|| Bitmap::ones(r.len()));
            count += survivors.count_ones() as u64;
            if agg == AggKind::Sum {
                survivors_per_range.push((r.start, survivors));
            }
        }

        // Phase 3: optional SUM over the aggregate column.
        if let Some((agg_col, sum)) = sum_out {
            let col = self.table.column(agg_col)?;
            let mut total = 0.0f64;
            // Full-match rows qualify entirely.
            for r in all_full.ranges() {
                total += sum_any_range(col, r.start, r.end);
            }
            for (start, bm) in &survivors_per_range {
                // Word-wise walk: skip empty words outright, iterate set
                // bits of the rest in ascending order (deterministic sum).
                for (w, word) in bm.iter_set_words() {
                    let word_base = start + w * 64;
                    let mut m = word;
                    while m != 0 {
                        // narrowing: trailing_zeros of a u64 is at most
                        // 64.
                        total += value_as_f64(col, word_base + m.trailing_zeros() as usize);
                        m &= m - 1;
                    }
                }
            }
            *sum = total;
        }

        let scan_ns = t_scan.elapsed().as_nanos() as u64;
        let t_observe = Instant::now();

        // Phase 4: feed observations back per probed column (min/max here
        // are of the scanned range, computed as typed scan by-products).
        for (ci, &(name, pred)) in conjuncts.iter().enumerate() {
            if outcomes[ci].is_none() {
                continue;
            }
            if let Some(obs) = per_col_obs.remove(name) {
                let idx = self
                    .indexes
                    .get_mut(name)
                    // invariant: phase 0 verified the entry exists.
                    .expect("index validated in phase 0");
                observe_any(idx, &pred, obs);
            }
        }
        let observe_ns = t_observe.elapsed().as_nanos() as u64;

        self.last_plan = Some(PlanTrace { steps, fallback });
        let metrics = QueryMetrics {
            wall_ns: t0.elapsed().as_nanos() as u64,
            zones_probed,
            zones_skipped,
            rows_scanned,
            rows_full_match: all_full.covered_rows(),
            rows_matched: count,
            adapt_events: 0,
            prune_ns,
            scan_ns,
            observe_ns,
            threads_used: 1,
            conjuncts_probed,
            plan_fallback: fallback.is_some(),
        };
        self.totals.absorb(&metrics);
        Ok((count, metrics))
    }
}

/// Typed `(min, max)` scan by-products, preserved exactly through the
/// type-erased observation path. These used to travel through `f64`; for
/// `i64`/`u64` magnitudes at or above 2^53 the nearest-rounding round-trip
/// could move a recorded zone max *below* the true max (or a min above the
/// true min), making a later predicate falsely skip qualifying rows. Keeping
/// the native type end-to-end removes that failure mode outright.
enum AnyBounds {
    I32(i32, i32),
    I64(i64, i64),
    U64(u64, u64),
    F64(f64, f64),
}

/// Type-erased observation carrying exact typed bounds; converted to the
/// typed observation at the observe step.
struct ObservationRec {
    start: usize,
    end: usize,
    qualifying: usize,
    bounds: AnyBounds,
}

/// The error for a predicate whose type does not match the index's column.
fn type_mismatch(idx: &AnyIndex, _pred: &AnyPredicate, column: &str) -> TableSessionError {
    TableSessionError::PredicateType {
        column: column.to_string(),
        expected: match idx {
            AnyIndex::I32(_) => "i32",
            AnyIndex::I64(_) => "i64",
            AnyIndex::U64(_) => "u64",
            AnyIndex::F64(_) => "f64",
        },
    }
}

/// Validates that `pred`'s type matches the index's column type.
fn check_predicate_type(idx: &AnyIndex, pred: &AnyPredicate, column: &str) -> Result<()> {
    match (idx, pred) {
        (AnyIndex::I32(_), AnyPredicate::I32(_))
        | (AnyIndex::I64(_), AnyPredicate::I64(_))
        | (AnyIndex::U64(_), AnyPredicate::U64(_))
        | (AnyIndex::F64(_), AnyPredicate::F64(_)) => Ok(()),
        (idx, pred) => Err(type_mismatch(idx, pred, column)),
    }
}

/// The index's pre-probe planner summary.
fn stats_any(idx: &AnyIndex) -> Option<PruneStats> {
    match idx {
        AnyIndex::I32(i) => i.prune_stats(),
        AnyIndex::I64(i) => i.prune_stats(),
        AnyIndex::U64(i) => i.prune_stats(),
        AnyIndex::F64(i) => i.prune_stats(),
    }
}

/// The table path derives its alive set from `must_scan ∪ full_match`
/// and re-tests predicates row by row, so positional reorg units must be
/// folded back into plain scan units before the outcome is consumed.
fn demote_if_reorg(out: PruneOutcome) -> PruneOutcome {
    if out.reorg_units.is_empty() {
        out
    } else {
        out.demote_reorg_units()
    }
}

fn prune_any(idx: &mut AnyIndex, pred: &AnyPredicate, column: &str) -> Result<PruneOutcome> {
    match (idx, pred) {
        (AnyIndex::I32(i), AnyPredicate::I32(p)) => Ok(demote_if_reorg(i.prune(p))),
        (AnyIndex::I64(i), AnyPredicate::I64(p)) => Ok(demote_if_reorg(i.prune(p))),
        (AnyIndex::U64(i), AnyPredicate::U64(p)) => Ok(demote_if_reorg(i.prune(p))),
        (AnyIndex::F64(i), AnyPredicate::F64(p)) => Ok(demote_if_reorg(i.prune(p))),
        (idx, pred) => Err(type_mismatch(idx, pred, column)),
    }
}

fn prune_any_within(
    idx: &mut AnyIndex,
    pred: &AnyPredicate,
    alive: &RangeSet,
    column: &str,
) -> Result<PruneOutcome> {
    match (idx, pred) {
        (AnyIndex::I32(i), AnyPredicate::I32(p)) => Ok(demote_if_reorg(i.prune_within(p, alive))),
        (AnyIndex::I64(i), AnyPredicate::I64(p)) => Ok(demote_if_reorg(i.prune_within(p, alive))),
        (AnyIndex::U64(i), AnyPredicate::U64(p)) => Ok(demote_if_reorg(i.prune_within(p, alive))),
        (AnyIndex::F64(i), AnyPredicate::F64(p)) => Ok(demote_if_reorg(i.prune_within(p, alive))),
        (idx, pred) => Err(type_mismatch(idx, pred, column)),
    }
}

/// Cross-checks one conjunct's prune outcome against the base column
/// (see [`ads_core::audit`]). The table path is append-only, so there is
/// no delete vector to thread through; `within` carries the candidate
/// set surviving earlier conjuncts.
#[cfg(feature = "audit")]
fn audit_verify_any(
    table: &Table,
    name: &str,
    pred: &AnyPredicate,
    out: &PruneOutcome,
    within: &RangeSet,
) -> Result<()> {
    fn go<T: DataValue>(
        col: &Column<T>,
        p: &RangePredicate<T>,
        out: &PruneOutcome,
        within: &RangeSet,
    ) {
        ads_core::audit::verify_outcome(
            col.as_slice(),
            None,
            p,
            out,
            Some(within),
            "run_conjunction",
        );
    }
    match pred {
        AnyPredicate::I32(p) => go(table.typed_column::<i32>(name)?, p, out, within),
        AnyPredicate::I64(p) => go(table.typed_column::<i64>(name)?, p, out, within),
        AnyPredicate::U64(p) => go(table.typed_column::<u64>(name)?, p, out, within),
        AnyPredicate::F64(p) => go(table.typed_column::<f64>(name)?, p, out, within),
    }
    Ok(())
}

fn fill_any(
    table: &Table,
    name: &str,
    pred: &AnyPredicate,
    start: usize,
    end: usize,
    bm: &mut Bitmap,
) -> Result<(usize, AnyBounds)> {
    fn go<T: DataValue>(
        col: &Column<T>,
        p: &RangePredicate<T>,
        start: usize,
        end: usize,
        bm: &mut Bitmap,
    ) -> (usize, T, T) {
        // live: the table path is append-only — `TableSession` carries
        // no delete vector, so every row is live.
        scan::fill_bitmap_in_range_with_minmax(col.slice(start, end), 0, p.lo, p.hi, bm)
    }
    match pred {
        AnyPredicate::I32(p) => {
            let (q, lo, hi) = go(table.typed_column::<i32>(name)?, p, start, end, bm);
            Ok((q, AnyBounds::I32(lo, hi)))
        }
        AnyPredicate::I64(p) => {
            let (q, lo, hi) = go(table.typed_column::<i64>(name)?, p, start, end, bm);
            Ok((q, AnyBounds::I64(lo, hi)))
        }
        AnyPredicate::U64(p) => {
            let (q, lo, hi) = go(table.typed_column::<u64>(name)?, p, start, end, bm);
            Ok((q, AnyBounds::U64(lo, hi)))
        }
        AnyPredicate::F64(p) => {
            let (q, lo, hi) = go(table.typed_column::<f64>(name)?, p, start, end, bm);
            Ok((q, AnyBounds::F64(lo, hi)))
        }
    }
}

fn observe_any(idx: &mut AnyIndex, pred: &AnyPredicate, obs: Vec<ObservationRec>) {
    fn go<T: DataValue>(
        idx: &mut Box<dyn SkippingIndex<T>>,
        pred: &RangePredicate<T>,
        obs: Vec<ObservationRec>,
        extract: impl Fn(&AnyBounds) -> Option<(T, T)>,
    ) {
        // Observations whose bounds are not of the column's type cannot
        // occur (fill_any produced them from the same predicate), but the
        // feedback channel is advisory, so dropping beats panicking.
        let ranges = obs
            .into_iter()
            .filter_map(|o| {
                let (min, max) = extract(&o.bounds)?;
                Some(RangeObservation::new(
                    ads_storage::RowRange::new(o.start, o.end),
                    o.qualifying,
                    min,
                    max,
                ))
            })
            .collect();
        idx.observe(&ScanObservation {
            predicate: *pred,
            ranges,
        });
    }
    match (idx, pred) {
        (AnyIndex::I32(i), AnyPredicate::I32(p)) => go(i, p, obs, |b| match b {
            AnyBounds::I32(lo, hi) => Some((*lo, *hi)),
            _ => None,
        }),
        (AnyIndex::I64(i), AnyPredicate::I64(p)) => go(i, p, obs, |b| match b {
            AnyBounds::I64(lo, hi) => Some((*lo, *hi)),
            _ => None,
        }),
        (AnyIndex::U64(i), AnyPredicate::U64(p)) => go(i, p, obs, |b| match b {
            AnyBounds::U64(lo, hi) => Some((*lo, *hi)),
            _ => None,
        }),
        (AnyIndex::F64(i), AnyPredicate::F64(p)) => go(i, p, obs, |b| match b {
            AnyBounds::F64(lo, hi) => Some((*lo, *hi)),
            _ => None,
        }),
        _ => {}
    }
}

fn sum_any_range(col: &ads_storage::AnyColumn, start: usize, end: usize) -> f64 {
    fn go<T: DataValue>(c: &Column<T>, start: usize, end: usize) -> f64 {
        // live: append-only table path — no delete vector exists.
        let (_, s) = scan::sum_in_range(c.slice(start, end), T::MIN_VALUE, T::MAX_VALUE);
        s
    }
    match col {
        ads_storage::AnyColumn::I32(c) => go(c, start, end),
        ads_storage::AnyColumn::I64(c) => go(c, start, end),
        ads_storage::AnyColumn::U64(c) => go(c, start, end),
        ads_storage::AnyColumn::F64(c) => go(c, start, end),
    }
}

fn value_as_f64(col: &ads_storage::AnyColumn, row: usize) -> f64 {
    match col {
        ads_storage::AnyColumn::I32(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::I64(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::U64(c) => c.value(row).to_f64(),
        ads_storage::AnyColumn::F64(c) => c.value(row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;
    use ads_storage::Column;

    fn make_table(n: usize) -> Table {
        let mut t = Table::new("events");
        let time: Vec<i64> = (0..n as i64).collect();
        let value: Vec<i64> = (0..n).map(|i| ((i as i64) * 2654435761) % 1000).collect();
        let score: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 10.0).collect();
        t.add_column("time", Column::from_values(time)).unwrap();
        t.add_column("value", Column::from_values(value)).unwrap();
        t.add_column("score", Column::from_values(score)).unwrap();
        t
    }

    fn reference_count(t: &Table, conjuncts: &[(&str, AnyPredicate)]) -> u64 {
        let n = t.num_rows();
        (0..n)
            .filter(|&i| {
                conjuncts.iter().all(|(name, p)| match p {
                    AnyPredicate::I64(p) => {
                        p.matches(t.typed_column::<i64>(name).unwrap().value(i))
                    }
                    AnyPredicate::F64(p) => {
                        p.matches(t.typed_column::<f64>(name).unwrap().value(i))
                    }
                    AnyPredicate::I32(p) => {
                        p.matches(t.typed_column::<i32>(name).unwrap().value(i))
                    }
                    AnyPredicate::U64(p) => {
                        p.matches(t.typed_column::<u64>(name).unwrap().value(i))
                    }
                })
            })
            .count() as u64
    }

    #[test]
    fn conjunction_matches_reference_for_base_strategies() {
        let t = make_table(8000);
        let strategies = [
            Strategy::FullScan,
            Strategy::StaticZonemap { zone_rows: 512 },
            Strategy::Adaptive(AdaptiveConfig::default()),
            Strategy::Imprints {
                values_per_line: 8,
                bins: 32,
            },
        ];
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            (
                "time",
                AnyPredicate::I64(RangePredicate::between(1000, 3000)),
            ),
            (
                "value",
                AnyPredicate::I64(RangePredicate::between(100, 500)),
            ),
        ];
        let expected = reference_count(&t, &conjuncts);
        assert!(expected > 0);
        for strat in strategies {
            let mut ts = TableSession::new(t.clone(), &strat, &["time", "value"]).unwrap();
            // Repeat so adaptive structures reorganise between queries.
            for _ in 0..4 {
                let (count, _) = ts.count_conjunction(&conjuncts).unwrap();
                assert_eq!(count, expected, "{}", strat.label());
            }
        }
    }

    #[test]
    fn three_way_conjunction_with_floats() {
        let t = make_table(5000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            ("time", AnyPredicate::I64(RangePredicate::between(0, 4000))),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 800))),
            (
                "score",
                AnyPredicate::F64(RangePredicate::between(2.0, 7.5)),
            ),
        ];
        let expected = reference_count(&t, &conjuncts);
        let mut ts = TableSession::new(
            t.clone(),
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value", "score"],
        )
        .unwrap();
        let (count, m) = ts.count_conjunction(&conjuncts).unwrap();
        assert_eq!(count, expected);
        assert!(m.zones_probed > 0);
    }

    #[test]
    fn sum_conjunction_matches_reference() {
        let t = make_table(4000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![(
            "time",
            AnyPredicate::I64(RangePredicate::between(100, 1999)),
        )];
        let expected_sum: f64 = (0..4000usize)
            .filter(|&i| (100..=1999).contains(&(i as i64)))
            .map(|i| (((i as i64) * 2654435761) % 1000) as f64)
            .sum();
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value"],
        )
        .unwrap();
        let (count, sum, _) = ts.sum_conjunction(&conjuncts, "value").unwrap();
        assert_eq!(count, 1900);
        assert!((sum - expected_sum).abs() < 1e-6, "{sum} vs {expected_sum}");
    }

    #[test]
    fn view_strategies_rejected() {
        let t = make_table(100);
        assert!(matches!(
            TableSession::new(t, &Strategy::Cracking, &["time"]),
            Err(TableSessionError::ViewStrategy(_))
        ));
    }

    #[test]
    fn missing_index_and_type_mismatch_errors() {
        let t = make_table(100);
        let mut ts = TableSession::new(t, &Strategy::FullScan, &["time"]).unwrap();
        let err = ts
            .count_conjunction(&[("value", AnyPredicate::I64(RangePredicate::all()))])
            .unwrap_err();
        assert!(matches!(err, TableSessionError::NoIndex(_)));
        let err2 = ts
            .count_conjunction(&[("time", AnyPredicate::F64(RangePredicate::all()))])
            .unwrap_err();
        assert!(matches!(err2, TableSessionError::PredicateType { .. }));
    }

    #[test]
    fn skipping_reduces_scanned_rows_on_selective_conjunctions() {
        let t = make_table(64_000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            (
                "time",
                AnyPredicate::I64(RangePredicate::between(1000, 1999)),
            ),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 999))),
        ];
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 1024 },
            &["time", "value"],
        )
        .unwrap();
        let (_, m) = ts.count_conjunction(&conjuncts).unwrap();
        // time is sorted, so intersection confines scans to ~1 zone per column.
        assert!(m.rows_scanned <= 4 * 1024, "scanned {}", m.rows_scanned);
    }

    /// Small adaptive config so metadata materialises within a few queries.
    fn small_adaptive() -> AdaptiveConfig {
        AdaptiveConfig {
            target_zone_rows: 64,
            min_zone_rows: 8,
            max_zone_rows: 512,
            split_after_wasted: 1,
            maintenance_every: 2,
            ..AdaptiveConfig::default()
        }
    }

    /// Regression for the observation-bounds transport: scan by-product
    /// min/max used to round-trip through `f64`, which is exact for
    /// integers only up to 2^53. For a needle value of 2^53 + 1 the
    /// nearest double is 2^53, so an adaptive zone built from that
    /// observation recorded max = 2^53 — strictly below the true max —
    /// and a later point query for the needle was *falsely skipped*.
    /// Typed [`AnyBounds`] transport keeps the native value end-to-end.
    #[test]
    fn u64_bounds_beyond_f64_precision_are_exact() {
        const P53: u64 = 1 << 53;
        let n = 4096usize;
        let mut vals: Vec<u64> = (0..n as u64).map(|i| i * 17 % 1000).collect();
        vals[100] = P53 + 1; // rounds DOWN to 2^53 as f64
        vals[2000] = u64::MAX - 1; // not representable as f64 at all
        let mut t = Table::new("edge");
        t.add_column("v", Column::from_values(vals)).unwrap();
        let mut ts = TableSession::new(t, &Strategy::Adaptive(small_adaptive()), &["v"]).unwrap();
        // FixedOrder always probes, so false skips cannot hide behind the
        // planner's scan-and-filter fallback.
        ts.set_plan_mode(PlanMode::FixedOrder);
        // Warm-up: full-range scans observe every zone, building metadata
        // whose bounds include the needles.
        let warm = [("v", AnyPredicate::U64(RangePredicate::between(0, u64::MAX)))];
        for _ in 0..6 {
            ts.count_conjunction(&warm).unwrap();
        }
        // Point query for each needle: exactly one row. Under the f64
        // transport the first returned 0 (zone max recorded as 2^53).
        for needle in [P53 + 1, u64::MAX - 1] {
            let (c, m) = ts
                .count_conjunction(&[(
                    "v",
                    AnyPredicate::U64(RangePredicate::between(needle, needle)),
                )])
                .unwrap();
            assert_eq!(c, 1, "needle {needle} lost");
            // The prune must be metadata-driven (skips most zones), or the
            // test would pass vacuously by scanning everything.
            assert!(m.zones_skipped > 0, "metadata never engaged");
        }
    }

    /// Same failure mode at the negative end: `-(2^53) - 1` rounds toward
    /// zero to `-(2^53)`, so an f64-transported zone *min* lands above the
    /// true min and a point query for the needle is falsely skipped.
    #[test]
    fn i64_bounds_beyond_negative_f64_precision_are_exact() {
        const N53: i64 = -(1i64 << 53);
        let n = 4096usize;
        let mut vals: Vec<i64> = (0..n as i64).map(|i| i * 13 % 1000).collect();
        vals[300] = N53 - 1;
        vals[3000] = i64::MIN + 1;
        let mut t = Table::new("edge");
        t.add_column("v", Column::from_values(vals)).unwrap();
        let mut ts = TableSession::new(t, &Strategy::Adaptive(small_adaptive()), &["v"]).unwrap();
        ts.set_plan_mode(PlanMode::FixedOrder);
        let warm = [(
            "v",
            AnyPredicate::I64(RangePredicate::between(i64::MIN, i64::MAX)),
        )];
        for _ in 0..6 {
            ts.count_conjunction(&warm).unwrap();
        }
        for needle in [N53 - 1, i64::MIN + 1] {
            let (c, m) = ts
                .count_conjunction(&[(
                    "v",
                    AnyPredicate::I64(RangePredicate::between(needle, needle)),
                )])
                .unwrap();
            assert_eq!(c, 1, "needle {needle} lost");
            assert!(m.zones_skipped > 0, "metadata never engaged");
        }
    }

    #[test]
    fn phase_timings_and_plan_metrics_populated() {
        let t = make_table(8000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            (
                "time",
                AnyPredicate::I64(RangePredicate::between(1000, 3000)),
            ),
            (
                "value",
                AnyPredicate::I64(RangePredicate::between(100, 500)),
            ),
        ];
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value"],
        )
        .unwrap();
        let (_, m) = ts.count_conjunction(&conjuncts).unwrap();
        // Satellite fix: these were all zero before the planner rework.
        assert!(m.prune_ns > 0, "prune phase untimed");
        assert!(m.scan_ns > 0, "scan phase untimed");
        assert_eq!(m.threads_used, 1);
        assert_eq!(m.conjuncts_probed, 2);
        assert!(!m.plan_fallback);
        assert!(m.wall_ns >= m.prune_ns);
        let trace = ts.last_plan().expect("trace recorded");
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.conjuncts_probed(), 2);
        assert!(trace.fallback.is_none());
        assert!(ts.index_metadata_bytes("time").unwrap() > 0);
        assert!(ts.index_metadata_bytes("missing").is_none());
    }

    #[test]
    fn forced_fallback_scans_and_filters_everything() {
        let t = make_table(4000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            ("time", AnyPredicate::I64(RangePredicate::between(100, 900))),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 400))),
        ];
        let expected = reference_count(&t, &conjuncts);
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 256 },
            &["time", "value"],
        )
        .unwrap();
        ts.set_plan_mode(PlanMode::ForcedFallback);
        let (count, m) = ts.count_conjunction(&conjuncts).unwrap();
        assert_eq!(count, expected);
        assert!(m.plan_fallback);
        assert_eq!(m.conjuncts_probed, 0);
        assert_eq!(m.zones_probed, 0);
        assert_eq!(m.rows_scanned, 4000 * 2, "both conjuncts filter every row");
        assert_eq!(
            ts.last_plan().unwrap().fallback,
            Some(FallbackReason::Forced)
        );
        assert_eq!(ts.totals().plan_fallbacks, 1);
    }

    #[test]
    fn forced_order_must_be_permutation() {
        let t = make_table(1000);
        let conjuncts: Vec<(&str, AnyPredicate)> = vec![
            ("time", AnyPredicate::I64(RangePredicate::between(0, 500))),
            ("value", AnyPredicate::I64(RangePredicate::between(0, 500))),
        ];
        let mut ts = TableSession::new(
            t,
            &Strategy::StaticZonemap { zone_rows: 128 },
            &["time", "value"],
        )
        .unwrap();
        ts.set_plan_mode(PlanMode::ForcedOrder(vec![0, 0]));
        assert!(matches!(
            ts.count_conjunction(&conjuncts),
            Err(TableSessionError::InvalidPlan(_))
        ));
        ts.set_plan_mode(PlanMode::ForcedOrder(vec![1, 0]));
        let (count, _) = ts.count_conjunction(&conjuncts).unwrap();
        ts.set_plan_mode(PlanMode::FixedOrder);
        let (count2, _) = ts.count_conjunction(&conjuncts).unwrap();
        assert_eq!(count, count2, "probe order must not change the answer");
    }
}

//! ads-audit — a seed-sweeping false-skip hunter.
//!
//! Drives randomized query/delete/append sequences through the executor
//! with the shadow oracle armed: every prune outcome the sweep produces
//! is cross-checked row by row against ground truth inside
//! `scan_pruned_with_deletes` (see `ads_core::audit`). The sweep itself
//! asserts nothing — a false skip aborts the process from inside the
//! executor with the zone, predicate, and decision trace; exiting 0
//! means every decision across every seed was sound.
//!
//! The configurations are deliberately hostile: tiny zones, hair-trigger
//! split/merge/deactivate/revival thresholds, zone-local reorganization,
//! masks, and forced metadata tiers, so a sweep exercises every prune
//! path (bounds, mask, bloom, imprint, tier units, positional) orders of
//! magnitude more often than the defaults would.
//!
//! Usage: `ads-audit [SEEDS] [QUERIES_PER_SEED] [ROWS]`
//! (defaults: 16 seeds × 300 queries over 48k rows — a few seconds).

#![forbid(unsafe_code)]

use ads_core::adaptive::{AdaptiveConfig, TierMode};
use ads_core::{RangePredicate, ScanCoords, SkippingIndex};
use ads_engine::{scan_pruned_with_deletes, AggKind, ExecPolicy, Strategy};
use ads_rng::StdRng;
use ads_storage::DeleteVector;

fn aggressive_adaptive(tier_mode: TierMode) -> AdaptiveConfig {
    AdaptiveConfig {
        target_zone_rows: 512,
        min_zone_rows: 64,
        max_zone_rows: 4096,
        split_after_wasted: 1,
        merge_after_probes: 4,
        merge_max_skip_rate: 0.3,
        deactivate_after_probes: 8,
        deactivate_max_skip_rate: 0.1,
        maintenance_every: 4,
        revival_base_queries: Some(16),
        enable_reorg: true,
        reorg_after_scans: 2,
        reorg_demote_idle: 8,
        // Always-reorg: no hotness gate, so promotions fire constantly.
        reorg_hot_factor: 0.0,
        tier_mode,
        tier_after_scans: 2,
        tier_drop_after: 8,
        ..AdaptiveConfig::default()
    }
}

fn roster() -> Vec<Strategy> {
    vec![
        Strategy::Adaptive(aggressive_adaptive(TierMode::Adaptive)),
        Strategy::Adaptive(aggressive_adaptive(TierMode::Bloom)),
        Strategy::Adaptive(aggressive_adaptive(TierMode::Imprint)),
        Strategy::StaticZonemap { zone_rows: 1024 },
        Strategy::Imprints {
            values_per_line: 8,
            bins: 64,
        },
        Strategy::Cracking,
        Strategy::StaticZonemap { zone_rows: 512 }.activated(),
    ]
}

/// Synthesizes a column whose shape depends on the seed: interleaved
/// uniform noise, sorted runs (skippable), and heavy duplicates (bloom
/// and imprint fodder).
fn make_data(rng: &mut StdRng, rows: usize) -> Vec<i64> {
    let mut data = Vec::with_capacity(rows);
    while data.len() < rows {
        let run = rng.gen_range(256usize..2048).min(rows - data.len());
        match rng.gen_range(0u64..3) {
            0 => data.extend((0..run).map(|_| rng.gen_range(0i64..1_000_000))),
            1 => {
                let base = rng.gen_range(0i64..900_000);
                data.extend((0..run as i64).map(|i| base + i));
            }
            _ => {
                let v = rng.gen_range(0i64..1_000_000);
                data.extend(std::iter::repeat_n(v, run));
            }
        }
    }
    data
}

fn random_pred(rng: &mut StdRng) -> RangePredicate<i64> {
    if rng.gen_range(0u64..4) == 0 {
        // Point probes feed bloom tiers their reason to exist.
        RangePredicate::point(rng.gen_range(0i64..1_000_000))
    } else {
        let lo = rng.gen_range(0i64..1_000_000);
        let width = rng.gen_range(1i64..200_000);
        RangePredicate::between(lo, (lo + width).min(1_000_000))
    }
}

/// Runs one seed's query sequence against one strategy. Mirrors
/// `execute_with_policy` (prune → scan → observe → maintain) but goes
/// through `scan_pruned_with_deletes` so tombstones are in play on
/// base-coordinate strategies — the audit hook fires inside the scan.
fn sweep_strategy(strategy: &Strategy, data: &[i64], queries: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAD17);
    let mut data = data.to_vec();
    let mut index = strategy.build_index(&data);
    let base_coords = index.scan_coords() == ScanCoords::Base;
    // View-coordinate strategies answer from their own copy; tombstones
    // would need coordinate translation, so the sweep keeps them
    // delete-free (the engine imposes the same restriction).
    let mut live = base_coords.then(|| DeleteVector::new(data.len(), 0));
    let policy = ExecPolicy::default();

    for q in 0..queries {
        // Mutation phases: occasional delete bursts and appends.
        if let Some(dv) = live.as_mut() {
            if q % 17 == 5 {
                for _ in 0..rng.gen_range(1usize..64) {
                    dv.delete(rng.gen_range(0usize..data.len()));
                }
            }
        }
        if base_coords && q % 41 == 13 {
            let old = data.len();
            let extra: Vec<i64> = (0..rng.gen_range(64usize..512))
                .map(|_| rng.gen_range(0i64..1_000_000))
                .collect();
            data.extend_from_slice(&extra);
            index.on_append(&data[old..], &data);
            if let Some(dv) = live.as_mut() {
                dv.grow(data.len());
            }
        }

        let pred = random_pred(&mut rng);
        let agg = match q % 3 {
            0 => AggKind::Count,
            1 => AggKind::Sum,
            _ => AggKind::Min,
        };
        let outcome = index.prune(&pred);
        let target: &[i64] = match index.scan_coords() {
            ScanCoords::Base => &data,
            // invariant: every ScanCoords::View strategy exposes its view.
            ScanCoords::View => index.view().expect("view strategy exposes a view"),
        };
        // The shadow oracle fires inside this call (audit feature).
        let (_answer, obs, _phase) =
            scan_pruned_with_deletes(target, &outcome, pred, agg, &policy, live.as_ref());
        index.observe(&obs);
        index.maintain(&data);
    }
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| {
            // invariant: CLI entry point — aborting with usage on bad args is the contract.
            a.parse()
                .expect("usage: ads-audit [SEEDS] [QUERIES] [ROWS]")
        })
        .collect();
    let seeds = args.first().copied().unwrap_or(16);
    let queries = args.get(1).copied().unwrap_or(300);
    let rows = args.get(2).copied().unwrap_or(48 * 1024);

    let roster = roster();
    for seed in 0..seeds as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = make_data(&mut rng, rows);
        for strategy in &roster {
            sweep_strategy(strategy, &data, queries, seed);
        }
        println!(
            "seed {seed}: {} strategies x {queries} queries audited clean",
            roster.len()
        );
    }
    println!("ads-audit: {seeds} seed(s) swept, no false skips");
}

//! Cost-based probe planning for multi-column conjunctions.
//!
//! The paper's core warning — skipping hurts when metadata reads outcost
//! the scan work they save — is enforced here *before* execution: each
//! conjunct's index reports a [`PruneStats`] summary (zone count, estimated
//! skip fraction, history depth), and the planner decides which indexes to
//! consult, in what order, and when consulting any of them is a predicted
//! net loss (fall back to scan-and-filter).
//!
//! The schedule itself is deliberately simple:
//!
//! * conjuncts with history are probed best-estimate-first, so the most
//!   selective metadata shrinks the alive row set before anyone else pays
//!   a probe bill;
//! * later probes run restricted to the surviving rows
//!   ([`SkippingIndex::prune_within`]), so they only examine metadata
//!   entries that still matter;
//! * conjuncts without history are probed unconditionally (after the known
//!   ones) — a cold index must be exercised to earn an estimate;
//! * a conjunct whose predicted saving does not clear its predicted probe
//!   cost is skipped entirely and handled by the residual filter.
//!
//! [`SkippingIndex::prune_within`]: ads_core::SkippingIndex::prune_within

use ads_core::{CostModel, PruneStats};
use std::cmp::Ordering;

/// How [`TableSession`](crate::TableSession) chooses and gates the probe
/// order of a conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Cost-based: order by estimated benefit, restrict later probes to
    /// surviving rows, and skip probes the model predicts unprofitable.
    #[default]
    Planned,
    /// Caller order with full-map probes and no gating — the behaviour
    /// before the planner existed, kept as the comparison baseline.
    FixedOrder,
    /// Caller order reversed, restricted probes, no gating.
    Reversed,
    /// An explicit probe order (a permutation of conjunct indices),
    /// restricted probes, no gating. Used by the oracle search in E18.
    ForcedOrder(Vec<usize>),
    /// Probe no index at all: scan-and-filter every conjunct.
    ForcedFallback,
}

/// Why a query fell back to scan-and-filter without probing any index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// No conjunct's predicted saving cleared its predicted probe cost.
    NoProfitableProbe,
    /// The session was pinned to [`PlanMode::ForcedFallback`].
    Forced,
}

/// One conjunct's entry in a [`PlanTrace`], in the order the plan visited
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Column the conjunct filters.
    pub column: String,
    /// Whether the index was actually probed.
    pub probed: bool,
    /// The index's own pre-probe skip-fraction estimate, when it had one.
    pub est_skip_fraction: Option<f64>,
    /// Predicted net saving of the probe in tuple-scan equivalents at the
    /// moment the plan considered it (0.0 when ungated).
    pub est_benefit: f64,
    /// Metadata entries the probe examined (0 when skipped).
    pub zones_probed: usize,
    /// Zones the probe excluded.
    pub zones_skipped: usize,
    /// Rows alive before this step.
    pub alive_before: usize,
    /// Rows alive after this step (equals `alive_before` when skipped).
    pub alive_after: usize,
}

impl PlanStep {
    /// Fraction of the rows alive before this step that the probe
    /// excluded; 0.0 for skipped steps or an already-empty alive set.
    pub fn actual_skip_fraction(&self) -> f64 {
        if self.alive_before == 0 {
            0.0
        } else {
            1.0 - self.alive_after as f64 / self.alive_before as f64
        }
    }
}

/// The decision record of one conjunction query: what was probed, in what
/// order, what the estimates said, and what actually happened.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanTrace {
    /// Steps in plan order.
    pub steps: Vec<PlanStep>,
    /// Set when the query probed no index at all.
    pub fallback: Option<FallbackReason>,
}

impl PlanTrace {
    /// Number of conjuncts whose index was probed.
    pub fn conjuncts_probed(&self) -> usize {
        self.steps.iter().filter(|s| s.probed).count()
    }
}

/// A resolved probe schedule for one conjunction query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbePlan {
    /// Conjunct indices in probe order; always a permutation of `0..k`.
    pub order: Vec<usize>,
    /// Later probes see only rows still alive (`prune_within`).
    pub restricted: bool,
    /// Probes may be skipped when predicted unprofitable.
    pub gated: bool,
    /// Probe nothing at all.
    pub forced_fallback: bool,
}

/// Builds the probe schedule for `mode` over conjuncts whose pre-probe
/// stats are `stats` (one entry per conjunct, caller order).
///
/// # Errors
/// Returns a message when a [`PlanMode::ForcedOrder`] is not a permutation
/// of `0..stats.len()`.
pub fn build_probe_plan(
    mode: &PlanMode,
    stats: &[Option<PruneStats>],
) -> Result<ProbePlan, String> {
    let k = stats.len();
    let plan = match mode {
        PlanMode::FixedOrder => ProbePlan {
            order: (0..k).collect(),
            restricted: false,
            gated: false,
            forced_fallback: false,
        },
        PlanMode::Reversed => ProbePlan {
            order: (0..k).rev().collect(),
            restricted: true,
            gated: false,
            forced_fallback: false,
        },
        PlanMode::ForcedFallback => ProbePlan {
            order: (0..k).collect(),
            restricted: true,
            gated: false,
            forced_fallback: true,
        },
        PlanMode::ForcedOrder(order) => {
            let mut seen = vec![false; k];
            let valid = order.len() == k
                && order
                    .iter()
                    .all(|&i| i < k && !std::mem::replace(&mut seen[i], true));
            if !valid {
                return Err(format!(
                    "forced order {order:?} is not a permutation of 0..{k}"
                ));
            }
            ProbePlan {
                order: order.clone(),
                restricted: true,
                gated: false,
                forced_fallback: false,
            }
        }
        PlanMode::Planned => {
            // Conjuncts with history first, best estimate first; ties and
            // history-less conjuncts keep caller order (a cold index still
            // gets probed — it must be exercised to earn an estimate).
            let mut known: Vec<usize> = Vec::new();
            let mut unknown: Vec<usize> = Vec::new();
            for (i, s) in stats.iter().enumerate() {
                match s {
                    Some(ps) if ps.queries_observed > 0 => known.push(i),
                    _ => unknown.push(i),
                }
            }
            known.sort_by(|&a, &b| {
                let ea = stats[a].map_or(0.0, |s| s.est_skip_fraction);
                let eb = stats[b].map_or(0.0, |s| s.est_skip_fraction);
                eb.partial_cmp(&ea)
                    .unwrap_or(Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let mut order = known;
            order.extend(unknown);
            ProbePlan {
                order,
                restricted: true,
                gated: true,
                forced_fallback: false,
            }
        }
    };
    Ok(plan)
}

/// Predicted net saving, in tuple-scan equivalents, of probing an index
/// summarised by `s` while `alive_rows` of the table's `n` rows survive:
/// expected rows excluded, minus the predicted cost of a probe restricted
/// to the metadata entries still overlapping alive rows.
pub fn probe_benefit(s: &PruneStats, alive_rows: usize, n: usize, cost: &CostModel) -> f64 {
    let alive_frac = if n == 0 {
        0.0
    } else {
        alive_rows as f64 / n as f64
    };
    let probes = s.probe_entries as f64 * alive_frac;
    s.est_skip_fraction * alive_rows as f64 - probes * cost.probe_cost_tuples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(entries: usize, est: f64, q: u64) -> Option<PruneStats> {
        Some(PruneStats {
            probe_entries: entries,
            est_skip_fraction: est,
            queries_observed: q,
        })
    }

    #[test]
    fn planned_orders_known_by_estimate_then_unknowns() {
        let stats = [st(10, 0.2, 5), st(10, 0.9, 5), None, st(10, 0.9, 0)];
        let p = build_probe_plan(&PlanMode::Planned, &stats).unwrap();
        assert_eq!(p.order, vec![1, 0, 2, 3]);
        assert!(p.restricted && p.gated && !p.forced_fallback);
    }

    #[test]
    fn planned_ties_keep_caller_order() {
        let stats = [st(10, 0.5, 1), st(10, 0.5, 1)];
        let p = build_probe_plan(&PlanMode::Planned, &stats).unwrap();
        assert_eq!(p.order, vec![0, 1]);
    }

    #[test]
    fn fixed_order_is_unrestricted_caller_order() {
        let stats = [st(10, 0.2, 5), st(10, 0.9, 5)];
        let p = build_probe_plan(&PlanMode::FixedOrder, &stats).unwrap();
        assert_eq!(p.order, vec![0, 1]);
        assert!(!p.restricted && !p.gated);
    }

    #[test]
    fn reversed_flips_caller_order() {
        let stats = [None, None, None];
        let p = build_probe_plan(&PlanMode::Reversed, &stats).unwrap();
        assert_eq!(p.order, vec![2, 1, 0]);
        assert!(p.restricted && !p.gated);
    }

    #[test]
    fn forced_order_validates_permutation() {
        let stats = [None, None];
        assert!(build_probe_plan(&PlanMode::ForcedOrder(vec![1, 0]), &stats).is_ok());
        for bad in [vec![0], vec![0, 0], vec![0, 2], vec![0, 1, 1]] {
            assert!(
                build_probe_plan(&PlanMode::ForcedOrder(bad.clone()), &stats).is_err(),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn forced_fallback_probes_nothing() {
        let p = build_probe_plan(&PlanMode::ForcedFallback, &[None]).unwrap();
        assert!(p.forced_fallback);
    }

    #[test]
    fn benefit_positive_for_selective_cheap_probe() {
        let cost = CostModel::new(8.0);
        let s = PruneStats {
            probe_entries: 100,
            est_skip_fraction: 0.9,
            queries_observed: 10,
        };
        // 90% of 100k rows saved vs 100 probes: clearly positive.
        assert!(probe_benefit(&s, 100_000, 100_000, &cost) > 0.0);
    }

    #[test]
    fn benefit_negative_when_probes_outcost_savings() {
        let cost = CostModel::new(8.0);
        let s = PruneStats {
            probe_entries: 1000,
            est_skip_fraction: 0.0,
            queries_observed: 10,
        };
        assert!(probe_benefit(&s, 100_000, 100_000, &cost) < 0.0);
        // Empty table: no saving, no cost.
        assert_eq!(probe_benefit(&s, 0, 0, &cost), 0.0);
    }

    #[test]
    fn benefit_scales_probe_cost_by_alive_fraction() {
        let cost = CostModel::new(8.0);
        let s = PruneStats {
            probe_entries: 1000,
            est_skip_fraction: 0.1,
            queries_observed: 10,
        };
        let full = probe_benefit(&s, 100_000, 100_000, &cost);
        let tenth = probe_benefit(&s, 10_000, 100_000, &cost);
        // Restricted probes touch proportionally less metadata.
        assert!(full < 0.1 * 100_000.0 && tenth < 0.1 * 10_000.0);
        assert!(tenth > full / 10.0 - 1e-9);
    }

    #[test]
    fn trace_helpers() {
        let step = PlanStep {
            column: "a".into(),
            probed: true,
            est_skip_fraction: Some(0.5),
            est_benefit: 10.0,
            zones_probed: 4,
            zones_skipped: 2,
            alive_before: 100,
            alive_after: 25,
        };
        assert!((step.actual_skip_fraction() - 0.75).abs() < 1e-12);
        let trace = PlanTrace {
            steps: vec![
                step.clone(),
                PlanStep {
                    probed: false,
                    alive_after: 25,
                    alive_before: 25,
                    ..step
                },
            ],
            fallback: None,
        };
        assert_eq!(trace.conjuncts_probed(), 1);
        let empty = PlanStep {
            column: "b".into(),
            probed: false,
            est_skip_fraction: None,
            est_benefit: 0.0,
            zones_probed: 0,
            zones_skipped: 0,
            alive_before: 0,
            alive_after: 0,
        };
        assert_eq!(empty.actual_skip_fraction(), 0.0);
    }
}

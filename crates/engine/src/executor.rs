//! The scan executor: runs one pruned query end-to-end.
//!
//! The executor is the glue of the prune/observe protocol: it asks the
//! index what to scan, runs the kernels over exactly those ranges, answers
//! the aggregate, and feeds the per-range observations (qualifying counts
//! and exact min/max, computed as scan by-products) back to the index.
//!
//! ## Parallel execution
//!
//! [`execute_with_policy`] fans the prune outcome's scan units (plus the
//! full-match ranges, for value-reading aggregates) across scoped worker
//! threads via [`ads_storage::parallel::par_map_weighted`]. Every work
//! item produces its result independently and the executor merges them
//! **in item order** — the exact order the sequential loop folds in — so
//! answers (including floating-point SUMs), the observation feedback, and
//! therefore all adaptation downstream are bit-identical at any thread
//! count. Parallelism changes latency, never state.

use crate::exec_policy::ExecPolicy;
use crate::metrics::QueryMetrics;
use ads_core::outcome::MaskRequest;
use ads_core::{
    PruneOutcome, RangeObservation, RangePredicate, ScanCoords, ScanObservation, SkippingIndex,
};
use ads_storage::DataValue;
use ads_storage::{parallel, scan, DeleteVector, RowRange};
use std::time::Instant;

/// Which aggregate a scan query computes over the qualifying rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Number of qualifying rows.
    Count,
    /// Sum of qualifying values (as `f64`).
    Sum,
    /// Minimum qualifying value.
    Min,
    /// Maximum qualifying value.
    Max,
    /// The qualifying base-table row ids, ascending.
    Positions,
}

/// The result of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer<T: DataValue> {
    /// Number of qualifying rows (computed for every aggregate kind).
    pub count: u64,
    /// Sum of qualifying values; `Some` only for [`AggKind::Sum`].
    pub sum: Option<f64>,
    /// Minimum qualifying value; `Some` for [`AggKind::Min`] with matches.
    pub min: Option<T>,
    /// Maximum qualifying value; `Some` for [`AggKind::Max`] with matches.
    pub max: Option<T>,
    /// Qualifying base row ids; `Some` only for [`AggKind::Positions`].
    pub positions: Option<Vec<u32>>,
}

impl<T: DataValue> Default for QueryAnswer<T> {
    fn default() -> Self {
        QueryAnswer {
            count: 0,
            sum: None,
            min: None,
            max: None,
            positions: None,
        }
    }
}

/// One parallelisable piece of a query's scan work.
#[derive(Debug, Clone, Copy)]
pub(crate) enum WorkItem {
    /// A full-match range whose values must still be read (SUM/MIN/MAX).
    Full(RowRange),
    /// One scan unit of the prune outcome, with its optional mask request.
    Unit(RowRange, Option<MaskRequest>),
    /// One positional unit over a reorganized zone: index into the
    /// outcome's `reorg_units`, plus the qualifying+edge row count for
    /// load balancing (the zone's other rows are never touched).
    Reorg { idx: usize, rows: usize },
}

impl WorkItem {
    pub(crate) fn rows(&self) -> usize {
        match self {
            WorkItem::Full(r) | WorkItem::Unit(r, _) => r.len(),
            WorkItem::Reorg { rows, .. } => *rows,
        }
    }
}

/// What scanning one [`WorkItem`] produced; merged in item order.
pub(crate) struct ItemResult<T: DataValue> {
    /// Observation to feed back (`None` for full-match items).
    obs: Option<RangeObservation<T>>,
    /// Qualifying rows (all rows, for full-match items).
    count: usize,
    /// Partial SUM of qualifying values.
    sum: f64,
    /// MIN over qualifying rows (fold identity when none).
    match_min: T,
    /// MAX over qualifying rows (fold identity when none).
    match_max: T,
    /// Qualifying positions (POSITIONS only).
    positions: Vec<u32>,
}

/// Executes `pred` with aggregate `agg` over `data` using `index`, with
/// the default sequential [`ExecPolicy`].
///
/// Returns the answer plus per-query metrics. The index's adaptation (if
/// any) happens inside this call, and its cost is included in `wall_ns` —
/// adaptive structures pay their reorganisation on the query path, exactly
/// as the paper frames it.
pub fn execute<T: DataValue>(
    data: &[T],
    index: &mut dyn SkippingIndex<T>,
    pred: RangePredicate<T>,
    agg: AggKind,
) -> (QueryAnswer<T>, QueryMetrics) {
    execute_with_policy(data, index, pred, agg, &ExecPolicy::sequential())
}

/// As [`execute`], with an explicit execution policy. Answers and
/// post-query index state are identical under every policy; only latency
/// (and `threads_used`) differ.
pub fn execute_with_policy<T: DataValue>(
    data: &[T],
    index: &mut dyn SkippingIndex<T>,
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
) -> (QueryAnswer<T>, QueryMetrics) {
    let t0 = Instant::now();
    let events_before = index.adapt_events();
    let outcome = index.prune(&pred);
    let prune_ns = t0.elapsed().as_nanos() as u64;

    let coords = index.scan_coords();
    let (mut answer, observation, phase) = {
        let target: &[T] = match coords {
            ScanCoords::Base => data,
            ScanCoords::View => index
                .view()
                // invariant: ScanCoords::View is only reported by indexes
                // that expose a view (checked by the SkippingIndex
                // contract tests).
                .expect("view-coordinate index must expose a view"),
        };
        scan_pruned(target, &outcome, pred, agg, policy)
    };

    if let Some(positions) = answer.positions.as_mut() {
        if coords == ScanCoords::View {
            index.translate_positions(positions);
            positions.sort_unstable();
        }
    }

    // The inline path is "execute, then immediately apply the feedback",
    // then give the index its periodic self-maintenance slot (zone
    // promotion/demotion for reorg-enabled adaptive zonemaps).
    let t_obs = Instant::now();
    index.observe(&observation);
    index.maintain(data);
    let observe_ns = t_obs.elapsed().as_nanos() as u64;

    let metrics = QueryMetrics {
        wall_ns: t0.elapsed().as_nanos() as u64,
        zones_probed: outcome.zones_probed,
        zones_skipped: outcome.zones_skipped,
        rows_scanned: phase.rows_scanned,
        rows_full_match: outcome.rows_full_match() + outcome.rows_positional_match(),
        rows_matched: answer.count,
        adapt_events: index.adapt_events() - events_before,
        prune_ns,
        scan_ns: phase.scan_ns,
        observe_ns,
        threads_used: phase.threads_used,
        conjuncts_probed: 0,
        plan_fallback: false,
    };
    (answer, metrics)
}

/// Timing and sizing facts of one scan phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanPhase {
    /// Rows the scan actually touched (full-match rows excluded).
    pub rows_scanned: usize,
    /// Worker threads used (1 = sequential).
    pub threads_used: usize,
    /// Wall nanoseconds of the scan phase.
    pub scan_ns: u64,
}

/// The pure read path of a query: scans an already-pruned outcome over
/// `target` and returns the answer plus the observation batch, touching no
/// index state.
///
/// This is [`execute_with_policy`] minus pruning and minus `observe()` —
/// callable with only shared references, so any number of threads can
/// execute queries against an immutable snapshot concurrently. The caller
/// decides what to do with the returned [`ScanObservation`]: apply it
/// immediately (inline adaptation, what [`execute_with_policy`] does),
/// queue it for a maintenance thread (asynchronous adaptation), or drop it
/// (frozen metadata). Dropping or delaying feedback never affects answer
/// correctness — only how fast the index adapts.
///
/// `target` must be in the outcome's scan coordinates; positions are
/// returned untranslated.
pub fn scan_pruned<T: DataValue>(
    target: &[T],
    outcome: &PruneOutcome,
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
) -> (QueryAnswer<T>, ScanObservation<T>, ScanPhase) {
    scan_pruned_with_deletes(target, outcome, pred, agg, policy, None)
}

/// As [`scan_pruned`], masking tombstoned rows via `live` when given.
///
/// With a delete vector present, every kernel dispatch switches to its
/// masked variant: `count`/`sum`/MIN/MAX/positions cover live rows only,
/// while the observations fed back still carry `(min, max)` over all rows
/// — deleted rows keep zone bounds conservative (sound, never wrong)
/// until compaction rebuilds them. An all-live vector takes the unmasked
/// fast path, so the masking cost is zero until the first delete lands.
/// `live` is addressed in the same coordinates as `target`.
pub fn scan_pruned_with_deletes<T: DataValue>(
    target: &[T],
    outcome: &PruneOutcome,
    pred: RangePredicate<T>,
    agg: AggKind,
    policy: &ExecPolicy,
    live: Option<&DeleteVector>,
) -> (QueryAnswer<T>, ScanObservation<T>, ScanPhase) {
    let t_scan = Instant::now();
    let items = build_work_items(outcome, agg);

    // An all-live vector is answer-identical to no vector; drop it here so
    // every kernel below takes the unmasked path.
    let live = live.filter(|dv| dv.has_deletes());

    // Shadow oracle: recompute ground truth row by row and abort on any
    // zone the prune excluded that still holds a qualifying live row.
    // Sitting on the one executor path every engine and server scan
    // funnels through, this turns the whole test suite into a
    // false-skip hunt when the feature is on.
    #[cfg(feature = "audit")]
    ads_core::audit::verify_outcome(target, live, &pred, outcome, None, "scan_pruned");

    let scan_rows: usize = items.iter().map(WorkItem::rows).sum();
    let threads_used = policy.effective_threads(scan_rows);

    let results: Vec<ItemResult<T>> =
        parallel::par_map_weighted(&items, threads_used, WorkItem::rows, |_, item| {
            scan_item(target, &outcome.reorg_units, pred, agg, item, live)
        });

    let (answer, observation, rows_scanned) =
        merge_item_results(outcome, pred, agg, &items, results, live);
    let scan_ns = t_scan.elapsed().as_nanos() as u64;

    (
        answer,
        observation,
        ScanPhase {
            rows_scanned,
            threads_used,
            scan_ns,
        },
    )
}

/// Builds the work list of one prune outcome: full-match ranges first
/// (only when their values must be read), then the scan units and
/// positional reorg units merged by ascending zone start — the order the
/// answer fold visits them, which keeps f64 accumulation bit-identical
/// between sequential and parallel execution *and* between the flat and
/// reorganized layouts (a reorg item folds exactly where the same zone's
/// flat unit would).
pub(crate) fn build_work_items(outcome: &PruneOutcome, agg: AggKind) -> Vec<WorkItem> {
    let reads_full_values = matches!(agg, AggKind::Sum | AggKind::Min | AggKind::Max);
    let fulls = if reads_full_values {
        outcome.full_match.ranges()
    } else {
        &[]
    };
    let units = outcome.units();
    let reorg = &outcome.reorg_units;
    let mut items: Vec<WorkItem> = Vec::with_capacity(fulls.len() + units.len() + reorg.len());
    items.extend(fulls.iter().map(|r| WorkItem::Full(*r)));
    let (mut ui, mut ri) = (0usize, 0usize);
    while ui < units.len() || ri < reorg.len() {
        let take_unit = match (units.get(ui), reorg.get(ri)) {
            (Some(u), Some(r)) => u.start < r.zone.start,
            (Some(_), None) => true,
            _ => false,
        };
        if take_unit {
            items.push(WorkItem::Unit(units[ui], outcome.mask_request(ui)));
            ui += 1;
        } else {
            items.push(WorkItem::Reorg {
                idx: ri,
                rows: reorg[ri].full_rows() + reorg[ri].edge_rows(),
            });
            ri += 1;
        }
    }
    items
}

/// Folds one outcome's [`ItemResult`]s in item order into the answer and
/// the observation batch. `results` must align 1:1 with `items` (which
/// must come from [`build_work_items`] on the same outcome). Returns
/// `(answer, observation, rows_scanned)`.
pub(crate) fn merge_item_results<T: DataValue>(
    outcome: &PruneOutcome,
    pred: RangePredicate<T>,
    agg: AggKind,
    items: &[WorkItem],
    results: Vec<ItemResult<T>>,
    live: Option<&DeleteVector>,
) -> (QueryAnswer<T>, ScanObservation<T>, usize) {
    let mut answer = QueryAnswer::default();
    let mut rows_scanned = 0usize;

    // Merge phase: fold results in item order.
    let mut sum = 0.0f64;
    let mut mmin = T::MAX_VALUE;
    let mut mmax = T::MIN_VALUE;
    for (item, r) in items.iter().zip(&results) {
        answer.count += r.count as u64;
        sum += r.sum;
        mmin = mmin.min_total(r.match_min);
        mmax = mmax.max_total(r.match_max);
        match item {
            WorkItem::Unit(..) => rows_scanned += item.rows(),
            // Positional units only touch (and predicate-test) their edge
            // pieces; the full span is answered without per-row tests.
            WorkItem::Reorg { idx, .. } => rows_scanned += outcome.reorg_units[*idx].edge_rows(),
            WorkItem::Full(_) => {}
        }
    }
    match agg {
        AggKind::Count => {
            // Full-match rows are answered from metadata alone — under
            // deletes, from the delete vector's live popcount instead of
            // the range length.
            answer.count += match live {
                Some(dv) => outcome
                    .full_match
                    .ranges()
                    .iter()
                    .map(|r| dv.live_count_in_range(r.start, r.end))
                    .sum::<usize>() as u64,
                None => outcome.rows_full_match() as u64,
            };
        }
        AggKind::Sum => answer.sum = Some(sum),
        AggKind::Min => answer.min = (answer.count > 0).then_some(mmin),
        AggKind::Max => answer.max = (answer.count > 0).then_some(mmax),
        AggKind::Positions => {
            // POSITIONS items are units and reorg units in ascending
            // start order, aligned 1:1 with results: merge-walk the
            // full-match ranges against the item stream so
            // base-coordinate output comes out sorted.
            let full_ranges = outcome.full_match.ranges();
            let mut positions: Vec<u32> =
                Vec::with_capacity(results.iter().map(|r| r.positions.len()).sum::<usize>());
            // Under deletes a full-match range contributes only its live
            // rows; otherwise the whole range extends wholesale.
            let push_full = |f: RowRange, positions: &mut Vec<u32>, count: &mut u64| match live {
                Some(dv) => {
                    let before = positions.len();
                    scan::collect_live_positions(dv, f.start, f.end, positions);
                    *count += (positions.len() - before) as u64;
                }
                None => {
                    // narrowing: row ids are u32 by the storage contract
                    // (columns are bounded to u32::MAX rows).
                    positions.extend(f.start as u32..f.end as u32);
                    *count += f.len() as u64;
                }
            };
            let mut fi = 0usize;
            for (item, r) in items.iter().zip(&results) {
                let item_start = match item {
                    WorkItem::Unit(u, _) => u.start,
                    WorkItem::Reorg { idx, .. } => outcome.reorg_units[*idx].zone.start,
                    // Full items are never built for POSITIONS.
                    WorkItem::Full(_) => continue,
                };
                while fi < full_ranges.len() && full_ranges[fi].start < item_start {
                    push_full(full_ranges[fi], &mut positions, &mut answer.count);
                    fi += 1;
                }
                positions.extend_from_slice(&r.positions);
            }
            while fi < full_ranges.len() {
                push_full(full_ranges[fi], &mut positions, &mut answer.count);
                fi += 1;
            }
            answer.positions = Some(positions);
        }
    }
    let mut observations: Vec<RangeObservation<T>> = Vec::with_capacity(outcome.units().len());
    observations.extend(results.into_iter().filter_map(|r| r.obs));

    (
        answer,
        ScanObservation {
            predicate: pred,
            ranges: observations,
        },
        rows_scanned,
    )
}

/// Marks the base rows qualifying inside one reorg unit in a zone-local
/// bitmap (bit `i` = base row `zone.start + i`): the full span's rowids
/// wholesale plus edge rows passing the predicate. Replaying the bitmap
/// with [`for_each_set_row`] recovers ascending base order in O(zone)
/// word scans instead of the O(k log k) sort a rowid list would need —
/// and ascending base order is what makes downstream f64 accumulation
/// match the flat scan bit for bit.
fn reorg_unit_bitmap<T: DataValue>(
    unit: &ads_core::ReorgUnit,
    values: &[T],
    rowids: &[u32],
    pred: RangePredicate<T>,
) -> (Vec<u64>, usize) {
    let zone_start = unit.zone.start;
    let mut bits = vec![0u64; (unit.zone.end - zone_start).div_ceil(64)];
    let mut count = unit.full_rows();
    for &r in &rowids[unit.full.start..unit.full.end] {
        // narrowing: u32 row id to usize is lossless on 32/64-bit hosts.
        let off = r as usize - zone_start;
        bits[off / 64] |= 1 << (off % 64);
    }
    for e in unit.edges.iter().flatten() {
        for (i, v) in values[e.start..e.end].iter().enumerate() {
            if pred.matches(*v) {
                // narrowing: u32 row id to usize is lossless here too.
                let off = rowids[e.start + i] as usize - zone_start;
                bits[off / 64] |= 1 << (off % 64);
                count += 1;
            }
        }
    }
    (bits, count)
}

/// Visits the base rows of a zone-local bitmap in ascending order.
fn for_each_set_row(bits: &[u64], zone_start: usize, mut f: impl FnMut(usize)) {
    for (w, &packed) in bits.iter().enumerate() {
        let mut word = packed;
        while word != 0 {
            // narrowing: trailing_zeros of a u64 is at most 64.
            f(zone_start + w * 64 + word.trailing_zeros() as usize);
            word &= word - 1;
        }
    }
}

/// Scans one work item. Pure with respect to shared state: reads
/// `target` (and, for reorg items, the outcome's payloads), writes only
/// its own result — safe to run on any thread.
pub(crate) fn scan_item<T: DataValue>(
    target: &[T],
    reorg_units: &[ads_core::ReorgUnit],
    pred: RangePredicate<T>,
    agg: AggKind,
    item: &WorkItem,
    live: Option<&DeleteVector>,
) -> ItemResult<T> {
    let mut out = ItemResult {
        obs: None,
        count: 0,
        sum: 0.0,
        match_min: T::MAX_VALUE,
        match_max: T::MIN_VALUE,
        positions: Vec::new(),
    };
    match *item {
        WorkItem::Full(r) => {
            // Every row qualifies: no predicate re-evaluation, values only
            // — under deletes, live values only.
            let slice = &target[r.start..r.end];
            match live {
                Some(dv) => {
                    match agg {
                        AggKind::Sum => {
                            let (c, s) = scan::sum_all_live(slice, dv, r.start);
                            out.count = c;
                            out.sum = s;
                        }
                        AggKind::Min | AggKind::Max => {
                            out.count = dv.live_count_in_range(r.start, r.end);
                            if let Some((lo, hi)) = scan::min_max_live(slice, dv, r.start) {
                                out.match_min = lo;
                                out.match_max = hi;
                            }
                        }
                        _ => out.count = dv.live_count_in_range(r.start, r.end),
                    };
                }
                None => {
                    out.count = slice.len();
                    match agg {
                        // live: this arm has no delete vector — every row
                        // of the slice is live by definition.
                        AggKind::Sum => out.sum = scan::sum_all(slice),
                        AggKind::Min | AggKind::Max => {
                            // live: same delete-free arm.
                            if let Some((lo, hi)) = scan::min_max(slice) {
                                out.match_min = lo;
                                out.match_max = hi;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        WorkItem::Unit(u, mask_req) => {
            let slice = &target[u.start..u.end];
            match agg {
                AggKind::Count => {
                    let obs = if let Some(req) = mask_req {
                        // The index asked for a value mask over this unit;
                        // collect it in the same pass.
                        let (q, min, max, mask) = match live {
                            Some(dv) => scan::count_in_range_with_minmax_and_mask_live(
                                slice, pred.lo, pred.hi, req.lo_f, req.hi_f, dv, u.start,
                            ),
                            // live: `live` is None — every row is live.
                            None => scan::count_in_range_with_minmax_and_mask(
                                slice, pred.lo, pred.hi, req.lo_f, req.hi_f,
                            ),
                        };
                        let mut o = RangeObservation::new(u, q, min, max);
                        o.mask = Some(mask);
                        o
                    } else {
                        let (q, min, max) = match live {
                            Some(dv) => scan::count_in_range_with_minmax_live(
                                slice, pred.lo, pred.hi, dv, u.start,
                            ),
                            // live: `live` is None — every row is live.
                            None => scan::count_in_range_with_minmax(slice, pred.lo, pred.hi),
                        };
                        RangeObservation::new(u, q, min, max)
                    };
                    out.count = obs.qualifying;
                    out.obs = Some(obs);
                }
                AggKind::Sum | AggKind::Min | AggKind::Max => {
                    let a = match live {
                        Some(dv) => {
                            scan::aggregate_in_range_live(slice, pred.lo, pred.hi, dv, u.start)
                        }
                        // live: `live` is None — every row is live.
                        None => scan::aggregate_in_range(slice, pred.lo, pred.hi),
                    };
                    out.count = a.count;
                    out.sum = a.sum;
                    out.match_min = a.match_min;
                    out.match_max = a.match_max;
                    out.obs = Some(RangeObservation::new(u, a.count, a.range_min, a.range_max));
                }
                AggKind::Positions => {
                    let (q, min, max) = match live {
                        Some(dv) => scan::collect_in_range_with_minmax_live(
                            slice,
                            u.start,
                            pred.lo,
                            pred.hi,
                            dv,
                            &mut out.positions,
                        ),
                        // live: `live` is None — every row is live.
                        None => scan::collect_in_range_with_minmax(
                            slice,
                            u.start,
                            pred.lo,
                            pred.hi,
                            &mut out.positions,
                        ),
                    };
                    out.count = q;
                    out.obs = Some(RangeObservation::new(u, q, min, max));
                }
            }
        }
        WorkItem::Reorg { idx, .. } => {
            let unit = &reorg_units[idx];
            let payload = unit
                .payload
                .downcast_ref::<ads_storage::ReorgZone<T>>()
                // invariant: the prune that emitted this unit built the
                // payload from the same column, so T always matches.
                .expect("reorg payload downcasts to the column's value type");
            let values = payload.values();
            let rowids = payload.rowids();
            let (zmin, zmax) = payload.min_max();
            if let Some(dv) = live {
                // Under deletes every aggregate routes through the
                // zone-local qualifying bitmap ANDed word-wise with the
                // live windows: positional full spans can no longer be
                // answered from counts alone, and replaying the masked
                // bitmap in ascending base order keeps SUM bit-identical
                // to the masked flat scan.
                let (mut bits, _) = reorg_unit_bitmap(unit, values, rowids, pred);
                let zone_start = unit.zone.start;
                let mut count = 0usize;
                for (w, word) in bits.iter_mut().enumerate() {
                    *word &= dv.live_window(zone_start + w * 64);
                    // narrowing: count_ones of a u64 is at most 64.
                    count += word.count_ones() as usize;
                }
                out.count = count;
                match agg {
                    AggKind::Count => {}
                    AggKind::Sum => {
                        let mut sum = 0.0;
                        for_each_set_row(&bits, zone_start, |r| sum += target[r].to_f64());
                        out.sum = sum;
                    }
                    AggKind::Min | AggKind::Max => {
                        // Reading base values: identical bit patterns to
                        // the view copies, and min/max folds are
                        // order-independent.
                        for_each_set_row(&bits, zone_start, |r| {
                            out.match_min = out.match_min.min_total(target[r]);
                            out.match_max = out.match_max.max_total(target[r]);
                        });
                    }
                    AggKind::Positions => {
                        out.positions.reserve(count);
                        for_each_set_row(&bits, zone_start, |r| {
                            // narrowing: row ids are u32 by storage-wide
                            // contract (columns bounded below 2^32 rows).
                            out.positions.push(r as u32);
                        });
                    }
                }
                out.obs = Some(RangeObservation::new(unit.zone, out.count, zmin, zmax));
                return out;
            }
            match agg {
                AggKind::Count => {
                    let mut q = unit.full_rows();
                    for e in unit.edges.iter().flatten() {
                        q += values[e.start..e.end]
                            .iter()
                            .filter(|v| pred.matches(**v))
                            .count();
                    }
                    out.count = q;
                }
                AggKind::Sum => {
                    let (bits, count) = reorg_unit_bitmap(unit, values, rowids, pred);
                    out.count = count;
                    // Ascending base-row accumulation: the exact order a
                    // flat scan of this zone adds in, so the partial sum
                    // is bit-identical across layouts.
                    let mut sum = 0.0;
                    for_each_set_row(&bits, unit.zone.start, |r| sum += target[r].to_f64());
                    out.sum = sum;
                }
                AggKind::Min | AggKind::Max => {
                    let mut q = unit.full_rows();
                    for &v in &values[unit.full.start..unit.full.end] {
                        out.match_min = out.match_min.min_total(v);
                        out.match_max = out.match_max.max_total(v);
                    }
                    // min_total/max_total folds are order-independent at
                    // the bit level (total-order ties have identical bit
                    // patterns), so view order is as good as base order.
                    for e in unit.edges.iter().flatten() {
                        for &v in &values[e.start..e.end] {
                            if pred.matches(v) {
                                q += 1;
                                out.match_min = out.match_min.min_total(v);
                                out.match_max = out.match_max.max_total(v);
                            }
                        }
                    }
                    out.count = q;
                }
                AggKind::Positions => {
                    let (bits, count) = reorg_unit_bitmap(unit, values, rowids, pred);
                    out.count = count;
                    out.positions.reserve(count);
                    for_each_set_row(&bits, unit.zone.start, |r| {
                        // narrowing: row ids are u32 by storage-wide
                        // contract (columns are bounded below 2^32 rows).
                        out.positions.push(r as u32);
                    });
                }
            }
            // The payload's build-time (min, max) covers every zone row —
            // the same exact metadata a flat scan would feed back.
            out.obs = Some(RangeObservation::new(unit.zone, out.count, zmin, zmax));
        }
    }
    out
}

/// Reference implementation used by tests and the soundness harness:
/// answers the same query with a plain scan, no index involved.
pub fn execute_reference<T: DataValue>(
    data: &[T],
    pred: RangePredicate<T>,
    agg: AggKind,
) -> QueryAnswer<T> {
    let outcome = PruneOutcome::scan_all(data.len());
    let mut answer = QueryAnswer::default();
    match agg {
        AggKind::Count => {
            // live: delete-free reference by contract — callers with
            // tombstones use `execute_reference_with_deletes`.
            answer.count = scan::count_in_range(data, pred.lo, pred.hi) as u64;
        }
        AggKind::Sum => {
            // live: same delete-free reference contract.
            let (c, s) = scan::sum_in_range(data, pred.lo, pred.hi);
            answer.count = c as u64;
            answer.sum = Some(s);
        }
        AggKind::Min | AggKind::Max => {
            // live: same delete-free reference contract.
            let a = scan::aggregate_in_range(data, pred.lo, pred.hi);
            answer.count = a.count as u64;
            if a.count > 0 {
                match agg {
                    AggKind::Min => answer.min = Some(a.match_min),
                    AggKind::Max => answer.max = Some(a.match_max),
                    _ => unreachable!(),
                }
            }
        }
        AggKind::Positions => {
            let mut positions = Vec::new();
            for r in outcome.must_scan.ranges() {
                // live: same delete-free reference contract.
                scan::collect_in_range(
                    &data[r.start..r.end],
                    r.start,
                    pred.lo,
                    pred.hi,
                    &mut positions,
                );
            }
            answer.count = positions.len() as u64;
            answer.positions = Some(positions);
        }
    }
    answer
}

/// Delete-aware reference: answers the query with a naive per-row loop
/// over the live rows, no index and no block kernels involved. The f64
/// SUM accumulates in ascending row order, so masked execution must match
/// it bit for bit; positions come back in original row coordinates.
pub fn execute_reference_with_deletes<T: DataValue>(
    data: &[T],
    live: &DeleteVector,
    pred: RangePredicate<T>,
    agg: AggKind,
) -> QueryAnswer<T> {
    assert_eq!(data.len(), live.len(), "delete vector must cover the data");
    let mut answer = QueryAnswer::default();
    let mut sum = 0.0f64;
    let mut mmin = T::MAX_VALUE;
    let mut mmax = T::MIN_VALUE;
    let mut positions = Vec::new();
    for (i, &v) in data.iter().enumerate() {
        if live.is_deleted(i) || !pred.matches(v) {
            continue;
        }
        answer.count += 1;
        match agg {
            AggKind::Sum => sum += v.to_f64(),
            AggKind::Min | AggKind::Max => {
                mmin = mmin.min_total(v);
                mmax = mmax.max_total(v);
            }
            // narrowing: row ids are u32 by the storage-wide contract.
            AggKind::Positions => positions.push(i as u32),
            AggKind::Count => {}
        }
    }
    match agg {
        AggKind::Count => {}
        AggKind::Sum => answer.sum = Some(sum),
        AggKind::Min => answer.min = (answer.count > 0).then_some(mmin),
        AggKind::Max => answer.max = (answer.count > 0).then_some(mmax),
        AggKind::Positions => answer.positions = Some(positions),
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn data() -> Vec<i64> {
        (0..5000).map(|i| (i * 2654435761i64) % 1000).collect()
    }

    /// A policy that always parallelises at test scale.
    fn eager(threads: usize) -> ExecPolicy {
        ExecPolicy {
            threads,
            min_rows_per_thread: 1,
        }
    }

    const ALL_AGGS: [AggKind; 5] = [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Min,
        AggKind::Max,
        AggKind::Positions,
    ];

    #[test]
    fn every_strategy_matches_reference_on_count() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            for q in 0..25 {
                let lo = (q * 41) % 900;
                let pred = RangePredicate::between(lo, lo + 75);
                let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Count);
                let expected = execute_reference(&data, pred, AggKind::Count);
                assert_eq!(ans.count, expected.count, "{} q{}", strat.label(), q);
            }
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_sum() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(100, 300);
            let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Sum);
            let expected = execute_reference(&data, pred, AggKind::Sum);
            assert_eq!(ans.count, expected.count, "{}", strat.label());
            let (a, b) = (ans.sum.unwrap(), expected.sum.unwrap());
            assert!((a - b).abs() < 1e-6, "{}: {a} vs {b}", strat.label());
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_min_max() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(250, 750);
            let (mn, _) = execute(&data, idx.as_mut(), pred, AggKind::Min);
            let (mx, _) = execute(&data, idx.as_mut(), pred, AggKind::Max);
            let emn = execute_reference(&data, pred, AggKind::Min);
            let emx = execute_reference(&data, pred, AggKind::Max);
            assert_eq!(mn.min, emn.min, "{}", strat.label());
            assert_eq!(mx.max, emx.max, "{}", strat.label());
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_positions() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(42, 77);
            let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Positions);
            let expected = execute_reference(&data, pred, AggKind::Positions);
            assert_eq!(
                ans.positions,
                expected.positions,
                "{} positions differ",
                strat.label()
            );
        }
    }

    #[test]
    fn parallel_answers_identical_to_sequential_for_every_strategy() {
        let data = data();
        for strat in Strategy::roster() {
            for agg in ALL_AGGS {
                for threads in [2, 3, 8] {
                    // Fresh index per run so both executors see the same
                    // adaptation history.
                    let mut seq_idx = strat.build_index(&data);
                    let mut par_idx = strat.build_index(&data);
                    for q in 0..8 {
                        let lo = (q * 173) % 800;
                        let pred = RangePredicate::between(lo, lo + 120);
                        let (seq, sm) = execute_with_policy(
                            &data,
                            seq_idx.as_mut(),
                            pred,
                            agg,
                            &ExecPolicy::sequential(),
                        );
                        let (par, pm) = execute_with_policy(
                            &data,
                            par_idx.as_mut(),
                            pred,
                            agg,
                            &eager(threads),
                        );
                        assert_eq!(seq, par, "{} {agg:?} t={threads} q{q}", strat.label());
                        assert_eq!(
                            (
                                sm.rows_scanned,
                                sm.rows_matched,
                                sm.zones_probed,
                                sm.zones_skipped
                            ),
                            (
                                pm.rows_scanned,
                                pm.rows_matched,
                                pm.zones_probed,
                                pm.zones_skipped
                            ),
                            "{} {agg:?} t={threads} q{q}: metrics diverged",
                            strat.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_sum_is_bit_identical() {
        // f64 addition is not associative, so this only holds because the
        // merge folds partial sums in unit order.
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64) * 0.1 + 0.7).collect();
        let mut idx1 = Strategy::StaticZonemap { zone_rows: 777 }.build_index(&data);
        let mut idx2 = Strategy::StaticZonemap { zone_rows: 777 }.build_index(&data);
        let pred = RangePredicate::between(10.0, 4900.0);
        let (seq, _) = execute(&data, idx1.as_mut(), pred, AggKind::Sum);
        let (par, _) = execute_with_policy(&data, idx2.as_mut(), pred, AggKind::Sum, &eager(8));
        assert_eq!(seq.sum.unwrap().to_bits(), par.sum.unwrap().to_bits());
    }

    #[test]
    fn threads_used_respects_profitability_floor() {
        let data = data();
        let mut idx = Strategy::FullScan.build_index(&data);
        let policy = ExecPolicy {
            threads: 8,
            min_rows_per_thread: 1 << 20,
        };
        let (_, m) = execute_with_policy(
            &data,
            idx.as_mut(),
            RangePredicate::all(),
            AggKind::Count,
            &policy,
        );
        assert_eq!(m.threads_used, 1, "5k rows cannot feed 8 threads");
        let (_, m2) = execute_with_policy(
            &data,
            idx.as_mut(),
            RangePredicate::all(),
            AggKind::Count,
            &eager(4),
        );
        assert_eq!(m2.threads_used, 4);
    }

    #[test]
    fn phase_breakdown_is_populated() {
        let data = data();
        let mut idx = Strategy::StaticZonemap { zone_rows: 500 }.build_index(&data);
        let (_, m) = execute(
            &data,
            idx.as_mut(),
            RangePredicate::between(0, 500),
            AggKind::Count,
        );
        assert!(m.scan_ns > 0);
        assert!(m.wall_ns >= m.prune_ns + m.scan_ns + m.observe_ns - m.wall_ns / 10);
        assert_eq!(m.threads_used, 1);
    }

    #[test]
    fn min_max_none_when_no_matches() {
        let data = data();
        let mut idx = Strategy::FullScan.build_index(&data);
        let pred = RangePredicate::between(5000, 6000);
        let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Min);
        assert_eq!(ans.count, 0);
        assert_eq!(ans.min, None);
    }

    #[test]
    fn metrics_reflect_skipping() {
        let sorted: Vec<i64> = (0..10_000).collect();
        let mut idx = Strategy::StaticZonemap { zone_rows: 500 }.build_index(&sorted);
        let pred = RangePredicate::between(100, 200);
        let (_, m) = execute(&sorted, idx.as_mut(), pred, AggKind::Count);
        assert_eq!(m.zones_probed, 20);
        assert!(m.zones_skipped >= 18);
        assert!(m.rows_scanned <= 1000);
        assert!(m.wall_ns > 0);
    }

    #[test]
    fn empty_data() {
        let data: Vec<i64> = Vec::new();
        let mut idx = Strategy::FullScan.build_index(&data);
        let (ans, m) = execute(&data, idx.as_mut(), RangePredicate::all(), AggKind::Count);
        assert_eq!(ans.count, 0);
        assert_eq!(m.rows_scanned, 0);
    }
}

//! The scan executor: runs one pruned query end-to-end.
//!
//! The executor is the glue of the prune/observe protocol: it asks the
//! index what to scan, runs the kernels over exactly those ranges, answers
//! the aggregate, and feeds the per-range observations (qualifying counts
//! and exact min/max, computed as scan by-products) back to the index.

use crate::metrics::QueryMetrics;
use ads_core::{PruneOutcome, RangeObservation, RangePredicate, ScanCoords, ScanObservation, SkippingIndex};
use ads_storage::scan;
use ads_storage::DataValue;
use std::time::Instant;

/// Which aggregate a scan query computes over the qualifying rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Number of qualifying rows.
    Count,
    /// Sum of qualifying values (as `f64`).
    Sum,
    /// Minimum qualifying value.
    Min,
    /// Maximum qualifying value.
    Max,
    /// The qualifying base-table row ids, ascending.
    Positions,
}

/// The result of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer<T: DataValue> {
    /// Number of qualifying rows (computed for every aggregate kind).
    pub count: u64,
    /// Sum of qualifying values; `Some` only for [`AggKind::Sum`].
    pub sum: Option<f64>,
    /// Minimum qualifying value; `Some` for [`AggKind::Min`] with matches.
    pub min: Option<T>,
    /// Maximum qualifying value; `Some` for [`AggKind::Max`] with matches.
    pub max: Option<T>,
    /// Qualifying base row ids; `Some` only for [`AggKind::Positions`].
    pub positions: Option<Vec<u32>>,
}

impl<T: DataValue> Default for QueryAnswer<T> {
    fn default() -> Self {
        QueryAnswer {
            count: 0,
            sum: None,
            min: None,
            max: None,
            positions: None,
        }
    }
}

/// Executes `pred` with aggregate `agg` over `data` using `index`.
///
/// Returns the answer plus per-query metrics. The index's adaptation (if
/// any) happens inside this call, and its cost is included in `wall_ns` —
/// adaptive structures pay their reorganisation on the query path, exactly
/// as the paper frames it.
pub fn execute<T: DataValue>(
    data: &[T],
    index: &mut dyn SkippingIndex<T>,
    pred: RangePredicate<T>,
    agg: AggKind,
) -> (QueryAnswer<T>, QueryMetrics) {
    let t0 = Instant::now();
    let events_before = index.adapt_events();
    let outcome = index.prune(&pred);

    let coords = index.scan_coords();
    let mut answer = QueryAnswer::default();
    let mut observations: Vec<RangeObservation<T>> = Vec::with_capacity(outcome.units().len());
    let mut rows_scanned = 0usize;

    {
        let target: &[T] = match coords {
            ScanCoords::Base => data,
            ScanCoords::View => index.view().expect("view-coordinate index must expose a view"),
        };
        match agg {
            AggKind::Count => {
                answer.count = outcome.rows_full_match() as u64;
                for (i, unit) in outcome.units().iter().enumerate() {
                    let slice = &target[unit.start..unit.end];
                    let obs = if let Some(req) = outcome.mask_request(i) {
                        // The index asked for a value mask over this unit;
                        // collect it in the same pass.
                        let (q, min, max, mask) = scan::count_in_range_with_minmax_and_mask(
                            slice, pred.lo, pred.hi, req.lo_f, req.hi_f,
                        );
                        let mut o = RangeObservation::new(*unit, q, min, max);
                        o.mask = Some(mask);
                        o
                    } else {
                        let (q, min, max) =
                            scan::count_in_range_with_minmax(slice, pred.lo, pred.hi);
                        RangeObservation::new(*unit, q, min, max)
                    };
                    answer.count += obs.qualifying as u64;
                    rows_scanned += unit.len();
                    observations.push(obs);
                }
            }
            AggKind::Sum | AggKind::Min | AggKind::Max => {
                let mut sum = 0.0f64;
                let mut mmin = T::MAX_VALUE;
                let mut mmax = T::MIN_VALUE;
                // Full-match ranges: every row qualifies, no predicate
                // re-evaluation needed, but the values must still be read.
                for r in outcome.full_match.ranges() {
                    let slice = &target[r.start..r.end];
                    answer.count += slice.len() as u64;
                    rows_scanned += slice.len();
                    match agg {
                        AggKind::Sum => {
                            let (_, s) = scan::sum_in_range(slice, T::MIN_VALUE, T::MAX_VALUE);
                            sum += s;
                        }
                        _ => {
                            if let Some((lo, hi)) = scan::min_max(slice) {
                                mmin = mmin.min_total(lo);
                                mmax = mmax.max_total(hi);
                            }
                        }
                    }
                }
                for unit in outcome.units() {
                    let a = scan::aggregate_in_range(&target[unit.start..unit.end], pred.lo, pred.hi);
                    answer.count += a.count as u64;
                    sum += a.sum;
                    mmin = mmin.min_total(a.match_min);
                    mmax = mmax.max_total(a.match_max);
                    rows_scanned += unit.len();
                    observations.push(RangeObservation::new(*unit, a.count, a.range_min, a.range_max));
                }
                match agg {
                    AggKind::Sum => answer.sum = Some(sum),
                    AggKind::Min => answer.min = (answer.count > 0).then_some(mmin),
                    AggKind::Max => answer.max = (answer.count > 0).then_some(mmax),
                    _ => unreachable!(),
                }
            }
            AggKind::Positions => {
                let mut positions: Vec<u32> = Vec::new();
                // Merge-walk full-match ranges and scan units by start so
                // base-coordinate output is already sorted.
                let fulls = outcome.full_match.ranges();
                let units = outcome.units();
                let (mut fi, mut ui) = (0usize, 0usize);
                while fi < fulls.len() || ui < units.len() {
                    let take_full = match (fulls.get(fi), units.get(ui)) {
                        (Some(f), Some(u)) => f.start < u.start,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    if take_full {
                        let f = fulls[fi];
                        positions.extend(f.start as u32..f.end as u32);
                        answer.count += f.len() as u64;
                        fi += 1;
                    } else {
                        let u = units[ui];
                        let (q, min, max) = scan::collect_in_range_with_minmax(
                            &target[u.start..u.end],
                            u.start,
                            pred.lo,
                            pred.hi,
                            &mut positions,
                        );
                        answer.count += q as u64;
                        rows_scanned += u.len();
                        observations.push(RangeObservation::new(u, q, min, max));
                        ui += 1;
                    }
                }
                answer.positions = Some(positions);
            }
        }
    }

    if let Some(positions) = answer.positions.as_mut() {
        if coords == ScanCoords::View {
            index.translate_positions(positions);
            positions.sort_unstable();
        }
    }

    index.observe(&ScanObservation {
        predicate: pred,
        ranges: observations,
    });

    let metrics = QueryMetrics {
        wall_ns: t0.elapsed().as_nanos() as u64,
        zones_probed: outcome.zones_probed,
        zones_skipped: outcome.zones_skipped,
        rows_scanned,
        rows_full_match: outcome.rows_full_match(),
        rows_matched: answer.count,
        adapt_events: index.adapt_events() - events_before,
    };
    (answer, metrics)
}

/// Reference implementation used by tests and the soundness harness:
/// answers the same query with a plain scan, no index involved.
pub fn execute_reference<T: DataValue>(
    data: &[T],
    pred: RangePredicate<T>,
    agg: AggKind,
) -> QueryAnswer<T> {
    let outcome = PruneOutcome::scan_all(data.len());
    let mut answer = QueryAnswer::default();
    match agg {
        AggKind::Count => {
            answer.count = scan::count_in_range(data, pred.lo, pred.hi) as u64;
        }
        AggKind::Sum => {
            let (c, s) = scan::sum_in_range(data, pred.lo, pred.hi);
            answer.count = c as u64;
            answer.sum = Some(s);
        }
        AggKind::Min | AggKind::Max => {
            let a = scan::aggregate_in_range(data, pred.lo, pred.hi);
            answer.count = a.count as u64;
            if a.count > 0 {
                match agg {
                    AggKind::Min => answer.min = Some(a.match_min),
                    AggKind::Max => answer.max = Some(a.match_max),
                    _ => unreachable!(),
                }
            }
        }
        AggKind::Positions => {
            let mut positions = Vec::new();
            for r in outcome.must_scan.ranges() {
                scan::collect_in_range(&data[r.start..r.end], r.start, pred.lo, pred.hi, &mut positions);
            }
            answer.count = positions.len() as u64;
            answer.positions = Some(positions);
        }
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn data() -> Vec<i64> {
        (0..5000).map(|i| (i * 2654435761i64) % 1000).collect()
    }

    #[test]
    fn every_strategy_matches_reference_on_count() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            for q in 0..25 {
                let lo = (q * 41) % 900;
                let pred = RangePredicate::between(lo, lo + 75);
                let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Count);
                let expected = execute_reference(&data, pred, AggKind::Count);
                assert_eq!(ans.count, expected.count, "{} q{}", strat.label(), q);
            }
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_sum() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(100, 300);
            let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Sum);
            let expected = execute_reference(&data, pred, AggKind::Sum);
            assert_eq!(ans.count, expected.count, "{}", strat.label());
            let (a, b) = (ans.sum.unwrap(), expected.sum.unwrap());
            assert!((a - b).abs() < 1e-6, "{}: {a} vs {b}", strat.label());
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_min_max() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(250, 750);
            let (mn, _) = execute(&data, idx.as_mut(), pred, AggKind::Min);
            let (mx, _) = execute(&data, idx.as_mut(), pred, AggKind::Max);
            let emn = execute_reference(&data, pred, AggKind::Min);
            let emx = execute_reference(&data, pred, AggKind::Max);
            assert_eq!(mn.min, emn.min, "{}", strat.label());
            assert_eq!(mx.max, emx.max, "{}", strat.label());
        }
    }

    #[test]
    fn every_strategy_matches_reference_on_positions() {
        let data = data();
        for strat in Strategy::roster() {
            let mut idx = strat.build_index(&data);
            let pred = RangePredicate::between(42, 77);
            let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Positions);
            let expected = execute_reference(&data, pred, AggKind::Positions);
            assert_eq!(
                ans.positions, expected.positions,
                "{} positions differ",
                strat.label()
            );
        }
    }

    #[test]
    fn min_max_none_when_no_matches() {
        let data = data();
        let mut idx = Strategy::FullScan.build_index(&data);
        let pred = RangePredicate::between(5000, 6000);
        let (ans, _) = execute(&data, idx.as_mut(), pred, AggKind::Min);
        assert_eq!(ans.count, 0);
        assert_eq!(ans.min, None);
    }

    #[test]
    fn metrics_reflect_skipping() {
        let sorted: Vec<i64> = (0..10_000).collect();
        let mut idx = Strategy::StaticZonemap { zone_rows: 500 }.build_index(&sorted);
        let pred = RangePredicate::between(100, 200);
        let (_, m) = execute(&sorted, idx.as_mut(), pred, AggKind::Count);
        assert_eq!(m.zones_probed, 20);
        assert!(m.zones_skipped >= 18);
        assert!(m.rows_scanned <= 1000);
        assert!(m.wall_ns > 0);
    }

    #[test]
    fn empty_data() {
        let data: Vec<i64> = Vec::new();
        let mut idx = Strategy::FullScan.build_index(&data);
        let (ans, m) = execute(&data, idx.as_mut(), RangePredicate::all(), AggKind::Count);
        assert_eq!(ans.count, 0);
        assert_eq!(m.rows_scanned, 0);
    }
}

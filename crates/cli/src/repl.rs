//! The demo shell's command interpreter, separated from stdin handling so
//! every command is unit-testable.

use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap};
use ads_core::RangePredicate;
use ads_engine::{
    AggKind, AnyPredicate, ColumnSession, ExecPolicy, PlanMode, Strategy, TableSession,
};
use ads_server::{AdaptationMode, QueryService, ServerConfig};
use ads_storage::{Column, Table};
use ads_workloads::{DataSpec, QuerySpec};
use std::fmt::Write as _;

/// Interpreter state: one loaded column, one strategy, one session.
pub struct Repl {
    session: Option<ColumnSession<i64>>,
    /// Two-column companion session for `explain`, built lazily from the
    /// loaded data and dropped whenever data or strategy changes.
    table_session: Option<TableSession>,
    data_label: String,
    strategy: Strategy,
    domain: i64,
    seed: u64,
    policy: ExecPolicy,
}

impl Default for Repl {
    fn default() -> Self {
        Repl {
            session: None,
            table_session: None,
            data_label: String::new(),
            strategy: Strategy::Adaptive(AdaptiveConfig::default()),
            domain: 1_000_000,
            seed: 42,
            policy: ExecPolicy::default(),
        }
    }
}

const HELP: &str = "\
commands:
  load <dist> <rows>         load a column: sorted | semi | clustered | uniform |
                             zipf | sawtooth | mixed
  strategy <name> [param]    fullscan | static [zone_rows] | adaptive | reorg |
                             tiers | lazy | imprints | cracking | oracle |
                             activated-static [zone_rows]
  count <lo> <hi>            COUNT rows with lo <= v <= hi
  sum <lo> <hi>              SUM of qualifying values
  workload <kind> <n> <sel%> replay n queries: uniform | hotspot | shift | sweep
  explain <lo_a> <hi_a> <lo_b> <hi_b> [planned|fixed|reversed|fallback]
                             run a two-column conjunction (a = loaded data,
                             b = clustered companion) and show the probe plan
  zones                      show adaptive zonemap structure (adaptive strategy only)
  trace                      recent adaptation events (adaptive strategy only)
  stats                      session totals (with phase breakdown)
  threads <n>                scan-phase worker threads (1 = sequential)
  append <rows>              append a fresh batch to the column
  compare <n> <sel%>         replay a workload across all strategies
  serve <dist> <rows> <readers> <n> [inline|async|frozen]
                             stress the concurrent query service: <readers>
                             closed-loop clients x <n> queries each
  help                       this text
  quit                       exit";

impl Repl {
    /// Creates a fresh interpreter.
    pub fn new() -> Self {
        Repl::default()
    }

    fn parse_dist(name: &str) -> Option<DataSpec> {
        Some(match name {
            "sorted" => DataSpec::Sorted,
            "semi" | "semi-sorted" => DataSpec::AlmostSorted { noise: 0.05 },
            "clustered" => DataSpec::Clustered { clusters: 64 },
            "uniform" | "random" => DataSpec::Uniform,
            "zipf" => DataSpec::Zipf { theta: 0.99 },
            "sawtooth" => DataSpec::Sawtooth { periods: 32 },
            "mixed" => DataSpec::MixedRegions,
            _ => return None,
        })
    }

    fn parse_strategy(words: &[&str]) -> Option<Strategy> {
        let zone_rows = words.get(1).and_then(|w| w.parse().ok()).unwrap_or(4096);
        Some(match words[0] {
            "fullscan" | "none" => Strategy::FullScan,
            "static" => Strategy::StaticZonemap { zone_rows },
            "adaptive" => Strategy::Adaptive(AdaptiveConfig::default()),
            "reorg" => Strategy::Adaptive(AdaptiveConfig::with_reorg()),
            "tiers" => Strategy::Adaptive(AdaptiveConfig::with_tiers()),
            "lazy" => Strategy::Adaptive(AdaptiveConfig::lazy_only()),
            "imprints" => Strategy::Imprints {
                values_per_line: 8,
                bins: 64,
            },
            "cracking" => Strategy::Cracking,
            "oracle" | "sorted" => Strategy::SortedOracle,
            "activated-static" => Strategy::StaticZonemap { zone_rows }.activated(),
            _ => return None,
        })
    }

    fn session(&mut self) -> Result<&mut ColumnSession<i64>, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "no column loaded — try: load mixed 1000000".to_string())
    }

    fn rebuild_session(&mut self, data: Vec<i64>, label: String) {
        self.data_label = label;
        self.table_session = None;
        self.session = Some(
            ColumnSession::new(data, &self.strategy)
                .record_history(true)
                .with_exec_policy(self.policy),
        );
    }

    /// The lazily-built companion table session for `explain`: column `a`
    /// is the loaded data, column `b` a clustered companion of equal
    /// length, both indexed under the current strategy.
    fn table_session(&mut self) -> Result<&mut TableSession, String> {
        if self.table_session.is_none() {
            let data = self.session()?.data().to_vec();
            let b = ads_workloads::data::clustered(data.len(), 64, 0.02, self.domain, self.seed);
            let mut t = Table::new("repl");
            t.add_column("a", Column::from_values(data))
                .map_err(|e| e.to_string())?;
            t.add_column("b", Column::from_values(b))
                .map_err(|e| e.to_string())?;
            let ts = TableSession::new(t, &self.strategy, &["a", "b"])
                .map_err(|e| format!("explain: {e}"))?;
            self.table_session = Some(ts);
        }
        // invariant: the branch above just filled the option.
        Ok(self.table_session.as_mut().expect("just built"))
    }

    fn zones_strip(&self) -> Option<String> {
        let session = self.session.as_ref()?;
        let zm = session
            .index()
            .as_any()
            .downcast_ref::<AdaptiveZonemap<i64>>()?;
        const WIDTH: usize = 72;
        let len = session.len().max(1);
        let mut chars = vec!['.'; WIDTH];
        for (range, label, _) in zm.zone_snapshot() {
            let a = range.start * WIDTH / len;
            let b = ((range.end * WIDTH).div_ceil(len)).min(WIDTH);
            let c = match label {
                "unbuilt" => '.',
                "built" => '#',
                "built~" => '~',
                _ => 'x',
            };
            for slot in &mut chars[a..b] {
                *slot = c;
            }
        }
        let (u, b, d) = zm.state_counts();
        Some(format!(
            "[{}]\nzones: {} total — {u} unbuilt, {b} built, {d} dead   (. unbuilt  # built  ~ inherited  x dead)",
            chars.into_iter().collect::<String>(),
            zm.num_zones()
        ))
    }

    /// Executes one command line, returning the text to print.
    pub fn handle(&mut self, line: &str) -> Result<String, String> {
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some(&cmd) = words.first() else {
            return Ok(String::new());
        };
        match cmd {
            "help" | "?" => Ok(HELP.to_string()),
            "load" => {
                let (Some(dist), Some(rows)) = (
                    words.get(1).and_then(|w| Self::parse_dist(w)),
                    words.get(2).and_then(|w| w.parse::<usize>().ok()),
                ) else {
                    return Err("usage: load <dist> <rows>".into());
                };
                let data = dist.generate(rows, self.domain, self.seed);
                self.rebuild_session(data, dist.label());
                // invariant: rebuild_session always sets self.session.
                let session = self.session.as_ref().expect("just built");
                Ok(format!(
                    "loaded {} rows of {} data; index: {} (built in {:.2}ms)",
                    rows,
                    self.data_label,
                    session.label(),
                    session.totals().build_ns as f64 / 1e6
                ))
            }
            "strategy" => {
                let Some(strategy) = words.get(1).and_then(|_| Self::parse_strategy(&words[1..]))
                else {
                    return Err("usage: strategy <fullscan|static|adaptive|reorg|tiers|lazy|imprints|cracking|oracle|activated-static> [zone_rows]".into());
                };
                self.strategy = strategy;
                if let Some(session) = self.session.take() {
                    // Rebuild over the same data.
                    let data = session.data().to_vec();
                    let label = self.data_label.clone();
                    self.rebuild_session(data, label);
                }
                Ok(format!("strategy set to {}", self.strategy.label()))
            }
            "count" | "sum" => {
                let (Some(lo), Some(hi)) = (
                    words.get(1).and_then(|w| w.parse::<i64>().ok()),
                    words.get(2).and_then(|w| w.parse::<i64>().ok()),
                ) else {
                    return Err(format!("usage: {cmd} <lo> <hi>"));
                };
                if lo > hi {
                    return Err("lo must be <= hi".into());
                }
                let agg = if cmd == "count" {
                    AggKind::Count
                } else {
                    AggKind::Sum
                };
                let session = self.session()?;
                let (answer, m) = session.query(RangePredicate::between(lo, hi), agg);
                let mut out = String::new();
                match agg {
                    AggKind::Count => {
                        let _ = write!(out, "count = {}", answer.count);
                    }
                    _ => {
                        let _ = write!(
                            out,
                            "sum = {:.0} over {} rows",
                            answer.sum.unwrap_or(0.0),
                            answer.count
                        );
                    }
                }
                let _ = write!(
                    out,
                    "   [{:.3}ms, scanned {} rows, probed {} zones, skipped {}]",
                    m.wall_ns as f64 / 1e6,
                    m.rows_scanned,
                    m.zones_probed,
                    m.zones_skipped
                );
                Ok(out)
            }
            "workload" => {
                let (Some(kind), Some(n), Some(sel)) = (
                    words.get(1).copied(),
                    words.get(2).and_then(|w| w.parse::<usize>().ok()),
                    words.get(3).and_then(|w| w.parse::<f64>().ok()),
                ) else {
                    return Err("usage: workload <uniform|hotspot|shift|sweep> <n> <sel%>".into());
                };
                let selectivity = sel / 100.0;
                let spec = match kind {
                    "uniform" => QuerySpec::UniformRandom { selectivity },
                    "hotspot" => QuerySpec::Hotspot {
                        selectivity,
                        center: 0.5,
                    },
                    "shift" => QuerySpec::ShiftingHotspot {
                        selectivity,
                        phases: 3,
                    },
                    "sweep" => QuerySpec::Sweep { selectivity },
                    _ => return Err("unknown workload kind".into()),
                };
                let queries = spec.generate(n, self.domain, self.seed ^ 0x77);
                let session = self.session()?;
                let start = session.history().len();
                let mut matched = 0u64;
                for q in &queries {
                    matched += session.count(RangePredicate::between(q.lo, q.hi));
                }
                let history = &session.history()[start..];
                let first = history.first().map_or(0, |m| m.wall_ns);
                let last10: u64 = history
                    .iter()
                    .rev()
                    .take(10)
                    .map(|m| m.wall_ns)
                    .sum::<u64>()
                    / history.len().clamp(1, 10) as u64;
                let total: u64 = history.iter().map(|m| m.wall_ns).sum();
                Ok(format!(
                    "{} queries ({}), {} total matches\n  total {:.1}ms | first query {:.3}ms | mean of last 10 {:.3}ms",
                    n,
                    spec.label(),
                    matched,
                    total as f64 / 1e6,
                    first as f64 / 1e6,
                    last10 as f64 / 1e6
                ))
            }
            "explain" => {
                let parsed: Vec<i64> = words
                    .iter()
                    .skip(1)
                    .take(4)
                    .filter_map(|w| w.parse().ok())
                    .collect();
                let [lo_a, hi_a, lo_b, hi_b] = parsed[..] else {
                    return Err(
                        "usage: explain <lo_a> <hi_a> <lo_b> <hi_b> [planned|fixed|reversed|fallback]"
                            .into(),
                    );
                };
                if lo_a > hi_a || lo_b > hi_b {
                    return Err("lo must be <= hi".into());
                }
                let mode = match words.get(5).copied().unwrap_or("planned") {
                    "planned" => PlanMode::Planned,
                    "fixed" => PlanMode::FixedOrder,
                    "reversed" => PlanMode::Reversed,
                    "fallback" => PlanMode::ForcedFallback,
                    other => return Err(format!("unknown plan mode: {other}")),
                };
                let ts = self.table_session()?;
                ts.set_plan_mode(mode.clone());
                let conjuncts = [
                    ("a", AnyPredicate::I64(RangePredicate::between(lo_a, hi_a))),
                    ("b", AnyPredicate::I64(RangePredicate::between(lo_b, hi_b))),
                ];
                let (count, m) = ts
                    .count_conjunction(&conjuncts)
                    .map_err(|e| e.to_string())?;
                let trace = ts.last_plan().cloned().unwrap_or_default();
                let mut out = format!(
                    "plan ({mode:?}): {} conjunct(s), {} probed",
                    trace.steps.len(),
                    trace.conjuncts_probed()
                );
                for (i, s) in trace.steps.iter().enumerate() {
                    let est = s
                        .est_skip_fraction
                        .map_or("  --".to_string(), |e| format!("{e:.2}"));
                    if s.probed {
                        let _ = write!(
                            out,
                            "\n  {}. {}  probed   est skip {est} | actual {:.2} | zones {} probed / {} skipped | alive {} -> {}",
                            i + 1,
                            s.column,
                            s.actual_skip_fraction(),
                            s.zones_probed,
                            s.zones_skipped,
                            s.alive_before,
                            s.alive_after
                        );
                    } else {
                        let _ = write!(
                            out,
                            "\n  {}. {}  skipped  est skip {est} | benefit {:.0} tuples | alive {}",
                            i + 1,
                            s.column,
                            s.est_benefit,
                            s.alive_before
                        );
                    }
                }
                if let Some(reason) = trace.fallback {
                    let _ = write!(out, "\n  fallback: {reason:?} — scan-and-filter only");
                }
                let _ = write!(
                    out,
                    "\ncount = {count}   [{:.3}ms, scanned {} rows, {} full-match]",
                    m.wall_ns as f64 / 1e6,
                    m.rows_scanned,
                    m.rows_full_match
                );
                Ok(out)
            }
            "zones" => {
                self.session()?;
                self.zones_strip()
                    .ok_or_else(|| "zones view needs the adaptive strategy".into())
            }
            "trace" => {
                let session = self.session()?;
                let Some(zm) = session
                    .index()
                    .as_any()
                    .downcast_ref::<AdaptiveZonemap<i64>>()
                else {
                    return Err("trace needs the adaptive strategy".into());
                };
                let mut out = format!("totals: {}\nrecent:", zm.trace().totals());
                for (seq, event) in zm.trace().recent().iter().rev().take(10) {
                    let _ = write!(out, "\n  q{seq:>5}: {} {:?}", event.kind(), event);
                }
                Ok(out)
            }
            "stats" => {
                let data_label = self.data_label.clone();
                let session = self.session()?;
                let t = session.totals();
                let (meta, copy) = session.index_bytes();
                let mut out = format!(
                    "column: {} rows of {}\nindex:  {} ({} metadata B, {} copied B)\nqueries: {} | total {:.1}ms | mean {:.3}ms | build {:.2}ms\nscanned {} rows | probed {} zones | skipped {} | adapt events {}\nphases: prune {:.2}ms | scan {:.2}ms | observe {:.2}ms | max threads {}",
                    session.len(),
                    data_label,
                    session.label(),
                    meta,
                    copy,
                    t.queries,
                    t.wall_ns as f64 / 1e6,
                    t.mean_latency_ns() / 1e6,
                    t.build_ns as f64 / 1e6,
                    t.rows_scanned,
                    t.zones_probed,
                    t.zones_skipped,
                    t.adapt_events,
                    t.prune_ns as f64 / 1e6,
                    t.scan_ns as f64 / 1e6,
                    t.observe_ns as f64 / 1e6,
                    t.max_threads_used
                );
                if let Some(zm) = session
                    .index()
                    .as_any()
                    .downcast_ref::<AdaptiveZonemap<i64>>()
                {
                    let r = zm.reorg_stats();
                    let _ = write!(
                        out,
                        "\nreorg:  promoted {} | demoted {} | reorganized now {} | moved {} B | {:.2}ms",
                        r.zones_promoted,
                        r.zones_demoted,
                        zm.zones_reorganized(),
                        r.bytes_moved,
                        r.reorg_ns as f64 / 1e6
                    );
                    let t = zm.tier_stats();
                    let _ = write!(
                        out,
                        "\ntiers:  built {} (bloom {} / imprint {}) | dropped {} | tiered now {} | skips {} | rows excluded {}",
                        t.tiers_built(),
                        t.blooms_built,
                        t.imprints_built,
                        t.tiers_dropped,
                        zm.zones_tiered(),
                        t.tier_skips,
                        t.tier_rows_excluded
                    );
                }
                Ok(out)
            }
            "threads" => {
                let Some(n) = words.get(1).and_then(|w| w.parse::<usize>().ok()) else {
                    return Err("usage: threads <n>".into());
                };
                self.policy = ExecPolicy::parallel(n.max(1));
                if let Some(session) = self.session.as_mut() {
                    session.set_exec_policy(self.policy);
                }
                Ok(format!(
                    "scan phase will use up to {} thread{} (small scans stay sequential)",
                    n.max(1),
                    if n.max(1) == 1 { "" } else { "s" }
                ))
            }
            "append" => {
                let Some(n) = words.get(1).and_then(|w| w.parse::<usize>().ok()) else {
                    return Err("usage: append <rows>".into());
                };
                let domain = self.domain;
                let seed = self.seed;
                self.table_session = None;
                let session = self.session()?;
                let fresh = ads_workloads::data::uniform(n, domain, seed ^ session.len() as u64);
                let ns = session.append(&fresh);
                Ok(format!(
                    "appended {n} rows (now {}), index maintenance {:.3}ms",
                    session.len(),
                    ns as f64 / 1e6
                ))
            }
            "compare" => {
                let (Some(n), Some(sel)) = (
                    words.get(1).and_then(|w| w.parse::<usize>().ok()),
                    words.get(2).and_then(|w| w.parse::<f64>().ok()),
                ) else {
                    return Err("usage: compare <n> <sel%>".into());
                };
                let data = self.session()?.data().to_vec();
                let queries = QuerySpec::UniformRandom {
                    selectivity: sel / 100.0,
                }
                .generate(n, self.domain, self.seed ^ 0x99);
                let mut out = format!(
                    "{:<30} {:>10} {:>12} {:>10}\n",
                    "strategy", "total ms", "mean µs", "checksum"
                );
                for strategy in Strategy::roster() {
                    let mut s = ColumnSession::new(data.clone(), &strategy);
                    let mut checksum = 0u64;
                    for q in &queries {
                        checksum =
                            checksum.wrapping_add(s.count(RangePredicate::between(q.lo, q.hi)));
                    }
                    let t = s.totals();
                    let _ = writeln!(
                        out,
                        "{:<30} {:>10.1} {:>12.1} {:>10}",
                        s.label(),
                        t.wall_ns as f64 / 1e6,
                        t.mean_latency_ns() / 1e3,
                        checksum
                    );
                }
                Ok(out.trim_end().to_string())
            }
            "serve" => {
                let (Some(spec), Some(rows), Some(readers), Some(per_client)) = (
                    words.get(1).and_then(|w| Self::parse_dist(w)),
                    words.get(2).and_then(|w| w.parse::<usize>().ok()),
                    words.get(3).and_then(|w| w.parse::<usize>().ok()),
                    words.get(4).and_then(|w| w.parse::<usize>().ok()),
                ) else {
                    return Err(
                        "usage: serve <dist> <rows> <readers> <n> [inline|async|frozen]".into(),
                    );
                };
                if readers == 0 || rows == 0 {
                    return Err("rows and readers must be >= 1".into());
                }
                let mode = match words.get(5).copied().unwrap_or("async") {
                    "inline" => AdaptationMode::Inline,
                    "async" => AdaptationMode::Async,
                    "frozen" => AdaptationMode::Frozen,
                    other => return Err(format!("unknown mode: {other}")),
                };
                let data = spec.generate(rows, self.domain, self.seed);
                let svc = QueryService::start(
                    data,
                    ServerConfig {
                        readers,
                        adaptation: mode,
                        ..ServerConfig::default()
                    },
                );
                let domain = self.domain;
                let seed = self.seed;
                let t0 = std::time::Instant::now();
                std::thread::scope(|scope| {
                    let svc = &svc;
                    for client in 0..readers {
                        scope.spawn(move || {
                            let preds = QuerySpec::UniformRandom { selectivity: 0.05 }.generate(
                                per_client,
                                domain,
                                seed ^ client as u64,
                            );
                            for q in preds {
                                let _ =
                                    svc.query(RangePredicate::between(q.lo, q.hi), AggKind::Count);
                            }
                        });
                    }
                });
                let elapsed = t0.elapsed();
                let stats = svc.shutdown();
                Ok(format!(
                    "{} mode, {readers} reader(s) x {per_client} queries in {:.1}ms\n\
                     throughput {:.1} kq/s | p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs\n{}",
                    mode.label(),
                    elapsed.as_secs_f64() * 1e3,
                    stats.throughput_qps(elapsed) / 1e3,
                    stats.latency.p50_ns() as f64 / 1e3,
                    stats.latency.p95_ns() as f64 / 1e3,
                    stats.latency.p99_ns() as f64 / 1e3,
                    stats.summary()
                ))
            }
            "quit" | "exit" => Ok("bye".to_string()),
            other => Err(format!("unknown command: {other} (try `help`)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded() -> Repl {
        let mut r = Repl::new();
        r.handle("load sorted 100000").expect("load works");
        r
    }

    #[test]
    fn help_lists_commands() {
        let mut r = Repl::new();
        let out = r.handle("help").expect("help works");
        for cmd in ["load", "strategy", "count", "zones", "compare"] {
            assert!(out.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn load_and_count() {
        let mut r = loaded();
        let out = r.handle("count 1000 1999").expect("count works");
        assert!(out.contains("count = 100"), "{out}");
    }

    #[test]
    fn query_before_load_errors() {
        let mut r = Repl::new();
        assert!(r.handle("count 0 10").is_err());
        assert!(r.handle("stats").is_err());
    }

    #[test]
    fn strategy_switch_rebuilds() {
        let mut r = loaded();
        let out = r.handle("strategy static 1024").expect("strategy works");
        assert!(out.contains("static-zonemap(1024)"));
        let out = r.handle("count 0 999").expect("count works");
        assert!(out.contains("count = 100"), "{out}");
    }

    #[test]
    fn zones_requires_adaptive() {
        let mut r = loaded();
        // Default strategy is adaptive: run a query to build zones.
        r.handle("count 0 9999").expect("count works");
        let strip = r.handle("zones").expect("zones works");
        assert!(strip.contains('#'), "{strip}");
        r.handle("strategy fullscan").expect("strategy works");
        assert!(r.handle("zones").is_err());
    }

    #[test]
    fn trace_shows_events() {
        let mut r = loaded();
        r.handle("count 0 9999").expect("count works");
        let out = r.handle("trace").expect("trace works");
        assert!(out.contains("built="), "{out}");
    }

    #[test]
    fn workload_runs_and_reports() {
        let mut r = loaded();
        let out = r.handle("workload uniform 20 1").expect("workload works");
        assert!(out.contains("20 queries"), "{out}");
    }

    #[test]
    fn sum_and_stats() {
        let mut r = loaded();
        let out = r.handle("sum 0 99").expect("sum works");
        assert!(out.contains("sum ="), "{out}");
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("queries: 1"), "{stats}");
    }

    #[test]
    fn reorg_strategy_promotes_and_stats_reports_it() {
        let mut r = Repl::new();
        r.handle("load clustered 100000").expect("load works");
        r.handle("strategy reorg").expect("strategy works");
        // A hot-zone workload: repeated ranges over one narrow value band
        // keep rescanning the same zones until they are promoted.
        let out = r.handle("workload hotspot 64 2").expect("workload works");
        assert!(out.contains("64 queries"), "{out}");
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("reorg:  promoted"), "{stats}");
        let promoted: u64 = stats
            .split("reorg:  promoted ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("stats must carry a promoted count");
        assert!(promoted > 0, "hot workload must promote zones: {stats}");
        // The plain adaptive strategy reports the counters too — at zero.
        r.handle("strategy adaptive").expect("strategy works");
        r.handle("count 0 9999").expect("count works");
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("reorg:  promoted 0"), "{stats}");
    }

    #[test]
    fn tiers_strategy_builds_and_stats_reports_it() {
        let mut r = Repl::new();
        r.handle("load clustered 100000").expect("load works");
        r.handle("strategy tiers").expect("strategy works");
        // A hot-zone workload keeps rescanning the same zones until their
        // scan volume amortises a tier build.
        let out = r.handle("workload hotspot 64 2").expect("workload works");
        assert!(out.contains("64 queries"), "{out}");
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("tiers:  built"), "{stats}");
        let built: u64 = stats
            .split("tiers:  built ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("stats must carry a tier build count");
        assert!(built > 0, "hot workload must earn tiers: {stats}");
        // The plain adaptive strategy reports the counters too — at zero.
        r.handle("strategy adaptive").expect("strategy works");
        r.handle("count 0 9999").expect("count works");
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("tiers:  built 0"), "{stats}");
    }

    #[test]
    fn threads_command_sets_policy_and_keeps_answers() {
        let mut r = loaded();
        let seq = r.handle("count 1000 1999").expect("count works");
        let out = r.handle("threads 4").expect("threads works");
        assert!(out.contains("4 threads"), "{out}");
        let par = r.handle("count 1000 1999").expect("count works");
        assert_eq!(
            seq.split("   [").next(),
            par.split("   [").next(),
            "answers must not depend on thread count"
        );
        let stats = r.handle("stats").expect("stats works");
        assert!(stats.contains("phases: prune"), "{stats}");
        assert!(r.handle("threads x").is_err());
    }

    #[test]
    fn append_grows_column() {
        let mut r = loaded();
        let out = r.handle("append 500").expect("append works");
        assert!(out.contains("now 100500"), "{out}");
    }

    #[test]
    fn compare_prints_roster() {
        let mut r = loaded();
        let out = r.handle("compare 5 1").expect("compare works");
        assert!(out.contains("cracking"));
        assert!(out.contains("sorted-oracle"));
    }

    #[test]
    fn serve_runs_a_stress_round_in_every_mode() {
        let mut r = Repl::new();
        for mode in ["inline", "async", "frozen"] {
            let out = r
                .handle(&format!("serve uniform 20000 2 10 {mode}"))
                .expect("serve works");
            assert!(out.contains("throughput"), "{out}");
            assert!(out.contains("queries=20"), "{out}");
        }
        assert!(r.handle("serve uniform 1000 2 10 warpmode").is_err());
        assert!(r.handle("serve nope 1000 2 10").is_err());
        assert!(r.handle("serve uniform 1000 0 10").is_err());
    }

    #[test]
    fn explain_shows_plan_and_count() {
        let mut r = loaded();
        let out = r.handle("explain 0 99999 0 99999").expect("explain works");
        assert!(out.contains("plan (Planned)"), "{out}");
        assert!(out.contains("count ="), "{out}");
        assert!(out.contains("1. "), "{out}");
        // Every mode runs and fallback announces itself.
        for mode in ["fixed", "reversed", "fallback"] {
            let out = r
                .handle(&format!("explain 0 9999 0 9999 {mode}"))
                .expect("explain mode works");
            assert!(out.contains("count ="), "{mode}: {out}");
            if mode == "fallback" {
                assert!(out.contains("scan-and-filter"), "{out}");
            }
        }
        assert!(r.handle("explain 0 1").is_err());
        assert!(r.handle("explain 5 0 0 9").is_err());
        assert!(r.handle("explain 0 9 0 9 warp").is_err());
    }

    #[test]
    fn explain_rejects_view_strategies_and_survives_rebuilds() {
        let mut r = loaded();
        r.handle("strategy cracking").expect("strategy works");
        assert!(r.handle("explain 0 9 0 9").is_err());
        r.handle("strategy static 1024").expect("strategy works");
        let out = r.handle("explain 0 99999 0 99999").expect("explain works");
        assert!(out.contains("count ="), "{out}");
        // Append invalidates the companion session; explain rebuilds it.
        r.handle("append 500").expect("append works");
        let out = r.handle("explain 0 99999 0 99999").expect("explain works");
        assert!(out.contains("count ="), "{out}");
    }

    #[test]
    fn bad_inputs_error_cleanly() {
        let mut r = loaded();
        assert!(r.handle("load nope 100").is_err());
        assert!(r.handle("count 10 0").is_err());
        assert!(r.handle("count x y").is_err());
        assert!(r.handle("strategy warpdrive").is_err());
        assert!(r.handle("frobnicate").is_err());
        assert_eq!(r.handle("").expect("empty ok"), "");
    }
}

//! `adskip` — interactive demo shell for adaptive data skipping.
//!
//! A terminal analogue of the SIGMOD 2016 demonstration: load a column,
//! pick a strategy, fire queries, and watch the zonemap adapt.
//!
//! ```text
//! cargo run -p ads-cli --release
//! adskip> load mixed 2000000
//! adskip> count 100000 110000
//! adskip> zones
//! adskip> compare 100 1
//! ```

#![forbid(unsafe_code)]

mod repl;

use repl::Repl;
use std::io::{BufRead, Write};

fn main() {
    println!("adaptive data skipping — demo shell (type `help`)");
    let mut repl = Repl::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("adskip> ");
        // invariant: stdout writes in an interactive shell only fail when
        // the terminal is gone, at which point exiting via panic is fine.
        stdout.flush().expect("stdout flush");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            println!("bye");
            break;
        }
        match repl.handle(line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(err) => println!("error: {err}"),
        }
    }
}

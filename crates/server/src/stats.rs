//! The service's observability surface.
//!
//! Counters are plain relaxed atomics bumped from the hot paths; latency
//! samples go into per-worker [`LatencyHistogram`] shards so readers never
//! contend on one histogram lock. [`StatsCollector::snapshot`] folds
//! everything into an immutable [`ServerStats`] for reporting.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use ads_engine::LatencyHistogram;
use std::time::Duration;

/// Shared counters + per-worker latency shards.
#[derive(Debug)]
pub struct StatsCollector {
    /// Queries answered (deadline misses excluded).
    queries: AtomicU64,
    /// Requests rejected at admission because the queue was full.
    shed: AtomicU64,
    /// Requests dropped because their deadline had passed at dequeue.
    deadline_missed: AtomicU64,
    /// Observations dropped because the feedback channel was full.
    feedback_dropped: AtomicU64,
    /// Observations successfully queued for the maintenance thread.
    feedback_queued: AtomicU64,
    /// Observations the maintenance thread has applied.
    feedback_applied: AtomicU64,
    /// Publication rounds that republished at least one shard (the
    /// initial snapshots are not counted).
    snapshots_published: AtomicU64,
    /// Individual shard lanes republished across all rounds.
    shards_republished: AtomicU64,
    /// Zonemap metadata bytes actually cloned for republished lanes.
    republish_bytes: AtomicU64,
    /// Counterfactual bytes a whole-map (every lane, every round)
    /// publication scheme would have cloned over the same rounds.
    whole_map_bytes: AtomicU64,
    /// Append batches applied.
    appends: AtomicU64,
    /// Individual mutations (deletes + updates) accepted into the
    /// maintenance channel, whether or not they end up taking effect.
    mutations_queued: AtomicU64,
    /// Individual mutations the maintenance thread has processed (every
    /// entry of every processed batch, no-ops included).
    mutations_processed: AtomicU64,
    /// Individual mutations that took effect (deleting a dead row or
    /// updating a dead row is a no-op and is not counted).
    mutations_applied: AtomicU64,
    /// Mutation batches processed.
    mutation_batches: AtomicU64,
    /// Shards densely repacked by compaction.
    compactions_run: AtomicU64,
    /// Tombstoned rows physically reclaimed by compaction.
    rows_reclaimed: AtomicU64,
    /// Gauge: current tombstoned fraction of the column, in parts per
    /// million (stored, not accumulated).
    tombstone_ppm: AtomicU64,
    /// Zones promoted to the reorganized layout by maintenance.
    zones_promoted: AtomicU64,
    /// Reorganized zones demoted back to the flat layout.
    zones_demoted: AtomicU64,
    /// Value+rowid bytes moved by reorganization (sorts and cracks).
    reorg_bytes_moved: AtomicU64,
    /// Wall time spent inside reorganization passes.
    reorg_ns: AtomicU64,
    /// Metadata tiers (bloom sketches + imprints) built by maintenance.
    tiers_built: AtomicU64,
    /// Metadata tiers dropped by the feedback policy.
    tiers_dropped: AtomicU64,
    /// Tier consultations that excluded rows the zone bounds could not.
    tier_skips: AtomicU64,
    /// One latency shard per worker, locked only by that worker (and by
    /// the occasional stats reader).
    latency_shards: Vec<Mutex<LatencyHistogram>>,
}

impl StatsCollector {
    /// A collector with one latency shard per worker.
    pub fn new(workers: usize) -> Self {
        StatsCollector {
            queries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            feedback_dropped: AtomicU64::new(0),
            feedback_queued: AtomicU64::new(0),
            feedback_applied: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            shards_republished: AtomicU64::new(0),
            republish_bytes: AtomicU64::new(0),
            whole_map_bytes: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            mutations_queued: AtomicU64::new(0),
            mutations_processed: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            mutation_batches: AtomicU64::new(0),
            compactions_run: AtomicU64::new(0),
            rows_reclaimed: AtomicU64::new(0),
            tombstone_ppm: AtomicU64::new(0),
            zones_promoted: AtomicU64::new(0),
            zones_demoted: AtomicU64::new(0),
            reorg_bytes_moved: AtomicU64::new(0),
            reorg_ns: AtomicU64::new(0),
            tiers_built: AtomicU64::new(0),
            tiers_dropped: AtomicU64::new(0),
            tier_skips: AtomicU64::new(0),
            latency_shards: (0..workers.max(1))
                .map(|_| Mutex::new(LatencyHistogram::new()))
                .collect(),
        }
    }

    pub(crate) fn record_query(&self, worker: usize, wall_ns: u64) {
        // ordering: Relaxed — monotone counter; RMW atomicity alone
        // guarantees no lost increment, and no other memory is
        // published through it (model-checked in tests/model.rs).
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.latency_shards[worker % self.latency_shards.len()]
            .lock()
            // invariant: LatencyHistogram::record never panics, so the
            // shard lock cannot be poisoned by its only writer.
            .expect("latency shard poisoned")
            .record(wall_ns);
    }

    pub(crate) fn record_shed(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_missed(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_feedback_dropped(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.feedback_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Public (not `pub(crate)`) so the model-check suite can drive the
    /// queued/applied race directly; harmless to external callers.
    pub fn record_feedback_queued(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.feedback_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Public for the model-check suite; see record_feedback_queued.
    pub fn record_feedback_applied(&self, n: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.feedback_applied.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_snapshot_published(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shards_republished(&self, n: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.shards_republished.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_republish_bytes(&self, bytes: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.republish_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_whole_map_bytes(&self, bytes: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.whole_map_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_append(&self) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_mutations_queued(&self, n: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.mutations_queued.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one processed mutation batch of `processed` entries, of
    /// which `applied` took effect.
    pub(crate) fn record_mutation_batch(&self, processed: u64, applied: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.mutation_batches.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.mutations_processed
            .fetch_add(processed, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.mutations_applied.fetch_add(applied, Ordering::Relaxed);
    }

    /// Records one shard compaction that reclaimed `reclaimed` rows.
    pub(crate) fn record_compaction(&self, reclaimed: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.compactions_run.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.rows_reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
    }

    /// Stores the current tombstone gauge (parts per million of rows).
    pub(crate) fn set_tombstone_ppm(&self, ppm: u64) {
        // ordering: Relaxed — last-writer-wins gauge read only by the
        // stats snapshot; no other memory is published through it.
        self.tombstone_ppm.store(ppm, Ordering::Relaxed);
    }

    /// Records one reorganization pass's deltas (no-op rounds pass zeros).
    pub(crate) fn record_reorg(&self, promoted: u64, demoted: u64, bytes_moved: u64, ns: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.zones_promoted.fetch_add(promoted, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.zones_demoted.fetch_add(demoted, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.reorg_bytes_moved
            .fetch_add(bytes_moved, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.reorg_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one tier maintenance pass's deltas plus the tier skips
    /// observed since the previous pass (no-op rounds pass zeros).
    pub(crate) fn record_tiers(&self, built: u64, dropped: u64, skips: u64) {
        // ordering: Relaxed — monotone counter; see record_query.
        self.tiers_built.fetch_add(built, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.tiers_dropped.fetch_add(dropped, Ordering::Relaxed);
        // ordering: Relaxed — monotone counter; see record_query.
        self.tier_skips.fetch_add(skips, Ordering::Relaxed);
    }

    /// Folds the counters and shards into one immutable report.
    /// `queue_depth` is sampled by the caller (the service knows its queue).
    pub fn snapshot(&self, queue_depth: usize) -> ServerStats {
        let mut latency = LatencyHistogram::new();
        for shard in &self.latency_shards {
            // invariant: see record_query — shard locks never poison.
            latency.merge(&shard.lock().expect("latency shard poisoned"));
        }
        // ordering: Relaxed — the two loads are not a consistent cut: the
        // maintenance thread may apply observations between them, so
        // `applied` can exceed the `queued` value read here. The lag is
        // therefore computed with saturating_sub below; it can read low
        // during a race but never underflows to a bogus huge value.
        let feedback_queued = self.feedback_queued.load(Ordering::Relaxed);
        // ordering: Relaxed — see above; saturating_sub absorbs the race.
        let feedback_applied = self.feedback_applied.load(Ordering::Relaxed);
        // ordering: Relaxed — same queued/applied race as feedback: the
        // pending gauge can read low mid-batch, never underflows.
        let mutations_queued = self.mutations_queued.load(Ordering::Relaxed);
        // ordering: Relaxed — see above.
        let mutations_processed = self.mutations_processed.load(Ordering::Relaxed);
        ServerStats {
            // ordering: Relaxed (this load and every one below) — each
            // counter is read independently for a monitoring report;
            // cross-counter skew is acceptable and documented on
            // ServerStats.
            queries: self.queries.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            shed: self.shed.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            feedback_dropped: self.feedback_dropped.load(Ordering::Relaxed),
            feedback_applied,
            adaptation_lag: feedback_queued.saturating_sub(feedback_applied),
            // ordering: Relaxed — see the struct-literal comment above.
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            shards_republished: self.shards_republished.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            republish_bytes: self.republish_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            whole_map_bytes: self.whole_map_bytes.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            appends: self.appends.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            mutation_batches: self.mutation_batches.load(Ordering::Relaxed),
            deltas_pending: mutations_queued.saturating_sub(mutations_processed),
            // ordering: Relaxed — see the struct-literal comment above.
            compactions_run: self.compactions_run.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            rows_reclaimed: self.rows_reclaimed.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            tombstone_ppm: self.tombstone_ppm.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            zones_promoted: self.zones_promoted.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            zones_demoted: self.zones_demoted.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            reorg_bytes_moved: self.reorg_bytes_moved.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            reorg_ns: self.reorg_ns.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            tiers_built: self.tiers_built.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            tiers_dropped: self.tiers_dropped.load(Ordering::Relaxed),
            // ordering: Relaxed — see the struct-literal comment above.
            tier_skips: self.tier_skips.load(Ordering::Relaxed),
            queue_depth,
            latency,
        }
    }
}

/// A point-in-time view of the service's health.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Queries answered.
    pub queries: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests whose deadline expired before a worker reached them.
    pub deadline_missed: u64,
    /// Observations dropped at the feedback channel (channel full).
    pub feedback_dropped: u64,
    /// Observations the maintenance thread has applied to the
    /// authoritative zonemap.
    pub feedback_applied: u64,
    /// Observations queued but not yet applied — how far adaptation lags
    /// behind execution right now.
    pub adaptation_lag: u64,
    /// Publication rounds that republished at least one shard since start
    /// (initial snapshots excluded).
    pub snapshots_published: u64,
    /// Individual shard lanes republished across all rounds; divide by
    /// `snapshots_published` for the average republish fan-out.
    pub shards_republished: u64,
    /// Zonemap metadata bytes actually cloned for republished lanes —
    /// the real publication cost of the epoch-diffed scheme.
    pub republish_bytes: u64,
    /// Bytes a whole-map publication scheme (every lane cloned every
    /// round) would have paid over the same rounds; `republish_bytes /
    /// whole_map_bytes` is the publication-cost saving of sharding.
    pub whole_map_bytes: u64,
    /// Append batches applied.
    pub appends: u64,
    /// Individual mutations (deletes + updates) that took effect;
    /// re-deleting or updating an already-dead row is a no-op and is
    /// excluded.
    pub mutations_applied: u64,
    /// Mutation batches the maintenance thread has processed.
    pub mutation_batches: u64,
    /// Mutations accepted into the channel but not yet processed — how
    /// far the delta pipeline lags behind submission right now.
    pub deltas_pending: u64,
    /// Shards densely repacked by compaction.
    pub compactions_run: u64,
    /// Tombstoned rows physically reclaimed by compaction.
    pub rows_reclaimed: u64,
    /// Currently tombstoned fraction of the column, in parts per million
    /// (a gauge sampled at the last maintenance round).
    pub tombstone_ppm: u64,
    /// Zones promoted to the reorganized (sorted/cracked) layout.
    pub zones_promoted: u64,
    /// Reorganized zones demoted back to the flat layout after going
    /// cold.
    pub zones_demoted: u64,
    /// Value+rowid bytes moved by reorganization sorts and cracks.
    pub reorg_bytes_moved: u64,
    /// Wall time spent inside reorganization passes.
    pub reorg_ns: u64,
    /// Metadata tiers (bloom sketches + imprints) built by maintenance.
    pub tiers_built: u64,
    /// Metadata tiers dropped by the feedback policy after a hitless
    /// consultation window.
    pub tiers_dropped: u64,
    /// Tier consultations that excluded rows the zone bounds could not.
    pub tier_skips: u64,
    /// Request-queue depth at sampling time.
    pub queue_depth: usize,
    /// Merged end-to-end latency distribution (submit-to-reply is up to
    /// the caller; this measures dequeue-to-answer wall time).
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Answered queries per second over `elapsed`.
    pub fn throughput_qps(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.queries as f64 / secs
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "queries={} shed={} deadline_missed={} feedback_applied={} lag={} \
             snapshots={} shards_republished={} republish_bytes={} appends={} \
             mutations_applied={} deltas_pending={} compactions={} \
             rows_reclaimed={} tombstone_ppm={} \
             reorg_promoted={} reorg_demoted={} reorg_bytes_moved={} \
             tiers_built={} tiers_dropped={} tier_skips={} \
             p50={}ns p95={}ns p99={}ns",
            self.queries,
            self.shed,
            self.deadline_missed,
            self.feedback_applied,
            self.adaptation_lag,
            self.snapshots_published,
            self.shards_republished,
            self.republish_bytes,
            self.appends,
            self.mutations_applied,
            self.deltas_pending,
            self.compactions_run,
            self.rows_reclaimed,
            self.tombstone_ppm,
            self.zones_promoted,
            self.zones_demoted,
            self.reorg_bytes_moved,
            self.tiers_built,
            self.tiers_dropped,
            self.tier_skips,
            self.latency.p50_ns(),
            self.latency.p95_ns(),
            self.latency.p99_ns(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_into_snapshot() {
        let c = StatsCollector::new(2);
        c.record_query(0, 1_000);
        c.record_query(1, 2_000);
        c.record_query(7, 3_000); // wraps onto shard 1
        c.record_shed();
        c.record_deadline_missed();
        c.record_feedback_queued();
        c.record_feedback_queued();
        c.record_feedback_applied(1);
        c.record_feedback_dropped();
        c.record_snapshot_published();
        c.record_shards_republished(3);
        c.record_republish_bytes(1_024);
        c.record_whole_map_bytes(4_096);
        c.record_append();
        c.record_mutations_queued(10);
        c.record_mutation_batch(7, 6);
        c.record_compaction(4);
        c.set_tombstone_ppm(2_500);
        c.record_reorg(2, 1, 512, 9_000);
        c.record_tiers(3, 1, 8);

        let s = c.snapshot(5);
        assert_eq!(s.queries, 3);
        assert_eq!(s.shed, 1);
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.feedback_dropped, 1);
        assert_eq!(s.feedback_applied, 1);
        assert_eq!(s.adaptation_lag, 1);
        assert_eq!(s.snapshots_published, 1);
        assert_eq!(s.shards_republished, 3);
        assert_eq!(s.republish_bytes, 1_024);
        assert_eq!(s.whole_map_bytes, 4_096);
        assert_eq!(s.appends, 1);
        assert_eq!(s.mutations_applied, 6);
        assert_eq!(s.mutation_batches, 1);
        assert_eq!(s.deltas_pending, 3, "10 queued - 7 processed");
        assert_eq!(s.compactions_run, 1);
        assert_eq!(s.rows_reclaimed, 4);
        assert_eq!(s.tombstone_ppm, 2_500);
        assert_eq!(s.zones_promoted, 2);
        assert_eq!(s.zones_demoted, 1);
        assert_eq!(s.reorg_bytes_moved, 512);
        assert_eq!(s.reorg_ns, 9_000);
        assert_eq!(s.tiers_built, 3);
        assert_eq!(s.tiers_dropped, 1);
        assert_eq!(s.tier_skips, 8);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.latency.count(), 3);
        assert!(s.latency.max_ns() >= 3_000 * 7 / 8);
    }

    #[test]
    fn throughput_is_queries_over_elapsed() {
        let c = StatsCollector::new(1);
        for _ in 0..100 {
            c.record_query(0, 10);
        }
        let s = c.snapshot(0);
        let qps = s.throughput_qps(Duration::from_secs(2));
        assert!((qps - 50.0).abs() < 1e-9);
        assert_eq!(s.throughput_qps(Duration::ZERO), 0.0);
        assert!(!s.summary().is_empty());
    }
}

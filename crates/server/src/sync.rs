//! Synchronization indirection: the single seam through which every
//! concurrency primitive in this crate is imported.
//!
//! Under the default build these are plain `std::sync` re-exports with
//! zero overhead. Under `--features check` they swap to the `ads-check`
//! model-checking shims, so the protocol suites in `tests/model.rs`
//! exhaustively explore interleavings and weak-memory visibility of the
//! *same* code paths production runs. The `atomic-import` lint rule
//! (ads-lint) keeps future code honest: nothing in this crate may
//! import `std::sync::atomic` directly.
//!
//! `std::sync::mpsc` channels and OS-thread spawning in `service.rs`
//! stay on std in both builds: the model suites exercise the snapshot,
//! queue, stats, and shutdown protocols directly, not the full service
//! event loop (see DESIGN.md "Correctness tooling" for the boundary).

#[cfg(feature = "check")]
pub use ads_check::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "check"))]
pub use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};

//! Snapshot isolation: immutable query state published RCU-style.
//!
//! A [`Snapshot`] pairs one immutable column version with the zonemap
//! state computed over exactly that version. Readers execute a whole query
//! against one snapshot, so they can never mix stale metadata with newer
//! data: a snapshot's zone bounds are sound for its own rows by
//! construction, no matter how many publications have happened since.
//! Staleness only costs skipping opportunity (an older zonemap may exclude
//! fewer zones), never correctness.
//!
//! Publication goes through a [`SnapshotCell`] — a single writer (the
//! maintenance thread) installs a fresh `Arc<Snapshot>` and bumps a
//! generation counter; readers keep a [`SnapshotCache`] and on every query
//! do one atomic generation load. When the generation is unchanged (the
//! overwhelmingly common case) the reader reuses its cached `Arc` and the
//! hot path acquires **no lock and touches no shared cache line in write
//! mode**. Only on a generation change does the reader take the slot mutex
//! for the few nanoseconds an `Arc` clone costs.

use ads_core::adaptive::AdaptiveZonemap;
use ads_storage::{DataValue, SharedColumn};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable, internally consistent unit of query state.
#[derive(Debug, Clone)]
pub struct Snapshot<T: DataValue> {
    /// The column version this snapshot answers against.
    pub data: SharedColumn<T>,
    /// Zonemap state frozen at publication; readers prune it via
    /// [`AdaptiveZonemap::prune_shared`].
    pub zonemap: AdaptiveZonemap<T>,
    /// Monotone publication number (0 = the initial snapshot).
    pub version: u64,
}

/// The publication point: one writer swaps snapshots in, many readers
/// fetch them with a generation-checked fast path.
#[derive(Debug)]
pub struct SnapshotCell<T: DataValue> {
    /// Bumped (release) after each publication; readers poll it (acquire).
    generation: AtomicU64,
    /// The current snapshot. Locked only by the publisher and by readers
    /// refreshing after a generation change.
    slot: Mutex<Arc<Snapshot<T>>>,
}

impl<T: DataValue> SnapshotCell<T> {
    /// Creates the cell holding `initial` as generation 0.
    pub fn new(initial: Snapshot<T>) -> Self {
        SnapshotCell {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// Installs a new snapshot. Readers observe it on their next
    /// [`SnapshotCache::refresh`]; existing readers keep their current
    /// snapshot alive through its `Arc` until they drop it.
    pub fn publish(&self, snapshot: Snapshot<T>) {
        let arc = Arc::new(snapshot);
        *self.slot.lock().expect("snapshot slot poisoned") = arc;
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current publication generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Fetches the current snapshot (cold path: takes the slot lock).
    /// Readers on the query path should use a [`SnapshotCache`] instead.
    pub fn load(&self) -> Arc<Snapshot<T>> {
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }

    /// A cache primed with the current snapshot.
    pub fn cache(&self) -> SnapshotCache<T> {
        SnapshotCache {
            generation: self.generation(),
            snapshot: self.load(),
        }
    }
}

/// A reader's thread-local handle to the latest snapshot.
#[derive(Debug)]
pub struct SnapshotCache<T: DataValue> {
    generation: u64,
    snapshot: Arc<Snapshot<T>>,
}

impl<T: DataValue> SnapshotCache<T> {
    /// Returns the latest snapshot, re-reading the cell only when the
    /// generation moved. The steady-state cost is a single atomic load.
    pub fn refresh(&mut self, cell: &SnapshotCell<T>) -> &Arc<Snapshot<T>> {
        // Read the generation before the slot: if a publication lands
        // between the two, we fetch the even-newer snapshot under an older
        // recorded generation and simply re-fetch next time — never a
        // stale-forever or torn view.
        let generation = cell.generation.load(Ordering::Acquire);
        if generation != self.generation {
            self.snapshot = cell.load();
            self.generation = generation;
        }
        &self.snapshot
    }

    /// The cached snapshot without checking for updates.
    pub fn current(&self) -> &Arc<Snapshot<T>> {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;

    fn snap(version: u64, rows: usize) -> Snapshot<i64> {
        Snapshot {
            data: SharedColumn::new((0..rows as i64).collect()),
            zonemap: AdaptiveZonemap::new(rows, AdaptiveConfig::default()),
            version,
        }
    }

    #[test]
    fn publish_advances_generation_and_readers_observe() {
        let cell = SnapshotCell::new(snap(0, 100));
        let mut cache = cell.cache();
        assert_eq!(cache.refresh(&cell).version, 0);
        assert_eq!(cell.generation(), 0);

        cell.publish(snap(1, 200));
        assert_eq!(cell.generation(), 1);
        let s = cache.refresh(&cell);
        assert_eq!(s.version, 1);
        assert_eq!(s.data.len(), 200);
    }

    #[test]
    fn unchanged_generation_reuses_the_cached_arc() {
        let cell = SnapshotCell::new(snap(0, 10));
        let mut cache = cell.cache();
        let a = Arc::as_ptr(cache.refresh(&cell));
        let b = Arc::as_ptr(cache.refresh(&cell));
        assert_eq!(a, b);
    }

    #[test]
    fn old_readers_keep_their_snapshot_alive() {
        let cell = SnapshotCell::new(snap(0, 50));
        let old = cell.load();
        cell.publish(snap(1, 60));
        // The old Arc still answers against its own consistent state.
        assert_eq!(old.data.len(), 50);
        assert_eq!(cell.load().data.len(), 60);
    }

    #[test]
    fn concurrent_readers_see_a_prefix_consistent_sequence() {
        let cell = Arc::new(SnapshotCell::new(snap(0, 8)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut cache = cell.cache();
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = cache.refresh(&cell).version;
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                });
            }
            for v in 1..=64 {
                cell.publish(snap(v, 8));
            }
        });
        assert_eq!(cell.load().version, 64);
    }
}

//! Snapshot isolation: immutable query state published RCU-style, one
//! lane per shard.
//!
//! A [`ShardSnapshot`] pairs one immutable *shard* column version with the
//! zonemap state computed over exactly that version. Readers execute a
//! whole query against one snapshot per shard, so they can never mix stale
//! metadata with newer data: a lane's zone bounds are sound for its own
//! rows by construction, no matter how many publications have happened
//! since — and because soundness is shard-local, a reader may even hold
//! *different* publication rounds across lanes and still answer exactly
//! (only the tail shard's data ever grows, so any mix of lanes is a
//! consistent column prefix). Staleness only costs skipping opportunity,
//! never correctness.
//!
//! Publication goes through one [`SnapshotCell`] per shard, grouped in a
//! [`ShardedCell`] — a single writer (the maintenance thread) installs a
//! fresh `Arc` into exactly the lanes whose zonemaps changed and bumps
//! each lane's generation counter; readers keep a [`ShardedCache`] and on
//! every query do one atomic generation load per lane. When a generation
//! is unchanged (the overwhelmingly common case) the reader reuses its
//! cached `Arc` and the hot path acquires **no lock and touches no shared
//! cache line in write mode**. Only a lane whose generation moved takes
//! that lane's slot mutex for the few nanoseconds an `Arc` clone costs —
//! republishing one shard never invalidates readers' caches for the
//! untouched shards.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use ads_core::adaptive::AdaptiveZonemap;
use ads_storage::{DataValue, DeleteVector, SharedColumn};

/// One shard's immutable, internally consistent unit of query state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot<T: DataValue> {
    /// The shard's column version this snapshot answers against.
    pub data: SharedColumn<T>,
    /// The shard's tombstones, frozen at publication together with the
    /// column version they describe and stamped with the mutation epoch
    /// of the batch that last changed them. Publishing data and deletes
    /// as one `Arc`'d unit is what makes mutation visibility untearable:
    /// a reader either sees a delete with its epoch or neither.
    pub delete: Arc<DeleteVector>,
    /// The shard lane's zonemap state frozen at publication, in
    /// shard-local row coordinates; readers prune it via
    /// [`AdaptiveZonemap::prune_shared`].
    pub zonemap: AdaptiveZonemap<T>,
    /// Global row id of the shard's first row. Appends route to the tail
    /// shard and never shift starts; compaction densely repacks a shard
    /// and therefore *does* shift every downstream start, republishing
    /// those lanes in the same maintenance round.
    pub start: usize,
    /// Monotone per-lane publication number (0 = the initial snapshot).
    pub version: u64,
}

/// The publication point for one payload: one writer swaps values in,
/// many readers fetch them with a generation-checked fast path.
///
/// Generic over the payload so the same cell publishes whole snapshots in
/// tests and [`ShardSnapshot`] lanes in the service.
#[derive(Debug)]
pub struct SnapshotCell<P> {
    /// Bumped (release) after each publication; readers poll it (acquire).
    generation: AtomicU64,
    /// The current value. Locked only by the publisher and by readers
    /// refreshing after a generation change.
    slot: Mutex<Arc<P>>,
}

impl<P> SnapshotCell<P> {
    /// Creates the cell holding `initial` as generation 0.
    pub fn new(initial: P) -> Self {
        SnapshotCell {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(initial)),
        }
    }

    /// Installs a new value. Readers observe it on their next
    /// [`SnapshotCache::refresh`]; existing readers keep their current
    /// value alive through its `Arc` until they drop it.
    pub fn publish(&self, value: P) {
        let arc = Arc::new(value);
        // invariant: single-writer publication; a poisoned slot means a
        // reader panicked mid-clone, which is already a torn process.
        *self.slot.lock().expect("snapshot slot poisoned") = arc;
        // ordering: Release — the bump publishes the slot store above;
        // a reader that Acquire-loads the new generation and then takes
        // the slot lock is guaranteed to see the new Arc.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current publication generation.
    pub fn generation(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bump in publish();
        // seeing generation g makes publication g's slot store visible.
        self.generation.load(Ordering::Acquire)
    }

    /// Fetches the current value (cold path: takes the slot lock).
    /// Readers on the query path should use a [`SnapshotCache`] instead.
    pub fn load(&self) -> Arc<P> {
        // invariant: see publish() — slot poisoning is unrecoverable.
        self.slot.lock().expect("snapshot slot poisoned").clone()
    }

    /// A cache primed with the current value.
    pub fn cache(&self) -> SnapshotCache<P> {
        SnapshotCache {
            generation: self.generation(),
            snapshot: self.load(),
        }
    }
}

/// A reader's thread-local handle to the latest published value of one
/// [`SnapshotCell`].
#[derive(Debug)]
pub struct SnapshotCache<P> {
    generation: u64,
    snapshot: Arc<P>,
}

impl<P> SnapshotCache<P> {
    /// Returns the latest value, re-reading the cell only when the
    /// generation moved. The steady-state cost is a single atomic load.
    pub fn refresh(&mut self, cell: &SnapshotCell<P>) -> &Arc<P> {
        // Read the generation before the slot: if a publication lands
        // between the two, we fetch the even-newer value under an older
        // recorded generation and simply re-fetch next time — never a
        // stale-forever or torn view.
        //
        // ordering: Acquire — pairs with the Release bump in publish();
        // model-checked in tests/model.rs (snapshot_cell_* suites).
        let generation = cell.generation.load(Ordering::Acquire);
        if generation != self.generation {
            self.snapshot = cell.load();
            self.generation = generation;
        }
        &self.snapshot
    }

    /// The cached value without checking for updates.
    pub fn current(&self) -> &Arc<P> {
        &self.snapshot
    }

    /// The generation the cached value was fetched under.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// One [`SnapshotCell`] per shard: the publication surface of the sharded
/// service. The maintenance thread publishes into exactly the lanes whose
/// zonemaps changed; each lane's generation advances independently.
#[derive(Debug)]
pub struct ShardedCell<T: DataValue> {
    lanes: Vec<SnapshotCell<ShardSnapshot<T>>>,
}

impl<T: DataValue> ShardedCell<T> {
    /// Creates the cell group from the initial per-shard snapshots.
    ///
    /// # Panics
    /// Panics when `initial` is empty.
    pub fn new(initial: Vec<ShardSnapshot<T>>) -> Self {
        assert!(!initial.is_empty(), "need at least one shard lane");
        ShardedCell {
            lanes: initial.into_iter().map(SnapshotCell::new).collect(),
        }
    }

    /// Number of shard lanes (fixed for the service's lifetime).
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `s`'s cell.
    pub fn lane(&self, s: usize) -> &SnapshotCell<ShardSnapshot<T>> {
        &self.lanes[s]
    }

    /// Publishes a fresh snapshot into lane `s` only; every other lane's
    /// generation — and therefore every reader's cached `Arc` for those
    /// lanes — is untouched.
    pub fn publish_shard(&self, s: usize, snapshot: ShardSnapshot<T>) {
        self.lanes[s].publish(snapshot);
    }

    /// Per-lane publication generations, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        self.lanes.iter().map(SnapshotCell::generation).collect()
    }

    /// Loads every lane's current snapshot (cold path: takes each slot
    /// lock once).
    pub fn load_all(&self) -> Vec<Arc<ShardSnapshot<T>>> {
        self.lanes.iter().map(SnapshotCell::load).collect()
    }

    /// A cache primed with every lane's current snapshot.
    pub fn cache(&self) -> ShardedCache<T> {
        ShardedCache {
            lanes: self.lanes.iter().map(SnapshotCell::cache).collect(),
        }
    }
}

/// A reader's per-lane snapshot caches; refreshing costs one atomic load
/// per lane in the steady state.
#[derive(Debug)]
pub struct ShardedCache<T: DataValue> {
    lanes: Vec<SnapshotCache<ShardSnapshot<T>>>,
}

impl<T: DataValue> ShardedCache<T> {
    /// Refreshes every lane that has a newer publication; lanes whose
    /// generation is unchanged keep their cached `Arc` untouched.
    pub fn refresh(&mut self, cell: &ShardedCell<T>) {
        for (cache, lane) in self.lanes.iter_mut().zip(&cell.lanes) {
            cache.refresh(lane);
        }
    }

    /// The cached lanes, in shard order.
    pub fn lanes(&self) -> &[SnapshotCache<ShardSnapshot<T>>] {
        &self.lanes
    }

    /// Cached per-lane generations, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        self.lanes.iter().map(SnapshotCache::generation).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_core::adaptive::AdaptiveConfig;

    fn shard_snap(start: usize, rows: usize, version: u64) -> ShardSnapshot<i64> {
        ShardSnapshot {
            data: SharedColumn::new((0..rows as i64).collect()),
            delete: Arc::new(DeleteVector::new(rows, version)),
            zonemap: AdaptiveZonemap::new(rows, AdaptiveConfig::default()),
            start,
            version,
        }
    }

    #[test]
    fn publish_advances_generation_and_readers_observe() {
        let cell = SnapshotCell::new(shard_snap(0, 100, 0));
        let mut cache = cell.cache();
        assert_eq!(cache.refresh(&cell).version, 0);
        assert_eq!(cell.generation(), 0);

        cell.publish(shard_snap(0, 200, 1));
        assert_eq!(cell.generation(), 1);
        let s = cache.refresh(&cell);
        assert_eq!(s.version, 1);
        assert_eq!(s.data.len(), 200);
    }

    #[test]
    fn unchanged_generation_reuses_the_cached_arc() {
        let cell = SnapshotCell::new(shard_snap(0, 10, 0));
        let mut cache = cell.cache();
        let a = Arc::as_ptr(cache.refresh(&cell));
        let b = Arc::as_ptr(cache.refresh(&cell));
        assert_eq!(a, b);
    }

    #[test]
    fn old_readers_keep_their_snapshot_alive() {
        let cell = SnapshotCell::new(shard_snap(0, 50, 0));
        let old = cell.load();
        cell.publish(shard_snap(0, 60, 1));
        // The old Arc still answers against its own consistent state.
        assert_eq!(old.data.len(), 50);
        assert_eq!(cell.load().data.len(), 60);
    }

    #[test]
    fn single_shard_publish_bumps_exactly_one_generation() {
        // The republish-cost bugfix, pinned: publishing shard 2 must bump
        // that lane's generation and no other, and a reader refreshing
        // afterwards must keep its cached Arc (same allocation, no slot
        // lock taken) for every untouched lane.
        let cell = ShardedCell::new((0..4).map(|s| shard_snap(s * 100, 100, 0)).collect());
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let before_gens = cache.generations();
        let before_ptrs: Vec<_> = cache
            .lanes()
            .iter()
            .map(|l| Arc::as_ptr(l.current()))
            .collect();
        assert_eq!(before_gens, vec![0, 0, 0, 0]);

        cell.publish_shard(2, shard_snap(200, 100, 1));
        assert_eq!(cell.generations(), vec![0, 0, 1, 0]);

        cache.refresh(&cell);
        let after_gens = cache.generations();
        for s in 0..4 {
            if s == 2 {
                assert_eq!(after_gens[s], before_gens[s] + 1);
                assert_ne!(Arc::as_ptr(cache.lanes()[s].current()), before_ptrs[s]);
                assert_eq!(cache.lanes()[s].current().version, 1);
            } else {
                assert_eq!(after_gens[s], before_gens[s], "lane {s} generation moved");
                assert_eq!(
                    Arc::as_ptr(cache.lanes()[s].current()),
                    before_ptrs[s],
                    "lane {s} cache invalidated by an unrelated publish"
                );
            }
        }
    }

    #[test]
    fn concurrent_readers_see_a_prefix_consistent_sequence() {
        let cell = Arc::new(SnapshotCell::new(shard_snap(0, 8, 0)));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut cache = cell.cache();
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = cache.refresh(&cell).version;
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                });
            }
            for v in 1..=64 {
                cell.publish(shard_snap(0, 8, v));
            }
        });
        assert_eq!(cell.load().version, 64);
    }
}

//! The concurrent query service.
//!
//! A [`QueryService`] owns one sharded column and answers range-aggregate
//! queries from a pool of reader threads. Its central idea is the
//! separation the paper's inline protocol fuses: **query execution**
//! (prune → scan → answer) runs against immutable published
//! [`ShardSnapshot`]s with no locks on the hot path, while **adaptation**
//! (the observe/maintain side of the protocol) is applied asynchronously
//! by a single maintenance thread that drains a bounded feedback channel,
//! replays each query's per-shard prune/observe pairs against the
//! authoritative zonemap lanes, and publishes fresh snapshots RCU-style —
//! into **only the shard lanes whose zonemaps actually changed**, as told
//! by each lane's mutation epoch.
//!
//! ## Correctness under staleness
//!
//! A reader may execute against shard snapshots that are several
//! publications old — and even a *mix* of publication rounds across
//! shards. This is safe by construction: each shard snapshot pairs a
//! zonemap lane with exactly the shard column version it describes, so its
//! prune decisions are sound for the rows it scans, and the shards
//! partition the column contiguously. Staleness costs skipping opportunity
//! (an older lane excludes fewer zones), never answers.
//!
//! ## Convergence with the inline protocol
//!
//! [`AdaptiveZonemap::apply_feedback`] replays the *mutable* prune for its
//! side effects and then feeds the reader's observations through
//! `observe` — the exact inline sequence, applied lane by lane. With a
//! single reader and a flush after every query, each authoritative lane
//! therefore steps through the same states as an inline executor replaying
//! the same query stream (tested in `tests/convergence.rs`). Under
//! concurrency the trajectory interleaves differently but every
//! intermediate state is one the inline protocol could have produced, and
//! answers stay exact.
//!
//! ## Publication policy
//!
//! After each maintenance batch, a lane is republished only when its
//! [`AdaptiveZonemap::mutation_epoch`] moved since its last publication
//! (zones built, split, merged, deactivated, revived, or appended to) —
//! per-query stat drift alone never forces a clone. A
//! [`QueryService::flush`] barrier republishes **all** lanes
//! unconditionally, so post-flush readers see the lanes' exact current
//! state, statistics included. Republish cost is therefore proportional to
//! the metadata that changed, not to the whole map
//! (`ServerStats::republish_bytes` vs `ServerStats::whole_map_bytes`).
//!
//! ## Mutations
//!
//! Deletes and updates are out-of-place: a [`Mutation`] batch rides the
//! maintenance channel like an append, the maintenance thread tombstones
//! rows in per-shard [`DeleteVector`]s (an update tombstones the old row
//! and re-appends the new value to the tail shard under a fresh rowid),
//! and the changed shards are republished with data + delete vector in one
//! immutable snapshot — a reader either sees a delete with its epoch or
//! neither, never torn state. The ack is sent only after publication, so a
//! confirmed mutation is visible to every subsequent query. Zone bounds
//! are left untouched by deletes (sound but conservative over tombstones);
//! **compaction** — on demand via [`QueryService::compact`] or automatic
//! past [`ServerConfig::compact_tombstone_ratio`] — densely repacks the
//! live rows, resets the shard's delete vector, and rebuilds its zonemap
//! lane with tight bounds. Compaction shifts downstream shard starts, so
//! those lanes republish in the same round; a reader holding older lanes
//! still answers exactly (each lane's values are masked by that lane's own
//! delete vector), though POSITIONS rowids are interpreted against the
//! snapshot they were computed from.
//!
//! ## Backpressure and shutdown
//!
//! Admission sheds when the bounded request queue is full ([`SubmitError::
//! Shed`]); requests carry optional deadlines checked at dequeue; feedback
//! beyond the channel bound is dropped (slower adaptation, never wrong
//! answers). [`QueryService::shutdown`] closes admission, lets the workers
//! drain every accepted request, then stops the maintenance thread after
//! it has applied all queued feedback.

use crate::config::{AdaptationMode, ServerConfig};
use crate::queue::{Bounded, PushError};
use crate::snapshot::{ShardSnapshot, ShardedCell};
use crate::stats::{ServerStats, StatsCollector};
use crate::sync::{Arc, Mutex};
use ads_core::adaptive::{
    AdaptiveConfig, AdaptiveZonemap, ReorgReport, ShardedZonemap, TierReport,
};
use ads_core::{RangeObservation, RangePredicate, ScanObservation, SkippingIndex};
use ads_engine::{
    execute_sharded_with_deletes, scan_sharded, AggKind, QueryAnswer, ShardScanInput,
};
use ads_storage::{DataValue, DeleteVector, RowRange, ShardedColumn, SharedColumn};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One query to answer.
#[derive(Debug, Clone, Copy)]
pub struct Request<T: DataValue> {
    /// The range predicate.
    pub predicate: RangePredicate<T>,
    /// The aggregate to compute.
    pub agg: AggKind,
    /// Drop the request unanswered if a worker has not reached it by this
    /// instant. `None` falls back to [`ServerConfig::default_deadline`].
    pub deadline: Option<Instant>,
}

impl<T: DataValue> Request<T> {
    /// A request with no explicit deadline.
    pub fn new(predicate: RangePredicate<T>, agg: AggKind) -> Self {
        Request {
            predicate,
            agg,
            deadline: None,
        }
    }
}

/// The service's reply to one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply<T: DataValue> {
    /// The query was executed.
    Answer {
        /// The aggregate answer.
        answer: QueryAnswer<T>,
        /// Sum of the per-shard snapshot versions the query ran against
        /// (monotone: later queries never see a smaller value).
        snapshot_version: u64,
        /// Dequeue-to-answer wall time.
        wall_ns: u64,
    },
    /// The request's deadline had passed when a worker picked it up; no
    /// scan was run.
    DeadlineMissed,
}

impl<T: DataValue> Reply<T> {
    /// The answer, or `None` for a missed deadline.
    pub fn answer(&self) -> Option<&QueryAnswer<T>> {
        match self {
            Reply::Answer { answer, .. } => Some(answer),
            Reply::DeadlineMissed => None,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug)]
pub enum SubmitError<T: DataValue> {
    /// The request queue is full; the request is handed back.
    Shed(Request<T>),
    /// The service is shutting down; the request is handed back.
    ShuttingDown(Request<T>),
}

/// One out-of-place mutation, addressed by global row id — the same
/// rowid space query POSITIONS answers use (`shard start + local row`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation<T: DataValue> {
    /// Tombstone the row: queries stop counting it as soon as the
    /// mutation is acknowledged; the bytes are physically reclaimed at
    /// the next compaction. Deleting an already-dead row is a no-op.
    Delete(usize),
    /// Tombstone the row and append the new value to the tail shard
    /// under a fresh rowid. Updating an already-deleted row is a no-op
    /// (the delete won, so no new version is written).
    Update(usize, T),
}

/// Why a mutation batch or compaction request could not be confirmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationError {
    /// The maintenance thread is gone — the service is tearing down or
    /// the thread died — so no acknowledgement will arrive. The caller
    /// must treat the batch as lost; it is reported, never silently
    /// dropped.
    Lost,
}

/// A pending reply; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket<T: DataValue> {
    rx: Receiver<Reply<T>>,
}

impl<T: DataValue> Ticket<T> {
    /// Blocks until the reply arrives. Every admitted request is replied
    /// to, including during shutdown (the queue drains before workers
    /// exit).
    pub fn wait(self) -> Reply<T> {
        // invariant: every admitted Job's reply sender is used before the
        // worker drops it — shutdown drains the queue before joining.
        self.rx.recv().expect("worker vanished without replying")
    }
}

/// One admitted unit of work.
struct Job<T: DataValue> {
    request: Request<T>,
    reply: SyncSender<Reply<T>>,
}

/// Messages into the maintenance thread. Feedback is shed-on-full
/// (`try_send`); control messages block until accepted, and their acks are
/// sent only after the resulting snapshots are published. FIFO ordering of
/// the one channel is what makes [`QueryService::flush`] a barrier: all
/// feedback enqueued before the flush is applied before its ack.
enum MaintMsg<T: DataValue> {
    /// One query's scan observations — one entry per shard, in shard
    /// order, shard-local coordinates.
    Feedback(Vec<ScanObservation<T>>),
    Append(Vec<T>, SyncSender<()>),
    /// One client's mutation batch; the ack carries how many mutations
    /// took effect and is sent only after the changed shards republish.
    Mutate(Vec<Mutation<T>>, SyncSender<usize>),
    /// Compact every tombstoned shard this round; the ack carries the
    /// rows reclaimed and is sent only after the repacked shards (and
    /// the start-shifted lanes downstream of them) republish.
    Compact(SyncSender<usize>),
    Flush(SyncSender<()>),
}

/// The mutable engine state of [`AdaptationMode::Inline`].
struct InlineState<T: DataValue> {
    data: ShardedColumn<T>,
    zonemap: ShardedZonemap<T>,
    /// One delete vector per shard, shard-local coordinates.
    deletes: Vec<DeleteVector>,
    /// Mutation batches applied; stamps the delete vectors' epochs.
    epoch: u64,
}

/// How queries reach data, per adaptation mode.
enum Engine<T: DataValue> {
    /// Inline: the seed architecture — one mutable state, one query at a
    /// time, adaptation applied within the query. (Boxed: the zonemap is
    /// two orders of magnitude bigger than the snapshot cells.)
    Inline(Box<Mutex<InlineState<T>>>),
    /// Async/Frozen: immutable per-shard snapshots published RCU-style.
    Snapshot(ShardedCell<T>),
}

/// State shared between the service handle and its threads.
struct Shared<T: DataValue> {
    config: ServerConfig,
    queue: Bounded<Job<T>>,
    stats: StatsCollector,
    engine: Engine<T>,
}

/// The service: a worker pool over a bounded request queue, plus (in
/// async/frozen modes) a maintenance thread owning the authoritative
/// column and zonemap lanes. See the module docs for the architecture.
pub struct QueryService<T: DataValue> {
    shared: Arc<Shared<T>>,
    maint_tx: Option<SyncSender<MaintMsg<T>>>,
    workers: Vec<JoinHandle<()>>,
    maint: Option<JoinHandle<()>>,
    started: Instant,
}

impl<T: DataValue> QueryService<T> {
    /// Loads `data` into [`ServerConfig::shards`] shards and starts the
    /// worker pool (and, in async/frozen modes, the maintenance thread).
    pub fn start(data: Vec<T>, config: ServerConfig) -> Self {
        config.validate();
        let column = ShardedColumn::new(data, config.shards);
        let zonemap = ShardedZonemap::for_column(&column, config.adaptive.clone());

        let inline = config.adaptation == AdaptationMode::Inline;
        // In snapshot modes the maintenance thread owns the authoritative
        // column + zonemap; the cells only ever hold published clones.
        let (engine, maint_state) = if inline {
            let deletes = (0..column.num_shards())
                .map(|s| DeleteVector::new(column.shard(s).len(), 0))
                .collect();
            let engine = Engine::Inline(Box::new(Mutex::new(InlineState {
                data: column,
                zonemap,
                deletes,
                epoch: 0,
            })));
            (engine, None)
        } else {
            let initial = (0..column.num_shards())
                .map(|s| ShardSnapshot {
                    data: column.shard(s).clone(),
                    delete: Arc::new(DeleteVector::new(column.shard(s).len(), 0)),
                    zonemap: zonemap.lane(s).clone(),
                    start: column.start(s),
                    version: 0,
                })
                .collect();
            let engine = Engine::Snapshot(ShardedCell::new(initial));
            (engine, Some((column, zonemap)))
        };

        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            stats: StatsCollector::new(config.readers),
            engine,
            config,
        });

        let (maint_tx, maint) = if let Some((column, zonemap)) = maint_state {
            let (tx, rx) = sync_channel::<MaintMsg<T>>(shared.config.feedback_capacity);
            let sh = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("ads-maint".into())
                .spawn(move || maintenance_loop(&sh, rx, column, zonemap))
                // invariant: thread spawn fails only on resource
                // exhaustion at startup; nothing to degrade to.
                .expect("spawn maintenance thread");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };

        let workers = (0..shared.config.readers)
            .map(|id| {
                let sh = Arc::clone(&shared);
                let tx = if shared.config.adaptation == AdaptationMode::Async {
                    maint_tx.clone()
                } else {
                    None
                };
                std::thread::Builder::new()
                    .name(format!("ads-worker-{id}"))
                    .spawn(move || worker_loop(&sh, id, tx))
                    // invariant: see the maintenance spawn above.
                    .expect("spawn worker thread")
            })
            .collect();

        QueryService {
            shared,
            maint_tx,
            workers,
            maint,
            started: Instant::now(),
        }
    }

    /// Admits a request, or sheds it without blocking.
    pub fn submit(&self, mut request: Request<T>) -> Result<Ticket<T>, SubmitError<T>> {
        if request.deadline.is_none() {
            request.deadline = self
                .shared
                .config
                .default_deadline
                .map(|d| Instant::now() + d);
        }
        let (reply_tx, reply_rx) = sync_channel(1);
        match self.shared.queue.try_push(Job {
            request,
            reply: reply_tx,
        }) {
            Ok(()) => Ok(Ticket { rx: reply_rx }),
            Err(PushError::Full(job)) => {
                self.shared.stats.record_shed();
                Err(SubmitError::Shed(job.request))
            }
            Err(PushError::Closed(job)) => Err(SubmitError::ShuttingDown(job.request)),
        }
    }

    /// Submits and waits: the blocking convenience path.
    pub fn query(
        &self,
        predicate: RangePredicate<T>,
        agg: AggKind,
    ) -> Result<Reply<T>, SubmitError<T>> {
        self.submit(Request::new(predicate, agg)).map(Ticket::wait)
    }

    /// Appends rows (routed to the tail shard). Blocks until the rows are
    /// visible to new queries (inline: immediately; async/frozen: once the
    /// maintenance thread has published the extended tail-shard snapshot).
    pub fn append(&self, rows: Vec<T>) {
        match (&self.shared.engine, &self.maint_tx) {
            (Engine::Inline(state), _) => {
                // invariant: the inline engine never panics mid-update;
                // poisoning means the process is already torn.
                let mut st = state.lock().expect("inline state poisoned");
                let InlineState {
                    data,
                    zonemap,
                    deletes,
                    ..
                } = &mut *st;
                *data = data.append(&rows);
                let tail = data.num_shards() - 1;
                zonemap.on_append_tail(&rows, data.shard(tail).as_slice());
                deletes[tail].grow(data.shard(tail).len());
                self.shared.stats.record_append();
            }
            (Engine::Snapshot(_), Some(tx)) => {
                let (ack_tx, ack_rx) = sync_channel(1);
                tx.send(MaintMsg::Append(rows, ack_tx))
                    // invariant: the maintenance thread outlives the
                    // service handle; it exits only after maint_tx drops.
                    .expect("maintenance thread gone");
                // invariant: see above — the ack sender is never dropped
                // unsent while the maintenance thread lives.
                ack_rx.recv().expect("maintenance thread gone");
            }
            (Engine::Snapshot(_), None) => unreachable!("snapshot mode without maintenance"),
        }
    }

    /// Tombstones one row (global rowid). See [`QueryService::mutate`].
    pub fn delete(&self, row: usize) -> Result<usize, MutationError> {
        self.mutate(vec![Mutation::Delete(row)])
    }

    /// Replaces one row out-of-place (global rowid): the old row is
    /// tombstoned, the new value appended to the tail shard. See
    /// [`QueryService::mutate`].
    pub fn update(&self, row: usize, value: T) -> Result<usize, MutationError> {
        self.mutate(vec![Mutation::Update(row, value)])
    }

    /// Applies one batch of out-of-place mutations and blocks until they
    /// are visible to new queries (inline: immediately; async/frozen:
    /// once the maintenance thread has republished the changed shards).
    /// Returns how many mutations took effect — deleting or updating an
    /// already-dead row is a counted-out no-op.
    ///
    /// # Errors
    /// [`MutationError::Lost`] when the maintenance thread is gone and no
    /// acknowledgement will arrive; the batch must be treated as lost.
    ///
    /// # Panics
    /// Panics on a rowid at or past the current column length.
    pub fn mutate(&self, mutations: Vec<Mutation<T>>) -> Result<usize, MutationError> {
        self.shared
            .stats
            .record_mutations_queued(mutations.len() as u64);
        match (&self.shared.engine, &self.maint_tx) {
            (Engine::Inline(state), _) => {
                // invariant: see append — poisoning is unrecoverable.
                let mut st = state.lock().expect("inline state poisoned");
                let n = mutations.len() as u64;
                let InlineState {
                    data,
                    zonemap,
                    deletes,
                    epoch,
                } = &mut *st;
                *epoch += 1;
                let mut dirty = vec![false; data.num_shards()];
                let applied =
                    apply_mutations(&mutations, data, zonemap, deletes, &mut dirty, *epoch);
                self.shared.stats.record_mutation_batch(n, applied as u64);
                if let Some(ratio) = self.shared.config.compact_tombstone_ratio {
                    compact_shards(
                        data,
                        zonemap,
                        deletes,
                        &mut dirty,
                        *epoch,
                        Some(ratio),
                        &self.shared.config.adaptive,
                        &self.shared.stats,
                    );
                }
                Ok(applied)
            }
            (Engine::Snapshot(_), Some(tx)) => {
                let (ack_tx, ack_rx) = sync_channel(1);
                tx.send(MaintMsg::Mutate(mutations, ack_tx))
                    .map_err(|_| MutationError::Lost)?;
                ack_rx.recv().map_err(|_| MutationError::Lost)
            }
            (Engine::Snapshot(_), None) => unreachable!("snapshot mode without maintenance"),
        }
    }

    /// Compacts every shard holding tombstones: live rows are densely
    /// repacked (shifting downstream shard starts and rowids), delete
    /// vectors reset, and each repacked shard's zonemap lane is rebuilt
    /// with tight bounds. Blocks until the compacted state is published;
    /// returns the rows reclaimed.
    ///
    /// # Errors
    /// [`MutationError::Lost`] when the maintenance thread is gone.
    pub fn compact(&self) -> Result<usize, MutationError> {
        match (&self.shared.engine, &self.maint_tx) {
            (Engine::Inline(state), _) => {
                // invariant: see append — poisoning is unrecoverable.
                let mut st = state.lock().expect("inline state poisoned");
                let InlineState {
                    data,
                    zonemap,
                    deletes,
                    epoch,
                } = &mut *st;
                *epoch += 1;
                let mut dirty = vec![false; data.num_shards()];
                Ok(compact_shards(
                    data,
                    zonemap,
                    deletes,
                    &mut dirty,
                    *epoch,
                    None,
                    &self.shared.config.adaptive,
                    &self.shared.stats,
                ))
            }
            (Engine::Snapshot(_), Some(tx)) => {
                let (ack_tx, ack_rx) = sync_channel(1);
                tx.send(MaintMsg::Compact(ack_tx))
                    .map_err(|_| MutationError::Lost)?;
                ack_rx.recv().map_err(|_| MutationError::Lost)
            }
            (Engine::Snapshot(_), None) => unreachable!("snapshot mode without maintenance"),
        }
    }

    /// Barrier: blocks until all feedback enqueued before this call is
    /// applied to the authoritative zonemap lanes and **every** shard is
    /// freshly published (epoch-diffing is bypassed, so post-flush readers
    /// see exact lane state including per-query statistics). A no-op in
    /// inline mode (adaptation is never deferred).
    pub fn flush(&self) {
        if let Some(tx) = &self.maint_tx {
            let (ack_tx, ack_rx) = sync_channel(1);
            // invariant: see append — maintenance outlives the handle.
            tx.send(MaintMsg::Flush(ack_tx))
                .expect("maintenance thread gone");
            // invariant: see append — maintenance outlives the handle.
            ack_rx.recv().expect("maintenance thread gone");
        }
    }

    /// A point-in-time stats report.
    pub fn stats(&self) -> ServerStats {
        self.stats_at_depth(self.shared.queue.len())
    }

    fn stats_at_depth(&self, queue_depth: usize) -> ServerStats {
        let mut stats = self.shared.stats.snapshot(queue_depth);
        // Inline mode reorganizes inside the query path (no maintenance
        // thread records deltas), so its lifetime totals come straight
        // from the authoritative zonemap.
        if let Engine::Inline(state) = &self.shared.engine {
            // invariant: see append — poisoning is unrecoverable.
            let st = state.lock().expect("inline state poisoned");
            let r = st.zonemap.reorg_stats();
            stats.zones_promoted = r.zones_promoted;
            stats.zones_demoted = r.zones_demoted;
            stats.reorg_bytes_moved = r.bytes_moved;
            stats.reorg_ns = r.reorg_ns;
            let t = st.zonemap.tier_stats();
            stats.tiers_built = t.tiers_built();
            stats.tiers_dropped = t.tiers_dropped;
            stats.tier_skips = t.tier_skips;
            stats.tombstone_ppm = tombstone_ppm(&st.deletes);
        }
        stats
    }

    /// Time since [`QueryService::start`].
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Number of shards the column is partitioned into.
    pub fn num_shards(&self) -> usize {
        match &self.shared.engine {
            Engine::Inline(state) => state
                .lock()
                // invariant: see append — poisoning is unrecoverable.
                .expect("inline state poisoned")
                .data
                .num_shards(),
            Engine::Snapshot(cell) => cell.num_shards(),
        }
    }

    /// The latest published snapshot of every shard lane, in shard order
    /// (`None` in inline mode, which has no publications).
    pub fn shard_snapshots(&self) -> Option<Vec<Arc<ShardSnapshot<T>>>> {
        match &self.shared.engine {
            Engine::Snapshot(cell) => Some(cell.load_all()),
            Engine::Inline(_) => None,
        }
    }

    /// Per-shard publication generations, in shard order (`None` in inline
    /// mode). A lane's generation moves exactly when that lane is
    /// republished, so diffing two reads tells which shards changed.
    pub fn shard_generations(&self) -> Option<Vec<u64>> {
        match &self.shared.engine {
            Engine::Snapshot(cell) => Some(cell.generations()),
            Engine::Inline(_) => None,
        }
    }

    /// The structural state of the zonemap queries currently see, in
    /// global row coordinates: the authoritative state in inline mode, the
    /// latest published lane snapshots otherwise (call
    /// [`QueryService::flush`] first for an up-to-date view).
    pub fn zone_snapshot(&self) -> Vec<(RowRange, &'static str, f64)> {
        match &self.shared.engine {
            Engine::Inline(state) => state
                .lock()
                // invariant: see append — poisoning is unrecoverable.
                .expect("inline state poisoned")
                .zonemap
                .zone_snapshot(),
            Engine::Snapshot(cell) => {
                let mut out = Vec::new();
                for snap in cell.load_all() {
                    let start = snap.start;
                    out.extend(
                        snap.zonemap
                            .zone_snapshot()
                            .into_iter()
                            .map(|(r, label, rate)| {
                                (RowRange::new(r.start + start, r.end + start), label, rate)
                            }),
                    );
                }
                out
            }
        }
    }

    /// Graceful shutdown: stop admission, drain and answer every accepted
    /// request, apply all queued feedback, then return the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_inner();
        self.stats_at_depth(0)
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All worker-held senders are gone; dropping ours closes the
        // maintenance channel after the queued feedback drains.
        self.maint_tx = None;
        if let Some(m) = self.maint.take() {
            let _ = m.join();
        }
    }
}

impl<T: DataValue> Drop for QueryService<T> {
    fn drop(&mut self) {
        if !self.workers.is_empty() || self.maint.is_some() {
            self.shutdown_inner();
        }
    }
}

/// One reader: pop → (deadline check) → execute → feedback → reply.
fn worker_loop<T: DataValue>(
    shared: &Shared<T>,
    worker_id: usize,
    feedback: Option<SyncSender<MaintMsg<T>>>,
) {
    let mut cache = match &shared.engine {
        Engine::Snapshot(cell) => Some(cell.cache()),
        Engine::Inline(_) => None,
    };
    while let Some(job) = shared.queue.pop() {
        let t0 = Instant::now();
        if let Some(deadline) = job.request.deadline {
            if Instant::now() > deadline {
                shared.stats.record_deadline_missed();
                let _ = job.reply.send(Reply::DeadlineMissed);
                continue;
            }
        }
        let reply = match &shared.engine {
            Engine::Inline(state) => {
                // The whole prune → scan → observe span under one lock:
                // the seed's single-writer architecture as a service mode.
                // invariant: see append — poisoning is unrecoverable.
                let mut st = state.lock().expect("inline state poisoned");
                let InlineState {
                    data,
                    zonemap,
                    deletes,
                    ..
                } = &mut *st;
                let version = data.shards().iter().map(SharedColumn::version).sum();
                let (answer, metrics) = execute_sharded_with_deletes(
                    data,
                    zonemap,
                    Some(deletes.as_slice()),
                    job.request.predicate,
                    job.request.agg,
                    &shared.config.exec_policy,
                );
                Reply::Answer {
                    answer,
                    snapshot_version: version,
                    wall_ns: metrics.query.wall_ns,
                }
            }
            Engine::Snapshot(cell) => {
                // Lock-free steady state: one atomic generation load per
                // lane, then read-only prunes and one fanned scan against
                // the immutable shard snapshots. Lanes may be from
                // different publication rounds — each is sound for its own
                // shard, which is all the merge needs.
                // invariant: the cache is Some exactly when the engine is
                // Snapshot — both match on the same enum above.
                let cache = cache.as_mut().expect("snapshot mode has a cache");
                cache.refresh(cell);
                let lanes = cache.lanes();
                let outcomes: Vec<_> = lanes
                    .iter()
                    .map(|lane| lane.current().zonemap.prune_shared(&job.request.predicate))
                    .collect();
                let inputs: Vec<ShardScanInput<'_, T>> = lanes
                    .iter()
                    .zip(&outcomes)
                    .map(|(lane, outcome)| {
                        let snap = lane.current();
                        ShardScanInput {
                            data: snap.data.as_slice(),
                            outcome,
                            start: snap.start,
                            live: Some(snap.delete.as_ref()),
                        }
                    })
                    .collect();
                let result = scan_sharded(
                    &inputs,
                    job.request.predicate,
                    job.request.agg,
                    &shared.config.exec_policy,
                );
                let version = lanes.iter().map(|lane| lane.current().version).sum();
                // Feedback goes out *before* the reply so a client that
                // replies-then-flushes is guaranteed (by channel FIFO) to
                // see its own query's adaptation applied.
                if let Some(tx) = &feedback {
                    match tx.try_send(MaintMsg::Feedback(result.observations)) {
                        Ok(()) => shared.stats.record_feedback_queued(),
                        Err(TrySendError::Full(_)) => shared.stats.record_feedback_dropped(),
                        Err(TrySendError::Disconnected(_)) => {}
                    }
                }
                Reply::Answer {
                    answer: result.answer,
                    snapshot_version: version,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                }
            }
        };
        shared
            .stats
            .record_query(worker_id, t0.elapsed().as_nanos() as u64);
        let _ = job.reply.send(reply);
    }
}

/// The maintenance thread: drain a batch, replay its feedback against the
/// authoritative zonemap lanes, publish the shards whose lanes changed,
/// ack control messages.
fn maintenance_loop<T: DataValue>(
    shared: &Shared<T>,
    rx: Receiver<MaintMsg<T>>,
    mut column: ShardedColumn<T>,
    mut zonemap: ShardedZonemap<T>,
) {
    let cell = match &shared.engine {
        Engine::Snapshot(cell) => cell,
        Engine::Inline(_) => unreachable!("inline mode has no maintenance"),
    };
    let num_shards = column.num_shards();
    let mut lane_versions = vec![0u64; num_shards];
    // Epoch of each lane at its last publication; a lane is republished
    // when its current epoch differs (or a flush forces it).
    let mut published_epochs = zonemap.mutation_epochs();
    // Authoritative per-shard tombstones, shard-local coordinates.
    let mut deletes: Vec<DeleteVector> = (0..num_shards)
        .map(|s| DeleteVector::new(column.shard(s).len(), 0))
        .collect();
    // The Arc each lane last published; re-Arc'd only when that shard's
    // tombstones changed, so a zonemap-only republish shares the bitmap.
    let mut published_deletes: Vec<Arc<DeleteVector>> =
        deletes.iter().map(|d| Arc::new(d.clone())).collect();
    // Lanes that must republish this round regardless of zonemap epochs:
    // their tombstones changed, or compaction shifted their start.
    let mut dirty = vec![false; num_shards];
    // Bumped once per mutation batch; stamps the delete vectors so a
    // published snapshot always carries the epoch of the batch that last
    // changed its tombstones.
    let mut mutation_epoch = 0u64;
    // Lifetime tier skips at the last stats report; tier skips accrue on
    // the authoritative map through feedback replay, so each round reports
    // the delta since the previous one.
    let mut reported_tier_skips = 0u64;

    while let Ok(first) = rx.recv() {
        // Drain opportunistically up to the batch bound: one publication
        // round amortises over the whole batch, keeping reader staleness
        // low without a snapshot-per-observation storm.
        let mut batch = vec![first];
        while batch.len() < shared.config.batch_max {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }

        let mut acks: Vec<SyncSender<()>> = Vec::new();
        let mut mutation_acks: Vec<(SyncSender<usize>, usize)> = Vec::new();
        let mut compact_acks: Vec<SyncSender<usize>> = Vec::new();
        let mut applied = 0u64;
        let mut force_all = false;
        let mut explicit_compact = false;
        for msg in batch {
            match msg {
                MaintMsg::Feedback(observations) => {
                    debug_assert_eq!(observations.len(), num_shards);
                    for (s, obs) in observations.iter().enumerate() {
                        zonemap.lane_mut(s).apply_feedback(obs);
                    }
                    applied += 1;
                }
                MaintMsg::Append(rows, ack) => {
                    column = column.append(&rows);
                    let tail = num_shards - 1;
                    zonemap.on_append_tail(&rows, column.shard(tail).as_slice());
                    deletes[tail].grow(column.shard(tail).len());
                    dirty[tail] = true;
                    shared.stats.record_append();
                    acks.push(ack);
                }
                MaintMsg::Mutate(muts, ack) => {
                    mutation_epoch += 1;
                    let took = apply_mutations(
                        &muts,
                        &mut column,
                        &mut zonemap,
                        &mut deletes,
                        &mut dirty,
                        mutation_epoch,
                    );
                    shared
                        .stats
                        .record_mutation_batch(muts.len() as u64, took as u64);
                    mutation_acks.push((ack, took));
                }
                // Compaction is deferred to the end of the batch: every
                // message in this batch was sent before this round's acks,
                // so all its rowids are pre-compaction coordinates and
                // FIFO-applying them first is exact.
                MaintMsg::Compact(ack) => {
                    explicit_compact = true;
                    compact_acks.push(ack);
                }
                // A flush publishes every lane regardless of epochs:
                // post-flush readers must see exact current lane state,
                // per-query statistics included.
                MaintMsg::Flush(ack) => {
                    force_all = true;
                    acks.push(ack);
                }
            }
        }

        // Compaction: an explicit request repacks every tombstoned shard;
        // otherwise the config ratio triggers automatic repacking of the
        // shards past it.
        let min_ratio = if explicit_compact {
            None
        } else {
            shared.config.compact_tombstone_ratio
        };
        let reclaimed = if explicit_compact || min_ratio.is_some() {
            compact_shards(
                &mut column,
                &mut zonemap,
                &mut deletes,
                &mut dirty,
                mutation_epoch,
                min_ratio,
                &shared.config.adaptive,
                &shared.stats,
            )
        } else {
            0
        };

        // Reorganization rides the same maintenance cadence: each lane
        // promotes hot zones / demotes cold ones against its own shard
        // slice. Any layout change bumps the lane's mutation epoch, so the
        // epoch diff below republishes exactly the lanes that moved —
        // readers keep their old snapshot Arc until then and never see a
        // half-reorganized zone.
        let mut reorg = ReorgReport::default();
        for s in 0..num_shards {
            let rep = zonemap.lane_mut(s).apply_reorg(column.shard(s).as_slice());
            reorg.promoted += rep.promoted;
            reorg.demoted += rep.demoted;
            reorg.bytes_moved += rep.bytes_moved;
            reorg.reorg_ns += rep.reorg_ns;
        }
        if reorg.changed() {
            shared.stats.record_reorg(
                reorg.promoted,
                reorg.demoted,
                reorg.bytes_moved,
                reorg.reorg_ns,
            );
        }

        // Metadata tiers ride the same cadence: each lane judges its drop
        // windows and builds sketches over zones whose replayed feedback
        // has amortised one. Builds and drops bump the lane's epoch, so
        // the diff below republishes them atomically — a reader never
        // sees a tier flag without its payload.
        let mut tiers = TierReport::default();
        for s in 0..num_shards {
            let rep = zonemap.lane_mut(s).apply_tiers(column.shard(s).as_slice());
            tiers.built += rep.built;
            tiers.dropped += rep.dropped;
        }
        let tier_skips = zonemap.tier_stats().tier_skips;
        let skip_delta = tier_skips.saturating_sub(reported_tier_skips);
        if tiers.changed() || skip_delta > 0 {
            shared
                .stats
                .record_tiers(tiers.built, tiers.dropped, skip_delta);
            reported_tier_skips = tier_skips;
        }

        // Run the revival check the next query's prune would run, so the
        // snapshot readers see the state an inline executor would start
        // the next query from.
        zonemap.poll_revival();
        let epochs = zonemap.mutation_epochs();
        let mut republished = 0u64;
        let mut republish_bytes = 0u64;
        let mut whole_map_bytes = 0u64;
        for s in 0..num_shards {
            whole_map_bytes += zonemap.lane(s).metadata_bytes() as u64;
            if force_all || dirty[s] || epochs[s] != published_epochs[s] {
                lane_versions[s] += 1;
                republish_bytes += zonemap.lane(s).metadata_bytes() as u64;
                if dirty[s] {
                    published_deletes[s] = Arc::new(deletes[s].clone());
                    dirty[s] = false;
                }
                cell.publish_shard(
                    s,
                    ShardSnapshot {
                        data: column.shard(s).clone(),
                        delete: Arc::clone(&published_deletes[s]),
                        zonemap: zonemap.lane(s).clone(),
                        start: column.start(s),
                        version: lane_versions[s],
                    },
                );
                published_epochs[s] = epochs[s];
                republished += 1;
            }
        }
        if republished > 0 {
            shared.stats.record_snapshot_published();
            shared.stats.record_shards_republished(republished);
            shared.stats.record_republish_bytes(republish_bytes);
        }
        // The counterfactual cost a whole-map publication scheme would
        // have paid this round (the pre-sharding design cloned everything
        // every round).
        shared.stats.record_whole_map_bytes(whole_map_bytes);
        if applied > 0 {
            shared.stats.record_feedback_applied(applied);
        }
        shared.stats.set_tombstone_ppm(tombstone_ppm(&deletes));
        // Acks only after the publications: an acked append/flush/
        // mutation/compaction is visible to every subsequent query.
        for ack in acks {
            let _ = ack.send(());
        }
        for (ack, took) in mutation_acks {
            let _ = ack.send(took);
        }
        for ack in compact_acks {
            let _ = ack.send(reclaimed);
        }
    }
}

/// Locates the shard holding global row `row`.
///
/// Callers guarantee `row < column.len()`, so the last shard whose start
/// is at or below `row` holds it (empty shards share their successor's
/// start and are skipped by taking the last).
fn shard_of_row<T: DataValue>(column: &ShardedColumn<T>, row: usize) -> usize {
    let s = (0..column.num_shards())
        .rfind(|&s| column.start(s) <= row)
        // invariant: shard 0 starts at row 0, so some start is <= row.
        .expect("shard 0 covers row 0");
    debug_assert!(row - column.start(s) < column.shard(s).len());
    s
}

/// Applies one client mutation batch out-of-place: deletes tombstone
/// their row; updates tombstone the old row and append the new value to
/// the tail shard (rowids are resolved against the column *before* any
/// of this batch's appends land, so a batch cannot address its own new
/// rows). Shards whose tombstones changed get their `dirty` flag raised.
/// Returns how many mutations took effect.
fn apply_mutations<T: DataValue>(
    mutations: &[Mutation<T>],
    column: &mut ShardedColumn<T>,
    zonemap: &mut ShardedZonemap<T>,
    deletes: &mut [DeleteVector],
    dirty: &mut [bool],
    epoch: u64,
) -> usize {
    let mut applied = 0usize;
    let mut tail_appends: Vec<T> = Vec::new();
    for m in mutations {
        let (row, update) = match m {
            Mutation::Delete(row) => (*row, None),
            Mutation::Update(row, value) => (*row, Some(*value)),
        };
        assert!(
            row < column.len(),
            "mutation rowid {row} out of range ({} rows)",
            column.len()
        );
        let s = shard_of_row(column, row);
        if deletes[s].delete(row - column.start(s)) {
            deletes[s].set_epoch(epoch);
            dirty[s] = true;
            applied += 1;
            if let Some(value) = update {
                tail_appends.push(value);
            }
        }
    }
    if !tail_appends.is_empty() {
        *column = column.append(&tail_appends);
        let tail = column.num_shards() - 1;
        zonemap.on_append_tail(&tail_appends, column.shard(tail).as_slice());
        deletes[tail].grow(column.shard(tail).len());
        deletes[tail].set_epoch(epoch);
        dirty[tail] = true;
    }
    applied
}

/// Densely repacks every shard whose tombstone ratio reaches `min_ratio`
/// (every tombstoned shard when `None`): live rows are rewritten in
/// order via [`SharedColumn::replace`], the shard's delete vector resets
/// to all-live at `epoch`, and its zonemap lane is rebuilt with bounds
/// tightened by a synthetic zone-aligned observation. Downstream lanes'
/// starts shift, so their `dirty` flags are raised alongside the
/// repacked shard's. Returns the total rows reclaimed.
#[allow(clippy::too_many_arguments)]
fn compact_shards<T: DataValue>(
    column: &mut ShardedColumn<T>,
    zonemap: &mut ShardedZonemap<T>,
    deletes: &mut [DeleteVector],
    dirty: &mut [bool],
    epoch: u64,
    min_ratio: Option<f64>,
    config: &AdaptiveConfig,
    stats: &StatsCollector,
) -> usize {
    let mut reclaimed_total = 0usize;
    for s in 0..column.num_shards() {
        if !deletes[s].has_deletes() {
            continue;
        }
        if let Some(ratio) = min_ratio {
            if deletes[s].tombstone_ratio() < ratio {
                continue;
            }
        }
        let shard = column.shard(s);
        let mut live_rows = Vec::with_capacity(deletes[s].live_count());
        for (i, v) in shard.as_slice().iter().enumerate() {
            if !deletes[s].is_deleted(i) {
                live_rows.push(*v);
            }
        }
        let reclaimed = shard.len() - live_rows.len();
        let mut shards = column.shards().to_vec();
        shards[s] = shards[s].replace(live_rows);
        *column = ShardedColumn::from_shards(shards);
        deletes[s] = DeleteVector::new(column.shard(s).len(), epoch);
        zonemap.replace_lane(
            s,
            rebuilt_lane(column.shard(s).as_slice(), config),
            &column.shard_lens(),
        );
        // The repacked lane and every lane downstream of it (their global
        // starts shifted by `reclaimed`) must republish this round.
        for flag in dirty.iter_mut().skip(s) {
            *flag = true;
        }
        stats.record_compaction(reclaimed as u64);
        reclaimed_total += reclaimed;
    }
    reclaimed_total
}

/// A fresh zonemap lane over a compacted shard, its zones eagerly built
/// with tight bounds: one synthetic all-matching observation walks the
/// lane's own zone-aligned prune units, so the rebuilt metadata is
/// exactly what a full scan would have observed — no query traffic is
/// needed to re-tighten bounds after compaction.
fn rebuilt_lane<T: DataValue>(data: &[T], config: &AdaptiveConfig) -> AdaptiveZonemap<T> {
    let mut lane = AdaptiveZonemap::new(data.len(), config.clone());
    let Some(&first) = data.first() else {
        return lane;
    };
    let (lo, hi) = data.iter().fold((first, first), |(lo, hi), &v| {
        (lo.min_total(v), hi.max_total(v))
    });
    let predicate = RangePredicate::between(lo, hi);
    let outcome = SkippingIndex::prune(&mut lane, &predicate);
    let ranges = outcome
        .units()
        .iter()
        .map(|unit| {
            // live: freshly compacted shard — every tombstone dropped.
            let (q, mn, mx) =
                ads_storage::scan::count_in_range_with_minmax(&data[unit.start..unit.end], lo, hi);
            RangeObservation::new(*unit, q, mn, mx)
        })
        .collect();
    lane.observe(&ScanObservation { predicate, ranges });
    lane
}

/// The column's tombstoned fraction in parts per million.
fn tombstone_ppm(deletes: &[DeleteVector]) -> u64 {
    let total: usize = deletes.iter().map(DeleteVector::len).sum();
    let dead: usize = deletes.iter().map(DeleteVector::deleted_count).sum();
    if total == 0 {
        0
    } else {
        (dead as u64).saturating_mul(1_000_000) / total as u64
    }
}

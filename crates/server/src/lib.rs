//! `ads-server`: a concurrent query service over the adaptive skipping
//! engine — snapshot-isolated reads, asynchronous zonemap adaptation.
//!
//! The paper's protocol is inherently single-writer: every query mutates
//! the index (prune ticks the clock and stats; observe builds, splits,
//! merges, deactivates). Run naively under concurrency, that serialises
//! all queries behind one lock. This crate keeps the protocol intact but
//! splits *where* its two halves run:
//!
//! * **Reads** execute against immutable [`ShardSnapshot`]s — one frozen
//!   shard column version paired with the zonemap lane computed over
//!   exactly that version — fetched through generation-checked per-lane
//!   caches ([`ShardedCache`]) whose steady-state cost is one atomic load
//!   per shard. Pruning uses the read-only
//!   `AdaptiveZonemap::prune_shared`, which is decision-identical to the
//!   mutable prune; the per-shard scans fan through one weighted parallel
//!   map and merge deterministically in shard order.
//! * **Adaptation** is deferred: each query's per-shard scan observations
//!   go into a bounded feedback channel; a single maintenance thread
//!   drains them in batches, replays the exact inline prune/observe
//!   sequence against each authoritative zonemap lane
//!   (`AdaptiveZonemap::apply_feedback`), and publishes fresh snapshots
//!   RCU-style — **only into the shard lanes whose mutation epoch moved**,
//!   so publication cost tracks the metadata that changed rather than the
//!   whole map. Appends serialise through the same thread and route to the
//!   tail shard, so each lane always describes the shard column version it
//!   is published with.
//!
//! Answers are exact regardless of snapshot staleness; what staleness (or
//! a full feedback channel dropping observations) costs is adaptation
//! speed — the zonemap converges to the same states the inline protocol
//! reaches, just later. See `tests/convergence.rs` for the serialized
//! equivalence proof and `tests/stress.rs` for answer exactness under
//! concurrency.
//!
//! **Mutations** are out-of-place: [`Mutation`] batches (deletes and
//! updates) ride the maintenance channel like appends, tombstone rows in
//! per-shard delete vectors, and are acknowledged only after the changed
//! shards republish — data and tombstones travel in one immutable
//! snapshot, so readers never see torn mutation state. Background
//! compaction densely repacks tombstoned shards and rebuilds their
//! zonemap lanes with tight bounds (see `service` module docs).
//!
//! Service mechanics: a bounded request queue with shed-on-full admission
//! ([`SubmitError::Shed`]), per-request deadlines, graceful drain on
//! [`QueryService::shutdown`], and a stats surface ([`ServerStats`]) with
//! a shared latency histogram.

#![forbid(unsafe_code)]

pub mod config;
pub mod queue;
pub mod service;
pub mod snapshot;
pub mod stats;
pub mod sync;

pub use config::{AdaptationMode, ServerConfig};
pub use queue::{Bounded, PushError};
pub use service::{Mutation, MutationError, QueryService, Reply, Request, SubmitError, Ticket};
pub use snapshot::{ShardSnapshot, ShardedCache, ShardedCell, SnapshotCache, SnapshotCell};
pub use stats::{ServerStats, StatsCollector};

//! Service tuning knobs.

use ads_core::adaptive::AdaptiveConfig;
use ads_engine::ExecPolicy;
use std::time::Duration;

/// Where a query's adaptation feedback goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptationMode {
    /// Feedback is dropped: the zonemap never changes after load. The
    /// baseline that isolates pure snapshot-read scaling (an adaptive
    /// zonemap starts unbuilt, so this degenerates to full scans).
    Frozen,
    /// The seed architecture: every query locks the one mutable engine
    /// state for its whole prune → scan → observe span. Adaptation is
    /// immediate, concurrency is one query at a time.
    Inline,
    /// Readers execute against immutable snapshots and queue their
    /// observations; a maintenance thread applies them in batches and
    /// publishes fresh snapshots. Adaptation lags by the queue depth,
    /// answers never do.
    Async,
}

impl AdaptationMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AdaptationMode::Frozen => "frozen",
            AdaptationMode::Inline => "inline",
            AdaptationMode::Async => "async",
        }
    }
}

/// Configuration of a [`crate::QueryService`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Reader (worker) threads executing queries.
    pub readers: usize,
    /// Contiguous shards the column is partitioned into. Each shard gets
    /// its own zonemap lane, snapshot cell, and publication generation;
    /// `1` reproduces the unsharded service exactly.
    pub shards: usize,
    /// Bound of the request queue; admission beyond it sheds.
    pub queue_capacity: usize,
    /// Bound of the observation feedback channel; feedback beyond it is
    /// dropped (slower adaptation, never wrong answers).
    pub feedback_capacity: usize,
    /// Most feedback entries the maintenance thread applies before it
    /// republishes a snapshot, bounding reader staleness under load.
    pub batch_max: usize,
    /// Deadline stamped on requests that do not carry their own; a request
    /// whose deadline has passed when a worker picks it up is answered
    /// with [`crate::Reply::DeadlineMissed`] without scanning.
    pub default_deadline: Option<Duration>,
    /// Feedback routing (see [`AdaptationMode`]).
    pub adaptation: AdaptationMode,
    /// Scan policy of each reader. Defaults to sequential: the service
    /// scales by running many queries at once, not by fanning one query
    /// across the cores the other readers are using.
    pub exec_policy: ExecPolicy,
    /// Zonemap configuration.
    pub adaptive: AdaptiveConfig,
    /// Tombstone fraction (deleted rows / total rows, per shard) beyond
    /// which the maintenance thread compacts that shard in its next
    /// round: live rows are densely repacked, the delete vector reset,
    /// and the shard's zonemap rebuilt with tight bounds. `None` disables
    /// automatic compaction; [`crate::QueryService::compact`] still
    /// compacts on demand.
    pub compact_tombstone_ratio: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            readers: 4,
            shards: 1,
            queue_capacity: 1024,
            feedback_capacity: 4096,
            batch_max: 256,
            default_deadline: None,
            adaptation: AdaptationMode::Async,
            exec_policy: ExecPolicy::sequential(),
            adaptive: AdaptiveConfig::default(),
            compact_tombstone_ratio: None,
        }
    }
}

impl ServerConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on a zero-sized pool, queue, or batch; called by
    /// [`crate::QueryService::start`] so misconfigurations fail fast.
    pub fn validate(&self) {
        assert!(self.readers >= 1, "readers must be >= 1");
        assert!(self.shards >= 1, "shards must be >= 1");
        assert!(self.queue_capacity >= 1, "queue_capacity must be >= 1");
        assert!(
            self.feedback_capacity >= 1,
            "feedback_capacity must be >= 1"
        );
        assert!(self.batch_max >= 1, "batch_max must be >= 1");
        if let Some(r) = self.compact_tombstone_ratio {
            assert!(
                r > 0.0 && r <= 1.0,
                "compact_tombstone_ratio must be in (0, 1]"
            );
        }
        self.adaptive.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ServerConfig::default().validate();
        assert_eq!(AdaptationMode::Async.label(), "async");
        assert_eq!(AdaptationMode::Inline.label(), "inline");
        assert_eq!(AdaptationMode::Frozen.label(), "frozen");
    }

    #[test]
    #[should_panic(expected = "readers must be >= 1")]
    fn zero_readers_rejected() {
        ServerConfig {
            readers: 0,
            ..ServerConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "compact_tombstone_ratio")]
    fn out_of_range_compaction_ratio_rejected() {
        ServerConfig {
            compact_tombstone_ratio: Some(1.5),
            ..ServerConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "shards must be >= 1")]
    fn zero_shards_rejected() {
        ServerConfig {
            shards: 0,
            ..ServerConfig::default()
        }
        .validate();
    }
}

//! A bounded MPMC work queue with shed-on-full admission and graceful
//! close, built on `Mutex<VecDeque>` + `Condvar` (std-only).
//!
//! Admission is non-blocking by design: a full queue rejects the request
//! immediately ([`PushError::Full`]) so overload turns into fast, explicit
//! shedding at the edge instead of unbounded latency inside. Consumers
//! block on [`Bounded::pop`]; after [`Bounded::close`] they drain whatever
//! is already queued and then receive `None` — the graceful-shutdown
//! contract: accepted work is always finished.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the work item is handed back.
    Full(T),
    /// The queue has been closed; the work item is handed back.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (floor 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item`, or rejects it without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        // invariant: queue closures never panic while holding the lock,
        // so poisoning means the process is already tearing down.
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Takes the next item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        // invariant: see try_push — lock poisoning is unrecoverable.
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            // invariant: see try_push — lock poisoning is unrecoverable.
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Current depth (for stats; racy by nature).
    pub fn len(&self) -> usize {
        // invariant: see try_push — lock poisoning is unrecoverable.
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops admission. Queued items remain poppable; blocked consumers
    /// wake and drain.
    pub fn close(&self) {
        // invariant: see try_push — lock poisoning is unrecoverable.
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Bounded::new(64);
        let mut total = 0u64;
        std::thread::scope(|scope| {
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sum = 0u64;
                        while let Some(v) = q.pop() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            // Inner scope joins all producers before we close the queue.
            std::thread::scope(|producers| {
                let q = &q;
                for p in 0..4u64 {
                    producers.spawn(move || {
                        for i in 0..250u64 {
                            let mut item = p * 1000 + i;
                            // Spin on Full: this test checks delivery, not shed.
                            loop {
                                match q.try_push(item) {
                                    Ok(()) => break,
                                    Err(PushError::Full(v)) => {
                                        item = v;
                                        std::thread::yield_now();
                                    }
                                    Err(PushError::Closed(_)) => panic!("closed early"),
                                }
                            }
                        }
                    });
                }
            });
            q.close();
            for c in consumers {
                total += c.join().unwrap();
            }
        });
        let expected: u64 = (0..4u64)
            .flat_map(|p| (0..250u64).map(move |i| p * 1000 + i))
            .sum();
        assert_eq!(total, expected);
    }
}

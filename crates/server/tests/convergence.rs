//! Proof that asynchronous adaptation converges to the inline protocol.
//!
//! The service's claim is that deferring observe-side adaptation to a
//! maintenance thread changes *when* the zonemap reorganises, never *what
//! it converges to*. Serialized, that claim is exact: a single reader that
//! flushes after every query must drive the authoritative zonemap through
//! the identical state trajectory an inline executor produces on the same
//! query stream — same zone boundaries, same build/dead states, same skip
//! rates. These tests check that equivalence structurally (via
//! `zone_snapshot()`), answer-by-answer, and for the frozen mode's
//! contract (exact answers, no adaptation at all).

use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap, ShardedZonemap};
use ads_core::RangePredicate;
use ads_engine::{execute, execute_reference, execute_sharded, AggKind, ExecPolicy};
use ads_server::{AdaptationMode, QueryService, Reply, ServerConfig};
use ads_storage::ShardedColumn;
use ads_workloads::{data, queries};

const ROWS: usize = 40_000;
const DOMAIN: i64 = 10_000;
const QUERIES: usize = 150;

fn config(mode: AdaptationMode) -> ServerConfig {
    ServerConfig {
        readers: 1,
        queue_capacity: 64,
        feedback_capacity: 64,
        batch_max: 16,
        adaptation: mode,
        ..ServerConfig::default()
    }
}

/// Replays `queries` inline and returns (answers, final zonemap).
fn inline_replay(
    column: &[i64],
    adaptive: AdaptiveConfig,
    preds: &[queries::RangeQuery],
) -> (Vec<u64>, AdaptiveZonemap<i64>) {
    let mut zm = AdaptiveZonemap::new(column.len(), adaptive);
    let answers = preds
        .iter()
        .map(|q| {
            let pred = RangePredicate::between(q.lo, q.hi);
            let (ans, _) = execute(column, &mut zm, pred, AggKind::Count);
            ans.count
        })
        .collect();
    (answers, zm)
}

#[test]
fn async_single_reader_with_flush_matches_inline_exactly() {
    let column = data::clustered(ROWS, 80, 0.05, DOMAIN, 42);
    let preds = queries::hotspot_ranges(QUERIES, DOMAIN, 0.05, 0.3, 0.2, 7);
    let adaptive = AdaptiveConfig::default();

    let (inline_answers, mut inline_zm) = inline_replay(&column, adaptive.clone(), &preds);

    let svc = QueryService::start(
        column.clone(),
        ServerConfig {
            adaptive: adaptive.clone(),
            ..config(AdaptationMode::Async)
        },
    );
    let mut async_answers = Vec::with_capacity(preds.len());
    for q in &preds {
        let pred = RangePredicate::between(q.lo, q.hi);
        match svc.query(pred, AggKind::Count).expect("admitted") {
            Reply::Answer { answer, .. } => async_answers.push(answer.count),
            Reply::DeadlineMissed => panic!("no deadline configured"),
        }
        // The worker queues its observation before replying, so by channel
        // FIFO this flush applies exactly this query's feedback and
        // publishes — the next query reads fully up-to-date metadata,
        // making the replay serialized.
        svc.flush();
    }

    assert_eq!(async_answers, inline_answers, "answers diverged");

    // The maintenance thread ran the next query's revival poll at its last
    // publication; run it on the inline map too before comparing.
    inline_zm.poll_revival();
    assert_eq!(
        svc.zone_snapshot(),
        inline_zm.zone_snapshot(),
        "async adaptation reached a different zonemap state than inline"
    );

    let stats = svc.shutdown();
    assert_eq!(stats.queries, QUERIES as u64);
    assert_eq!(stats.feedback_applied, QUERIES as u64);
    assert_eq!(stats.feedback_dropped, 0);
    assert_eq!(stats.adaptation_lag, 0);
    assert!(stats.snapshots_published >= QUERIES as u64);
}

#[test]
fn async_convergence_holds_on_adversarial_uniform_data() {
    // Uniform data drives the deactivate/revive machinery; the serialized
    // equivalence must survive zones dying and coming back.
    let column = data::uniform(ROWS, DOMAIN, 11);
    let preds = queries::uniform_ranges(QUERIES, DOMAIN, 0.02, 13);
    let adaptive = AdaptiveConfig::default();

    let (inline_answers, mut inline_zm) = inline_replay(&column, adaptive.clone(), &preds);

    let svc = QueryService::start(
        column.clone(),
        ServerConfig {
            adaptive,
            ..config(AdaptationMode::Async)
        },
    );
    for (i, q) in preds.iter().enumerate() {
        let pred = RangePredicate::between(q.lo, q.hi);
        let reply = svc.query(pred, AggKind::Count).expect("admitted");
        assert_eq!(
            reply.answer().expect("no deadline").count,
            inline_answers[i]
        );
        svc.flush();
    }

    inline_zm.poll_revival();
    assert_eq!(svc.zone_snapshot(), inline_zm.zone_snapshot());
    drop(svc);
}

#[test]
fn sharded_async_with_flush_matches_sharded_inline_replay() {
    // The sharded generalisation of the serialized-equivalence proof: at
    // four shards, a single reader flushing after every query must drive
    // every authoritative zonemap lane through the identical trajectory
    // the sharded executor produces inline on the same stream.
    const SHARDS: usize = 4;
    let column = data::clustered(ROWS, 80, 0.05, DOMAIN, 42);
    let preds = queries::hotspot_ranges(QUERIES, DOMAIN, 0.05, 0.3, 0.2, 7);
    let adaptive = AdaptiveConfig::default();

    let sharded = ShardedColumn::new(column.clone(), SHARDS);
    let mut inline_zm = ShardedZonemap::for_column(&sharded, adaptive.clone());
    let policy = ExecPolicy::sequential();
    let inline_answers: Vec<u64> = preds
        .iter()
        .map(|q| {
            let pred = RangePredicate::between(q.lo, q.hi);
            let (ans, _) = execute_sharded(&sharded, &mut inline_zm, pred, AggKind::Count, &policy);
            ans.count
        })
        .collect();

    let svc = QueryService::start(
        column,
        ServerConfig {
            shards: SHARDS,
            adaptive,
            ..config(AdaptationMode::Async)
        },
    );
    for (i, q) in preds.iter().enumerate() {
        let pred = RangePredicate::between(q.lo, q.hi);
        let reply = svc.query(pred, AggKind::Count).expect("admitted");
        assert_eq!(
            reply.answer().expect("no deadline").count,
            inline_answers[i],
            "query {i} diverged"
        );
        svc.flush();
    }

    inline_zm.poll_revival();
    assert_eq!(
        svc.zone_snapshot(),
        inline_zm.zone_snapshot(),
        "sharded async adaptation reached a different state than inline"
    );

    let stats = svc.shutdown();
    assert_eq!(stats.feedback_applied, QUERIES as u64);
    assert_eq!(stats.adaptation_lag, 0);
    // Each flush force-publishes every lane, so the per-shard counters
    // must have seen at least SHARDS lanes per flush round.
    assert!(stats.shards_republished >= (SHARDS * QUERIES) as u64);
    assert!(stats.republish_bytes <= stats.whole_map_bytes);
}

#[test]
fn frozen_mode_answers_exactly_and_never_adapts() {
    let column = data::sorted(ROWS, DOMAIN);
    let preds = queries::uniform_ranges(60, DOMAIN, 0.05, 3);

    let svc = QueryService::start(column.clone(), config(AdaptationMode::Frozen));
    for q in &preds {
        let pred = RangePredicate::between(q.lo, q.hi);
        let reply = svc.query(pred, AggKind::Count).expect("admitted");
        let expected = execute_reference(&column, pred, AggKind::Count);
        assert_eq!(reply.answer().expect("no deadline").count, expected.count);
    }
    svc.flush();

    // No feedback ever flowed: every zone is still unbuilt.
    assert!(
        svc.zone_snapshot()
            .iter()
            .all(|(_, state, _)| *state == "unbuilt"),
        "frozen service adapted"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.feedback_applied, 0);
    assert_eq!(stats.feedback_dropped, 0);
}

#[test]
fn inline_mode_matches_the_plain_executor() {
    // The inline service mode is the seed architecture behind a queue; a
    // single reader must reproduce the executor byte for byte, including
    // the final zonemap.
    let column = data::sawtooth(ROWS, 8, DOMAIN);
    let preds = queries::uniform_ranges(100, DOMAIN, 0.03, 99);
    let adaptive = AdaptiveConfig::default();

    let (inline_answers, inline_zm) = inline_replay(&column, adaptive.clone(), &preds);

    let svc = QueryService::start(
        column,
        ServerConfig {
            adaptive,
            ..config(AdaptationMode::Inline)
        },
    );
    for (i, q) in preds.iter().enumerate() {
        let pred = RangePredicate::between(q.lo, q.hi);
        let reply = svc.query(pred, AggKind::Count).expect("admitted");
        assert_eq!(
            reply.answer().expect("no deadline").count,
            inline_answers[i]
        );
    }
    assert_eq!(svc.zone_snapshot(), inline_zm.zone_snapshot());
    let stats = svc.shutdown();
    assert_eq!(stats.queries, 100);
    assert_eq!(stats.snapshots_published, 0, "inline mode never publishes");
}

#[test]
fn reorg_enabled_service_answers_exactly_and_counts_promotions() {
    // Hot clustered workload with reorganization on: both service modes
    // must produce exact answers while zones get promoted, and the stats
    // surface must report the promotions.
    let column = data::clustered(ROWS, 80, 0.05, DOMAIN, 42);
    let preds = queries::hotspot_ranges(QUERIES, DOMAIN, 0.05, 0.3, 0.2, 7);
    let adaptive = AdaptiveConfig {
        reorg_after_scans: 2,
        maintenance_every: 1,
        ..AdaptiveConfig::with_reorg()
    };
    let expected: Vec<u64> = preds
        .iter()
        .map(|q| column.iter().filter(|&&v| v >= q.lo && v <= q.hi).count() as u64)
        .collect();

    for mode in [AdaptationMode::Inline, AdaptationMode::Async] {
        let svc = QueryService::start(
            column.clone(),
            ServerConfig {
                adaptive: adaptive.clone(),
                ..config(mode)
            },
        );
        for (q, &want) in preds.iter().zip(&expected) {
            let pred = RangePredicate::between(q.lo, q.hi);
            let reply = svc.query(pred, AggKind::Count).expect("admitted");
            assert_eq!(
                reply.answer().expect("no deadline").count,
                want,
                "wrong count in {mode:?} mode"
            );
            if mode == AdaptationMode::Async {
                // Serialize so the maintenance thread's reorg pass runs
                // between queries and republishes promoted lanes.
                svc.flush();
            }
        }
        let stats = svc.shutdown();
        assert!(
            stats.zones_promoted > 0,
            "hot workload promoted no zones in {mode:?} mode"
        );
        assert!(
            stats.reorg_bytes_moved > 0,
            "promotion moved no bytes in {mode:?} mode"
        );
        assert!(
            stats.summary().contains("reorg_promoted="),
            "summary must surface reorg counters"
        );
    }
}

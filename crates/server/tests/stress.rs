//! Concurrency stress: answers from the service must be exactly the
//! reference scan's answers, no matter how many readers race, how stale
//! their snapshots are, or how the maintenance thread interleaves
//! publications. (With integer data every aggregate — including SUM,
//! whose f64 accumulation is exact below 2^53 — admits bit-identical
//! comparison.)
//!
//! Iteration counts scale with `ADS_STRESS_ITERS` (default 1) so CI can
//! run an elevated pass without slowing the local suite.

use ads_core::RangePredicate;
use ads_engine::{execute_reference, AggKind};
use ads_server::{AdaptationMode, QueryService, Reply, Request, ServerConfig};
use ads_workloads::{data, queries};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 30_000;
const DOMAIN: i64 = 10_000;

fn iters() -> usize {
    std::env::var("ADS_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

const AGGS: [AggKind; 5] = [
    AggKind::Count,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Positions,
];

#[test]
fn concurrent_readers_answer_bit_identically_to_reference() {
    let column = data::uniform(ROWS, DOMAIN, 21);
    let svc = QueryService::start(
        column.clone(),
        ServerConfig {
            readers: 4,
            adaptation: AdaptationMode::Async,
            ..ServerConfig::default()
        },
    );

    let clients = 4;
    let per_client = 100 * iters();
    std::thread::scope(|scope| {
        let svc = &svc;
        let column = &column;
        for c in 0..clients {
            scope.spawn(move || {
                let preds = queries::uniform_ranges(per_client, DOMAIN, 0.04, 1000 + c as u64);
                for (i, q) in preds.iter().enumerate() {
                    let pred = RangePredicate::between(q.lo, q.hi);
                    let agg = AGGS[(c + i) % AGGS.len()];
                    let reply = svc.query(pred, agg).expect("admitted");
                    let got = reply.answer().expect("no deadline set");
                    let want = execute_reference(column, pred, agg);
                    assert_eq!(*got, want, "client {c} query {i} {agg:?}");
                }
            });
        }
    });

    let stats = svc.shutdown();
    assert_eq!(stats.queries, (clients * per_client) as u64);
    assert_eq!(stats.deadline_missed, 0);
    // All applied feedback is accounted for; whatever the channel shed
    // under load is explicitly counted, not silently lost.
    assert_eq!(
        stats.feedback_applied + stats.adaptation_lag + stats.feedback_dropped,
        stats.queries
    );
}

#[test]
fn appends_are_visible_once_acknowledged() {
    let mut mirror = data::sorted(5_000, DOMAIN);
    let svc = QueryService::start(
        mirror.clone(),
        ServerConfig {
            readers: 2,
            adaptation: AdaptationMode::Async,
            ..ServerConfig::default()
        },
    );

    for round in 0..10 * iters() {
        let batch = data::uniform(500, DOMAIN, 300 + round as u64);
        mirror.extend_from_slice(&batch);
        svc.append(batch);

        // append() acks only after the extended snapshot is published, so
        // these queries must see every appended row.
        let all = RangePredicate::between(0, DOMAIN);
        let reply = svc.query(all, AggKind::Count).expect("admitted");
        assert_eq!(
            reply.answer().expect("no deadline").count,
            mirror.len() as u64,
            "round {round}: appended rows invisible"
        );

        let q = queries::uniform_ranges(1, DOMAIN, 0.1, 900 + round as u64)[0];
        let pred = RangePredicate::between(q.lo, q.hi);
        let reply = svc.query(pred, AggKind::Sum).expect("admitted");
        let want = execute_reference(&mirror, pred, AggKind::Sum);
        assert_eq!(*reply.answer().expect("no deadline"), want);
    }

    let stats = svc.shutdown();
    assert_eq!(stats.appends, 10 * iters() as u64);
}

#[test]
fn inline_mode_is_safe_under_concurrent_clients() {
    // Inline mode serialises adaptation behind its lock; the point here is
    // that concurrent clients still get exact answers and a clean drain.
    let column = data::mixed_regions(ROWS, DOMAIN, 5);
    let svc = QueryService::start(
        column.clone(),
        ServerConfig {
            readers: 4,
            adaptation: AdaptationMode::Inline,
            ..ServerConfig::default()
        },
    );
    std::thread::scope(|scope| {
        let svc = &svc;
        let column = &column;
        for c in 0..3 {
            scope.spawn(move || {
                let preds = queries::uniform_ranges(60 * iters(), DOMAIN, 0.03, c as u64);
                for q in preds {
                    let pred = RangePredicate::between(q.lo, q.hi);
                    let reply = svc.query(pred, AggKind::Count).expect("admitted");
                    let want = execute_reference(column, pred, AggKind::Count);
                    assert_eq!(reply.answer().expect("no deadline").count, want.count);
                }
            });
        }
    });
    svc.shutdown();
}

#[test]
fn sharded_async_mode_is_exact_under_racing_appends_and_flushes() {
    const SHARDS: usize = 8;
    let base = data::clustered(ROWS, 24, 0.05, DOMAIN, 9);
    let svc = QueryService::start(
        base.clone(),
        ServerConfig {
            readers: 4,
            shards: SHARDS,
            adaptation: AdaptationMode::Async,
            ..ServerConfig::default()
        },
    );
    assert_eq!(svc.num_shards(), SHARDS);

    let rounds = 6 * iters();
    let per_client = 80 * iters();
    std::thread::scope(|scope| {
        let svc = &svc;
        let base = &base;
        // Readers race queries strictly below DOMAIN. The writer's appends
        // only add values in [DOMAIN, 2*DOMAIN), so the reference answer
        // on the base column stays bit-exact no matter when an append
        // becomes visible to a given reader.
        for c in 0..3usize {
            scope.spawn(move || {
                let preds = queries::uniform_ranges(per_client, DOMAIN, 0.04, 4_000 + c as u64);
                for (i, q) in preds.iter().enumerate() {
                    let pred = RangePredicate::between(q.lo, q.hi);
                    let agg = AGGS[(c + i) % AGGS.len()];
                    let reply = svc.query(pred, agg).expect("admitted");
                    let got = reply.answer().expect("no deadline set");
                    let want = execute_reference(base, pred, agg);
                    assert_eq!(*got, want, "client {c} query {i} {agg:?}");
                }
            });
        }
        // One writer thread: appends and flush barriers racing the readers.
        scope.spawn(move || {
            for round in 0..rounds {
                let batch: Vec<i64> = (0..257)
                    .map(|i| DOMAIN + ((i as i64 * 31 + round as i64) % DOMAIN))
                    .collect();
                svc.append(batch);
                svc.flush();
            }
        });
    });

    // Every append was acked, so the full tail must be visible now.
    let total = (ROWS + rounds * 257) as u64;
    let all = RangePredicate::between(0, 2 * DOMAIN);
    let reply = svc.query(all, AggKind::Count).expect("admitted");
    assert_eq!(reply.answer().expect("no deadline").count, total);

    // Quiesce, then prove publication is per-shard: an append republishes
    // the tail lane only — every untouched lane keeps both its publication
    // generation and its exact Arc, so reader caches for those shards are
    // not invalidated.
    svc.flush();
    let gens_before = svc.shard_generations().expect("async mode publishes");
    let snaps_before = svc.shard_snapshots().expect("async mode publishes");
    svc.append(vec![DOMAIN; 64]);
    let gens_after = svc.shard_generations().expect("async mode publishes");
    let snaps_after = svc.shard_snapshots().expect("async mode publishes");
    for s in 0..SHARDS {
        if s == SHARDS - 1 {
            assert!(gens_after[s] > gens_before[s], "tail lane not republished");
            assert_eq!(snaps_after[s].data.len(), snaps_before[s].data.len() + 64);
        } else {
            assert_eq!(
                gens_after[s], gens_before[s],
                "lane {s} generation moved on a tail-shard append"
            );
            assert!(
                Arc::ptr_eq(&snaps_before[s], &snaps_after[s]),
                "lane {s} snapshot re-cloned on a tail-shard append"
            );
        }
    }

    let stats = svc.shutdown();
    assert_eq!(stats.appends, rounds as u64 + 1);
    assert!(stats.shards_republished >= stats.snapshots_published);
    // Epoch-diffed publication never pays more than the whole-map clone
    // the pre-sharding scheme would have.
    assert!(stats.republish_bytes <= stats.whole_map_bytes);
    assert_eq!(
        stats.feedback_applied + stats.adaptation_lag + stats.feedback_dropped,
        stats.queries
    );
}

#[test]
fn expired_deadlines_are_reported_not_executed() {
    let svc = QueryService::start(data::sorted(10_000, DOMAIN), ServerConfig::default());
    let request = Request {
        predicate: RangePredicate::between(0, DOMAIN),
        agg: AggKind::Count,
        deadline: Some(Instant::now() - Duration::from_millis(1)),
    };
    let reply = svc.submit(request).expect("admitted").wait();
    assert_eq!(reply, Reply::DeadlineMissed);
    let stats = svc.shutdown();
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.queries, 0);
}

#[test]
fn burst_overload_sheds_explicitly_and_loses_nothing() {
    // A burst far beyond the queue bound: every submission must either be
    // admitted (and answered) or shed (and counted) — never block, never
    // vanish.
    let column = data::uniform(ROWS, DOMAIN, 77);
    let svc = QueryService::start(
        column.clone(),
        ServerConfig {
            readers: 2,
            queue_capacity: 4,
            adaptation: AdaptationMode::Async,
            ..ServerConfig::default()
        },
    );
    let pred = RangePredicate::between(100, 2_000);
    let want = execute_reference(&column, pred, AggKind::Count);

    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..500 * iters() {
        match svc.submit(Request::new(pred, AggKind::Count)) {
            Ok(t) => tickets.push(t),
            Err(_) => shed += 1,
        }
    }
    let answered = tickets.len() as u64;
    for t in tickets {
        match t.wait() {
            Reply::Answer { answer, .. } => assert_eq!(answer.count, want.count),
            Reply::DeadlineMissed => panic!("no deadline set"),
        }
    }

    let stats = svc.shutdown();
    assert_eq!(stats.queries, answered);
    assert_eq!(stats.shed, shed);
    assert_eq!(answered + shed, 500 * iters() as u64);
}

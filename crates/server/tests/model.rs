//! Model-checked protocol suites: the concurrency protocols of the
//! server — snapshot publish/read, lane isolation, queue admission,
//! shutdown drain, stats, reorg publication, and mutation
//! (delta-publication and compaction) — exhaustively verified at small
//! scale by `ads-check`.
//!
//! Built only under `--features check`, which swaps every primitive the
//! server imports through `src/sync.rs` for the recording shims — these
//! tests drive the *production* `SnapshotCell` / `ShardedCell` /
//! `Bounded` / `StatsCollector` code, not models of it. Every
//! interleaving and every weak-memory-legal read visibility within the
//! configured bounds is explored; a single failing execution panics the
//! test with the violating trace.
//!
//! The final suite seeds a known bug (the generation read downgraded to
//! `Relaxed`, the shape PR 2's snapshot cache would have had without its
//! Acquire) and asserts the checker *finds* it — the soundness witness
//! for everything above.

#![cfg(feature = "check")]

use ads_check::sync::atomic::{AtomicU64, Ordering};
use ads_check::sync::{thread, Arc};
use ads_check::{model, try_model, Config};
use ads_core::adaptive::{AdaptiveConfig, AdaptiveZonemap, TierMode};
use ads_core::{RangeObservation, RangePredicate, ScanObservation, SkippingIndex};
use ads_server::{Bounded, PushError, ShardSnapshot, ShardedCell, SnapshotCell, StatsCollector};
use ads_storage::{DeleteVector, SharedColumn};

// ------------------------------------------------- SnapshotCell publish/read

/// The publish/read protocol: a reader's cache never observes a
/// generation ahead of its snapshot payload. Payload u64 = publication
/// number, so the invariant is `*snap >= recorded generation`.
#[test]
fn snapshot_cell_reader_never_ahead_of_payload() {
    let explored = model(|| {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            c2.publish(1);
            c2.publish(2);
        });
        let mut cache = cell.cache();
        for _ in 0..2 {
            let v = **cache.refresh(&cell);
            let g = cache.generation();
            assert!(
                v >= g,
                "cache recorded generation {g} but payload is {v}: \
                 the Acquire/Release pair is broken"
            );
        }
        writer.join().unwrap();
        // After the join, everything is synchronized: the reader must
        // observe the final publication.
        assert_eq!(**cache.refresh(&cell), 2);
        assert_eq!(cell.generation(), 2);
    });
    assert!(explored.executions > 1, "explored {explored:?}");
}

/// Observed snapshot versions are monotone: a refresh never goes
/// backwards, no matter how publications interleave with it.
#[test]
fn snapshot_cell_refresh_is_monotone() {
    model(|| {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            c2.publish(1);
            c2.publish(2);
        });
        let mut cache = cell.cache();
        let mut last = **cache.current();
        for _ in 0..2 {
            let v = **cache.refresh(&cell);
            assert!(v >= last, "snapshot went backwards: {last} -> {v}");
            last = v;
        }
        writer.join().unwrap();
    });
}

/// Two concurrent readers each hold the invariant independently (reader
/// caches share no state).
#[test]
fn snapshot_cell_two_readers() {
    model(|| {
        let cell = Arc::new(SnapshotCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || c2.publish(1));
        let c3 = Arc::clone(&cell);
        let reader = thread::spawn(move || {
            let mut cache = cell3_refresh_once(&c3);
            let v = **cache.refresh(&c3);
            assert!(v >= cache.generation());
        });
        let mut cache = cell.cache();
        let v = **cache.refresh(&cell);
        assert!(v >= cache.generation());
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

/// Helper keeping the closure above readable: a fresh cache for `cell`.
fn cell3_refresh_once(cell: &SnapshotCell<u64>) -> ads_server::SnapshotCache<u64> {
    cell.cache()
}

// ----------------------------------------------- ShardedCell lane isolation

fn shard_snap(start: usize, rows: usize, version: u64) -> ShardSnapshot<i64> {
    ShardSnapshot {
        data: SharedColumn::new((0..rows as i64).collect()),
        delete: Arc::new(DeleteVector::new(rows, version)),
        zonemap: AdaptiveZonemap::new(rows, AdaptiveConfig::default()),
        start,
        version,
    }
}

/// Publishing into lane 1 never perturbs lane 0: under every
/// interleaving the untouched lane's generation stays 0 and a reader's
/// cached Arc for it stays the same allocation.
#[test]
fn sharded_cell_publish_isolates_lanes() {
    model(|| {
        let cell = Arc::new(ShardedCell::new(vec![
            shard_snap(0, 4, 0),
            shard_snap(4, 4, 0),
        ]));
        let mut cache = cell.cache();
        let lane0_before = std::sync::Arc::as_ptr(cache.lanes()[0].current());

        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || c2.publish_shard(1, shard_snap(4, 4, 1)));

        cache.refresh(&cell);
        assert_eq!(
            std::sync::Arc::as_ptr(cache.lanes()[0].current()),
            lane0_before,
            "publishing lane 1 invalidated lane 0's cached Arc"
        );
        assert_eq!(cache.lanes()[0].generation(), 0);
        let lane1 = cache.lanes()[1].current();
        assert!(lane1.version <= 1);
        assert!(lane1.version as u64 >= cache.lanes()[1].generation());

        writer.join().unwrap();
        cache.refresh(&cell);
        assert_eq!(cache.lanes()[1].current().version, 1);
        assert_eq!(cell.generations(), vec![0, 1]);
    });
}

// ------------------------------------------------------ Bounded queue

/// Delivery: everything two concurrent producers push is popped exactly
/// once — no loss, no duplication — and the drain sum proves it.
#[test]
fn queue_no_lost_or_duplicated_items() {
    model(|| {
        let q = Arc::new(Bounded::new(2));
        let q1 = Arc::clone(&q);
        let p1 = thread::spawn(move || q1.try_push(1u64).is_ok());
        let q2 = Arc::clone(&q);
        let p2 = thread::spawn(move || q2.try_push(2u64).is_ok());
        let accepted = [p1.join().unwrap(), p2.join().unwrap()];
        // Capacity 2 and exactly 2 pushes: nothing can be shed.
        assert_eq!(accepted, [true, true]);
        let mut sum = 0u64;
        for _ in 0..2 {
            sum += q.pop().expect("accepted item lost");
        }
        assert_eq!(sum, 3, "items lost or duplicated");
        q.close();
        assert_eq!(q.pop(), None);
    });
}

/// Shedding: with capacity 1, two concurrent pushes admit at least one
/// item; a rejected push always reports Full (not a silent drop), and
/// exactly the accepted items come back out.
#[test]
fn queue_sheds_only_when_full() {
    model(|| {
        let q = Arc::new(Bounded::new(1));
        let q1 = Arc::clone(&q);
        let p1 = thread::spawn(move || match q1.try_push(1u64) {
            Ok(()) => 1u64,
            Err(PushError::Full(v)) => {
                assert_eq!(v, 1, "shed must hand the item back");
                0
            }
            Err(PushError::Closed(_)) => panic!("queue closed early"),
        });
        let q2 = Arc::clone(&q);
        let p2 = thread::spawn(move || match q2.try_push(2u64) {
            Ok(()) => 1u64,
            Err(PushError::Full(v)) => {
                assert_eq!(v, 2, "shed must hand the item back");
                0
            }
            Err(PushError::Closed(_)) => panic!("queue closed early"),
        });
        let accepted = p1.join().unwrap() + p2.join().unwrap();
        assert!(accepted >= 1, "capacity-1 queue shed both pushes");
        for _ in 0..accepted {
            assert!(q.pop().is_some(), "accepted item lost");
        }
        q.close();
        assert_eq!(q.pop(), None, "popped more than was accepted");
    });
}

/// FIFO: one producer's order is preserved through a concurrent
/// blocking consumer (exercises the condvar wait/notify path under all
/// interleavings).
#[test]
fn queue_fifo_through_blocking_consumer() {
    model(|| {
        let q = Arc::new(Bounded::new(2));
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let a = qc.pop().expect("open queue returned None");
            let b = qc.pop().expect("open queue returned None");
            (a, b)
        });
        q.try_push(1u64).unwrap();
        q.try_push(2u64).unwrap();
        let (a, b) = consumer.join().unwrap();
        assert_eq!((a, b), (1, 2), "FIFO order violated");
    });
}

// ------------------------------------------------- graceful shutdown drain

/// The shutdown contract: close() concurrent with a draining consumer
/// never drops accepted work — the consumer receives every queued item
/// (in order) and then None, under every interleaving.
#[test]
fn shutdown_drains_accepted_work() {
    model(|| {
        let q = Arc::new(Bounded::new(4));
        q.try_push(1u64).unwrap();
        q.try_push(2u64).unwrap();
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
            }
            got
        });
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![1, 2], "close dropped accepted work");
        assert_eq!(q.pop(), None, "queue reopened after close");
    });
}

/// close() wakes every blocked consumer (notify_all): two consumers
/// parked on an empty queue both return None instead of deadlocking —
/// the checker reports a lost wakeup as a deadlock failure.
#[test]
fn shutdown_wakes_all_blocked_consumers() {
    model(|| {
        let q = Arc::new(Bounded::<u64>::new(2));
        let q1 = Arc::clone(&q);
        let c1 = thread::spawn(move || q1.pop());
        let q2 = Arc::clone(&q);
        let c2 = thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(c1.join().unwrap(), None);
        assert_eq!(c2.join().unwrap(), None);
    });
}

// --------------------------------------------------- stats / adaptation lag

/// The queued/applied race, pinned: the worker records `queued` *after*
/// handing feedback to the channel, so the maintenance thread can
/// record `applied` first and a concurrent snapshot() can read
/// applied > queued. adaptation_lag must saturate to 0 in that case —
/// never wrap to a huge value.
#[test]
fn stats_adaptation_lag_never_negative() {
    model(|| {
        let stats = Arc::new(StatsCollector::new(1));
        let s1 = Arc::clone(&stats);
        let worker = thread::spawn(move || s1.record_feedback_queued());
        let s2 = Arc::clone(&stats);
        let maint = thread::spawn(move || s2.record_feedback_applied(1));
        let snap = stats.snapshot(0);
        assert!(
            snap.adaptation_lag <= 1,
            "lag wrapped: {} (queued/applied cut raced)",
            snap.adaptation_lag
        );
        worker.join().unwrap();
        maint.join().unwrap();
        let final_snap = stats.snapshot(0);
        assert_eq!(final_snap.adaptation_lag, 0);
        assert_eq!(final_snap.feedback_applied, 1);
    });
}

// ----------------------------------------------------------- seeded bug

/// The snapshot-cache shape with its Acquire generation load downgraded
/// to Relaxed — the bug the `ordering-comment` lint and these suites
/// exist to prevent. The checker MUST find the execution where the
/// reader sees the new generation but stale data; x86 TSO hardware
/// never exhibits it, which is exactly why it needs a model checker.
#[test]
fn seeded_relaxed_generation_read_is_caught() {
    let report = try_model(Config::default(), || {
        let generation = Arc::new(AtomicU64::new(0));
        let payload = Arc::new(AtomicU64::new(0));
        let (g, p) = (Arc::clone(&generation), Arc::clone(&payload));
        let writer = thread::spawn(move || {
            // ordering: Relaxed — publication payload; would be ordered
            // by the Release bump below, as in SnapshotCell::publish.
            p.store(1, Ordering::Relaxed);
            // ordering: Release — publishes the payload store.
            g.store(1, Ordering::Release);
        });
        // ordering: Relaxed — BUG under test: SnapshotCache::refresh
        // without its Acquire. Nothing synchronizes with the writer.
        if generation.load(Ordering::Relaxed) == 1 {
            // ordering: Relaxed — may legally observe the stale 0.
            assert_eq!(
                payload.load(Ordering::Relaxed),
                1,
                "generation visible but payload stale"
            );
        }
        writer.join().unwrap();
    })
    .expect_err("the Relaxed generation read must be caught");
    assert!(report.contains("panicked"), "unexpected report: {report}");
}

/// The corrected pairing (the shape SnapshotCell actually uses) passes
/// the identical harness — the seeded failure above is the ordering's
/// fault, not the harness's.
#[test]
fn corrected_acquire_generation_read_is_clean() {
    model(|| {
        let generation = Arc::new(AtomicU64::new(0));
        let payload = Arc::new(AtomicU64::new(0));
        let (g, p) = (Arc::clone(&generation), Arc::clone(&payload));
        let writer = thread::spawn(move || {
            // ordering: Relaxed — ordered by the Release bump below.
            p.store(1, Ordering::Relaxed);
            // ordering: Release — publishes the payload store.
            g.store(1, Ordering::Release);
        });
        // ordering: Acquire — pairs with the writer's Release, exactly
        // as SnapshotCache::refresh does.
        if generation.load(Ordering::Acquire) == 1 {
            // ordering: Relaxed — ordered by the Acquire load above.
            assert_eq!(payload.load(Ordering::Relaxed), 1);
        }
        writer.join().unwrap();
    });
}

// ------------------------------------------- Reorg publication protocol

/// The 4-row column every reorg-protocol snapshot is built over.
fn reorg_data() -> Vec<i64> {
    vec![3, 1, 2, 0]
}

/// A lane over [`reorg_data`] whose single zone has been promoted to the
/// reorganized layout: one inline query builds the zone, `apply_reorg`
/// promotes it (both on the owner's side, before any publication).
fn reorg_snap(version: u64) -> ShardSnapshot<i64> {
    let data = reorg_data();
    let mut zm = AdaptiveZonemap::new(
        data.len(),
        AdaptiveConfig {
            reorg_after_scans: 1,
            reorg_demote_idle: 1,
            ..AdaptiveConfig::with_reorg()
        },
    );
    let pred = RangePredicate::between(1, 2);
    let outcome = SkippingIndex::prune(&mut zm, &pred);
    let ranges = outcome
        .units()
        .iter()
        .map(|u| {
            let (q, min, max) =
                ads_storage::scan::count_in_range_with_minmax(&data[u.start..u.end], 1, 2);
            RangeObservation::new(*u, q, min, max)
        })
        .collect();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
    let rep = zm.apply_reorg(&data);
    assert_eq!(rep.promoted, 1, "setup must promote the zone");
    ShardSnapshot {
        delete: Arc::new(DeleteVector::new(data.len(), 0)),
        data: SharedColumn::new(data),
        zonemap: zm,
        start: 0,
        version,
    }
}

/// Promotion publishes layout flag and positional payload as ONE snapshot
/// swap: under every interleaving a refreshing reader sees either the old
/// all-flat lane or the new lane with exactly its promoted zone + payload
/// — never a torn mixture (version/state coupling proves atomicity).
#[test]
fn reorg_promotion_publishes_layout_and_payload_atomically() {
    model(|| {
        let cell = Arc::new(ShardedCell::new(vec![shard_snap(0, 4, 0)]));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || c2.publish_shard(0, reorg_snap(1)));
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let snap = cache.lanes()[0].current();
        if snap.version == 0 {
            assert_eq!(
                snap.zonemap.zones_reorganized(),
                0,
                "pre-reorg snapshot carries a reorganized layout flag"
            );
        } else {
            assert_eq!(
                snap.zonemap.zones_reorganized(),
                1,
                "post-reorg snapshot lost its payload"
            );
            // The flag is backed by a live payload: a shared prune
            // resolves the predicate positionally, with the right rows.
            let out = snap.zonemap.prune_shared(&RangePredicate::between(1, 2));
            assert_eq!(out.reorg_units.len(), 1, "layout flag without payload");
        }
        writer.join().unwrap();
        cache.refresh(&cell);
        assert_eq!(cache.lanes()[0].current().zonemap.zones_reorganized(), 1);
    });
}

/// Demotion on the owner's authoritative copy cannot race a reader's held
/// snapshot: the payload Arc is shared copy-on-write, so dropping the
/// owner's reference (and republishing a flat lane) leaves the reader's
/// positional zone fully usable under every interleaving.
#[test]
fn reorg_demotion_cannot_invalidate_a_held_snapshot() {
    model(|| {
        let snap = reorg_snap(1);
        // The owner's authoritative copy shares the payload Arc with the
        // snapshot about to be published.
        let owner_zm = snap.zonemap.clone();
        let cell = Arc::new(ShardedCell::new(vec![snap]));
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let held = std::sync::Arc::clone(cache.lanes()[0].current());

        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            let mut zm = owner_zm;
            let data = reorg_data();
            // A bounds-skipping prune ages the zone past the idle
            // threshold; the next reorg pass demotes it, dropping the
            // owner's payload reference.
            let miss = RangePredicate::between(100, 200);
            let _ = SkippingIndex::prune(&mut zm, &miss);
            let rep = zm.apply_reorg(&data);
            assert_eq!(rep.demoted, 1, "owner must demote the idle zone");
            c2.publish_shard(
                0,
                ShardSnapshot {
                    delete: Arc::new(DeleteVector::new(data.len(), 0)),
                    data: SharedColumn::new(data),
                    zonemap: zm,
                    start: 0,
                    version: 2,
                },
            );
        });

        // Concurrent with the demotion: the held snapshot keeps answering
        // positionally, with correct row coverage.
        assert_eq!(held.zonemap.zones_reorganized(), 1);
        let out = held.zonemap.prune_shared(&RangePredicate::between(1, 2));
        assert_eq!(out.reorg_units.len(), 1);
        let unit = &out.reorg_units[0];
        assert_eq!(unit.zone.start, 0);
        assert_eq!(unit.zone.end, 4);

        writer.join().unwrap();
        cache.refresh(&cell);
        let fresh = cache.lanes()[0].current();
        assert_eq!(fresh.version, 2);
        assert_eq!(fresh.zonemap.zones_reorganized(), 0, "demotion published");
    });
}

// ------------------------------------------- Tier publication protocol

/// A lane over [`reorg_data`] whose single zone carries a bloom sketch
/// tier: one inline query earns the scan, `apply_tiers` builds the
/// sketch (both on the owner's side, before any publication). Value 7 is
/// absent from the data and verified rejected by the sketch, so a tier
/// probe for it must skip the zone.
fn tier_snap(version: u64) -> ShardSnapshot<i64> {
    let data = reorg_data();
    let mut zm = AdaptiveZonemap::new(
        data.len(),
        AdaptiveConfig {
            tier_after_scans: 1,
            tier_drop_after: 1,
            ..AdaptiveConfig::with_tier_mode(TierMode::Bloom)
        },
    );
    let pred = RangePredicate::point(2);
    let outcome = SkippingIndex::prune(&mut zm, &pred);
    let ranges = outcome
        .units()
        .iter()
        .map(|u| {
            let (q, min, max) =
                ads_storage::scan::count_in_range_with_minmax(&data[u.start..u.end], 2, 2);
            RangeObservation::new(*u, q, min, max)
        })
        .collect();
    zm.observe(&ScanObservation {
        predicate: pred,
        ranges,
    });
    let rep = zm.apply_tiers(&data);
    assert_eq!(rep.built, 1, "setup must build the sketch");
    ShardSnapshot {
        delete: Arc::new(DeleteVector::new(data.len(), 0)),
        data: SharedColumn::new(data),
        zonemap: zm,
        start: 0,
        version,
    }
}

/// Tier build publishes flag and sketch payload as ONE snapshot swap:
/// under every interleaving a refreshing reader sees either the old
/// untiered lane or the new lane whose sketch actually answers — never a
/// tier flag without its payload.
#[test]
fn tier_build_publishes_flag_and_sketch_atomically() {
    model(|| {
        let cell = Arc::new(ShardedCell::new(vec![shard_snap(0, 4, 0)]));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || c2.publish_shard(0, tier_snap(1)));
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let snap = cache.lanes()[0].current();
        if snap.version == 0 {
            assert_eq!(
                snap.zonemap.zones_tiered(),
                0,
                "pre-tier snapshot carries a tier flag"
            );
        } else {
            assert_eq!(
                snap.zonemap.zones_tiered(),
                1,
                "published lane lost its tier"
            );
            // The flag is backed by a live sketch: a shared prune for the
            // absent value 7 is excluded by the tier, not scanned (the
            // zone's [0, 3] bounds overlap the probe, so only the sketch
            // can have skipped it).
            let out = snap.zonemap.prune_shared(&RangePredicate::point(7));
            assert_eq!(out.zones_skipped, 1, "tier flag without a payload");
            assert!(out.units().is_empty(), "sketch present but not consulted");
        }
        writer.join().unwrap();
        cache.refresh(&cell);
        assert_eq!(cache.lanes()[0].current().zonemap.zones_tiered(), 1);
    });
}

/// Dropping a tier on the owner's authoritative copy cannot race a
/// reader's held snapshot: the sketch Arc is shared copy-on-write, so
/// the owner retiring its reference (and republishing an untiered lane)
/// leaves the reader's sketch fully usable under every interleaving.
#[test]
fn tier_drop_cannot_invalidate_a_held_snapshot() {
    model(|| {
        let snap = tier_snap(1);
        // The owner's authoritative copy shares the sketch Arc with the
        // snapshot about to be published.
        let owner_zm = snap.zonemap.clone();
        let cell = Arc::new(ShardedCell::new(vec![snap]));
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let held = std::sync::Arc::clone(cache.lanes()[0].current());

        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            let mut zm = owner_zm;
            let data = reorg_data();
            // A hitless consultation: value 3 is present, so the sketch
            // admits it and the zone scans anyway. The 1-probe drop
            // window then judges the tier useless and retires it.
            let _ = SkippingIndex::prune(&mut zm, &RangePredicate::point(3));
            let rep = zm.apply_tiers(&data);
            assert_eq!(rep.dropped, 1, "owner must drop the hitless tier");
            c2.publish_shard(
                0,
                ShardSnapshot {
                    delete: Arc::new(DeleteVector::new(data.len(), 0)),
                    data: SharedColumn::new(data),
                    zonemap: zm,
                    start: 0,
                    version: 2,
                },
            );
        });

        // Concurrent with the drop: the held snapshot keeps consulting
        // its sketch, still excluding the absent value.
        assert_eq!(held.zonemap.zones_tiered(), 1);
        let out = held.zonemap.prune_shared(&RangePredicate::point(7));
        assert_eq!(out.zones_skipped, 1);
        assert!(out.units().is_empty());

        writer.join().unwrap();
        cache.refresh(&cell);
        let fresh = cache.lanes()[0].current();
        assert_eq!(fresh.version, 2);
        assert_eq!(fresh.zonemap.zones_tiered(), 0, "drop published");
    });
}

// ------------------------------------------------ Mutation delta publication

/// Builds the post-mutation snapshot of the delta-publication protocol:
/// same four rows, row 1 tombstoned, delete vector stamped with mutation
/// epoch 1, column republished as version 1.
fn deleted_snap() -> ShardSnapshot<i64> {
    let mut dv = DeleteVector::new(4, 0);
    assert!(dv.delete(1));
    dv.set_epoch(1);
    ShardSnapshot {
        data: SharedColumn::new(vec![10, 11, 12, 13]),
        delete: Arc::new(dv),
        zonemap: AdaptiveZonemap::new(4, AdaptiveConfig::default()),
        start: 0,
        version: 1,
    }
}

/// The delta-publication protocol: data and tombstones travel in ONE
/// snapshot swap, so a reader never observes a delete without the
/// mutation epoch that explains it (or vice versa). Under every
/// interleaving the reader sees exactly the pre state (all live, epoch
/// 0) or exactly the post state (row 1 dead, epoch 1) — never a torn
/// mixture such as a tombstone still stamped epoch 0.
#[test]
fn mutation_delta_publishes_deletes_with_their_epoch() {
    let explored = model(|| {
        let cell = Arc::new(ShardedCell::new(vec![shard_snap(0, 4, 0)]));
        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || c2.publish_shard(0, deleted_snap()));

        let mut cache = cell.cache();
        cache.refresh(&cell);
        let snap = cache.lanes()[0].current();
        if snap.version == 0 {
            assert_eq!(snap.delete.epoch(), 0, "pre snapshot with future epoch");
            assert!(!snap.delete.has_deletes(), "delete leaked into version 0");
            assert_eq!(snap.delete.live_count(), 4);
        } else {
            assert_eq!(snap.version, 1);
            assert_eq!(
                snap.delete.epoch(),
                1,
                "reader observed a delete batch without its epoch"
            );
            assert!(snap.delete.is_deleted(1), "epoch moved without its delete");
            assert_eq!(snap.delete.live_count(), 3);
        }
        // Either way the pair is internally consistent: the vector covers
        // exactly the rows of the column it was published with.
        assert_eq!(snap.delete.len(), snap.data.as_slice().len());

        writer.join().unwrap();
        cache.refresh(&cell);
        let fin = cache.lanes()[0].current();
        assert_eq!(fin.version, 1);
        assert_eq!(fin.delete.epoch(), 1);
        assert_eq!(fin.delete.live_count(), 3);
    });
    assert!(explored.executions > 1, "explored {explored:?}");
}

// ------------------------------------------------------ Compaction snapshots

/// The compaction protocol: compaction repacks live rows into a fresh
/// column + all-live delete vector and publishes the result as a new
/// snapshot; a reader holding the pre-compaction Arc keeps a fully
/// consistent view (4 rows, 1 tombstone, 3 live) under every
/// interleaving — compaction can never invalidate a held snapshot.
#[test]
fn compaction_cannot_invalidate_a_held_snapshot() {
    model(|| {
        let cell = Arc::new(ShardedCell::new(vec![deleted_snap()]));
        let mut cache = cell.cache();
        cache.refresh(&cell);
        let held = std::sync::Arc::clone(cache.lanes()[0].current());

        let c2 = Arc::clone(&cell);
        let writer = thread::spawn(move || {
            // Dense repack of the live rows; tombstones reset, epoch kept.
            let mut dv = DeleteVector::new(3, 2);
            dv.set_epoch(2);
            c2.publish_shard(
                0,
                ShardSnapshot {
                    data: SharedColumn::new(vec![10, 12, 13]),
                    delete: Arc::new(dv),
                    zonemap: AdaptiveZonemap::new(3, AdaptiveConfig::default()),
                    start: 0,
                    version: 2,
                },
            );
        });

        // Concurrent with compaction: the held snapshot still answers in
        // its own coordinate system, tombstone mask intact.
        assert_eq!(held.data.as_slice(), &[10, 11, 12, 13]);
        assert_eq!(held.delete.len(), 4);
        assert!(held.delete.is_deleted(1));
        assert_eq!(held.delete.live_count(), 3);
        let live: Vec<i64> = held
            .data
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(i, _)| !held.delete.is_deleted(*i))
            .map(|(_, &v)| v)
            .collect();
        assert_eq!(live, vec![10, 12, 13]);

        writer.join().unwrap();
        cache.refresh(&cell);
        let fresh = cache.lanes()[0].current();
        assert_eq!(fresh.version, 2);
        assert_eq!(fresh.data.as_slice(), &[10, 12, 13]);
        assert!(!fresh.delete.has_deletes(), "compaction left tombstones");
        assert_eq!(fresh.delete.len(), 3);
        // The compacted live set is exactly the live set the held
        // snapshot answers with: compaction changed coordinates, not
        // content.
        assert_eq!(fresh.data.as_slice(), live.as_slice());
    });
}

//! A dense bitmap over row positions.
//!
//! Scans produce qualifying rows either as a [`Bitmap`] (one bit per row of
//! the table) or as position lists; bitmaps compose across multi-column
//! conjunctions with word-at-a-time `AND`/`OR`.

/// A fixed-length bitmap addressing rows `0..len`.
///
/// ```
/// use ads_storage::Bitmap;
/// let mut bm = Bitmap::new(100);
/// bm.set_range(10, 20);
/// bm.set(55);
/// assert_eq!(bm.count_ones(), 11);
/// assert_eq!(bm.iter_ones().next(), Some(10));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap addresses zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets all bits in `start..end`.
    ///
    /// # Panics
    /// Panics if `end > len` or `start > end`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds"
        );
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        if first_word == last_word {
            let mask = (u64::MAX << first_bit) & (u64::MAX >> (63 - last_bit));
            self.words[first_word] |= mask;
        } else {
            self.words[first_word] |= u64::MAX << first_bit;
            for w in &mut self.words[first_word + 1..last_word] {
                *w = u64::MAX;
            }
            self.words[last_word] |= u64::MAX >> (63 - last_bit);
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in OR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Grows the bitmap to `new_len` bits; new bits are zero.
    ///
    /// # Panics
    /// Panics if `new_len < len` (bitmaps never shrink).
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "bitmap cannot shrink");
        self.len = new_len;
        self.words.resize(new_len.div_ceil(64), 0);
    }

    /// Iterator over the positions of set bits, in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set-bit positions into a vector.
    pub fn to_positions(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.count_ones());
        v.extend(self.iter_ones().map(|p| p as u32));
        v
    }

    /// Zeroes any bits past `len` in the final word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail_bits);
            }
        }
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count_ones())
    }
}

/// Iterator over set-bit positions of a [`Bitmap`].
pub struct Ones<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(99));
    }

    #[test]
    fn ones_is_all_one_with_exact_count() {
        let bm = Bitmap::ones(100);
        assert_eq!(bm.count_ones(), 100);
        assert!(bm.get(99));
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn set_range_within_word() {
        let mut bm = Bitmap::new(64);
        bm.set_range(3, 7);
        assert_eq!(bm.to_positions(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn set_range_across_words() {
        let mut bm = Bitmap::new(200);
        bm.set_range(60, 135);
        assert_eq!(bm.count_ones(), 75);
        assert!(bm.get(60) && bm.get(134));
        assert!(!bm.get(59) && !bm.get(135));
    }

    #[test]
    fn set_range_empty_is_noop() {
        let mut bm = Bitmap::new(64);
        bm.set_range(5, 5);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn set_range_full() {
        let mut bm = Bitmap::new(190);
        bm.set_range(0, 190);
        assert_eq!(bm.count_ones(), 190);
    }

    #[test]
    fn and_or_not() {
        let mut a = Bitmap::new(70);
        a.set_range(0, 40);
        let mut b = Bitmap::new(70);
        b.set_range(30, 70);

        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.count_ones(), 10);

        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.count_ones(), 70);

        a.not_assign();
        assert_eq!(a.count_ones(), 30);
        assert!(a.get(40) && !a.get(39));
    }

    #[test]
    fn not_masks_tail_bits() {
        let mut bm = Bitmap::new(65);
        bm.not_assign();
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn grow_keeps_existing_bits() {
        let mut bm = Bitmap::new(10);
        bm.set(9);
        bm.grow(200);
        assert_eq!(bm.len(), 200);
        assert!(bm.get(9));
        assert!(!bm.get(150));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn iter_ones_order() {
        let mut bm = Bitmap::new(300);
        for i in [0usize, 63, 64, 128, 299] {
            bm.set(i);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 128, 299]);
    }

    #[test]
    fn iter_ones_empty() {
        let bm = Bitmap::new(0);
        assert_eq!(bm.iter_ones().count(), 0);
    }
}

//! A dense bitmap over row positions.
//!
//! Scans produce qualifying rows either as a [`Bitmap`] (one bit per row of
//! the table) or as position lists; bitmaps compose across multi-column
//! conjunctions with word-at-a-time `AND`/`OR`.

/// A fixed-length bitmap addressing rows `0..len`.
///
/// ```
/// use ads_storage::Bitmap;
/// let mut bm = Bitmap::new(100);
/// bm.set_range(10, 20);
/// bm.set(55);
/// assert_eq!(bm.count_ones(), 11);
/// assert_eq!(bm.iter_ones().next(), Some(10));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitmap of `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut bm = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap addresses zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit {i} out of bounds for bitmap of {} bits",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The mask covering bits `first..=last` of one word.
    #[inline]
    fn word_mask(first_bit: usize, last_bit: usize) -> u64 {
        debug_assert!(first_bit <= last_bit && last_bit < 64);
        (u64::MAX << first_bit) & (u64::MAX >> (63 - last_bit))
    }

    /// ORs a whole 64-bit `mask` into word `word_idx` — the aligned fast
    /// path the block scan kernels use: one store per 64 rows.
    ///
    /// # Panics
    /// Panics if any set bit of `mask` addresses a bit at or past `len`.
    #[inline]
    pub fn or_word_at(&mut self, word_idx: usize, mask: u64) {
        let top = 64 * word_idx + (64 - mask.leading_zeros() as usize);
        assert!(
            mask == 0 || top <= self.len,
            "mask bit {} out of bounds for bitmap of {} bits",
            top - 1,
            self.len
        );
        if mask != 0 {
            self.words[word_idx] |= mask;
        }
    }

    /// ORs a 64-bit `mask` into the bitmap starting at bit `bit`: mask bit
    /// `i` lands on bitmap bit `bit + i`. Word-aligned calls take the
    /// single-store [`Bitmap::or_word_at`] path; unaligned calls split the
    /// mask across two adjacent words.
    ///
    /// # Panics
    /// Panics if any set bit of `mask` addresses a bit at or past `len`.
    #[inline]
    pub fn or_mask_at(&mut self, bit: usize, mask: u64) {
        let (word_idx, shift) = (bit / 64, bit % 64);
        if shift == 0 {
            self.or_word_at(word_idx, mask);
        } else {
            self.or_word_at(word_idx, mask << shift);
            self.or_word_at(word_idx + 1, mask >> (64 - shift));
        }
    }

    /// Sets all bits in `start..end`.
    ///
    /// # Panics
    /// Panics if `end > len` or `start > end`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds"
        );
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        if first_word == last_word {
            self.words[first_word] |= Self::word_mask(first_bit, last_bit);
        } else {
            self.words[first_word] |= Self::word_mask(first_bit, 63);
            for w in &mut self.words[first_word + 1..last_word] {
                *w = u64::MAX;
            }
            self.words[last_word] |= Self::word_mask(0, last_bit);
        }
    }

    /// In-place word-wise intersection with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn intersect_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in AND");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place word-wise union with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch in OR");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// Reads the 64-bit window starting at bit `bit`: result bit `i` is
    /// bitmap bit `bit + i`, with bits at or past `len` reading as zero.
    /// The unaligned companion of [`Bitmap::or_mask_at`], used by the
    /// delete-vector masking path to cover one 64-row scan block in two
    /// word reads.
    #[inline]
    pub fn window_at(&self, bit: usize) -> u64 {
        if bit >= self.len {
            return 0;
        }
        let (word_idx, shift) = (bit / 64, bit % 64);
        let lo = self.words[word_idx] >> shift;
        let hi = if shift == 0 {
            0
        } else {
            self.words.get(word_idx + 1).copied().unwrap_or(0) << (64 - shift)
        };
        let mut window = lo | hi;
        // Bits past len read as zero even when the backing word has slack.
        let remaining = self.len - bit;
        if remaining < 64 {
            window &= u64::MAX >> (64 - remaining);
        }
        window
    }

    /// Number of set bits in `start..end`, computed word-at-a-time.
    ///
    /// # Panics
    /// Panics if `end > len` or `start > end`.
    pub fn count_ones_in_range(&self, start: usize, end: usize) -> usize {
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds"
        );
        if start == end {
            return 0;
        }
        let (first_word, first_bit) = (start / 64, start % 64);
        let (last_word, last_bit) = ((end - 1) / 64, (end - 1) % 64);
        if first_word == last_word {
            return (self.words[first_word] & Self::word_mask(first_bit, last_bit)).count_ones()
                as usize;
        }
        let mut total =
            (self.words[first_word] & Self::word_mask(first_bit, 63)).count_ones() as usize;
        for w in &self.words[first_word + 1..last_word] {
            total += w.count_ones() as usize;
        }
        total + (self.words[last_word] & Self::word_mask(0, last_bit)).count_ones() as usize
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Grows the bitmap to `new_len` bits; new bits are zero.
    ///
    /// # Panics
    /// Panics if `new_len < len` (bitmaps never shrink).
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "bitmap cannot shrink");
        self.len = new_len;
        self.words.resize(new_len.div_ceil(64), 0);
    }

    /// Iterator over the positions of set bits, in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterator over the non-zero words as `(word_idx, word)`, in
    /// increasing word order. The word-wise consumption primitive: callers
    /// decode set bits with a `trailing_zeros` loop and skip zero words
    /// (the common case after selective pruning) at 64 rows per test.
    pub fn iter_set_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w != 0)
            .map(|(i, &w)| (i, w))
    }

    /// Collects the set-bit positions into a vector.
    ///
    /// # Panics
    /// Panics if the bitmap addresses rows past the `u32` position ceiling
    /// (see [`crate::scan::MAX_ADDRESSABLE_ROWS`]).
    pub fn to_positions(&self) -> Vec<u32> {
        assert!(
            self.len <= u32::MAX as usize + 1,
            "bitmap of {} bits exceeds the u32 position ceiling",
            self.len
        );
        let mut v = Vec::with_capacity(self.count_ones());
        for (w, word) in self.iter_set_words() {
            let base = (w * 64) as u32;
            let mut m = word;
            while m != 0 {
                v.push(base + m.trailing_zeros());
                m &= m - 1; // clear lowest set bit
            }
        }
        v
    }

    /// Zeroes any bits past `len` in the final word so popcounts stay exact.
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail_bits);
            }
        }
    }
}

impl std::fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap(len={}, ones={})", self.len, self.count_ones())
    }
}

/// Iterator over set-bit positions of a [`Bitmap`].
pub struct Ones<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let bm = Bitmap::new(100);
        assert_eq!(bm.len(), 100);
        assert_eq!(bm.count_ones(), 0);
        assert!(!bm.get(0));
        assert!(!bm.get(99));
    }

    #[test]
    fn ones_is_all_one_with_exact_count() {
        let bm = Bitmap::ones(100);
        assert_eq!(bm.count_ones(), 100);
        assert!(bm.get(99));
    }

    #[test]
    fn set_get_clear() {
        let mut bm = Bitmap::new(130);
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert_eq!(bm.count_ones(), 3);
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    fn set_range_within_word() {
        let mut bm = Bitmap::new(64);
        bm.set_range(3, 7);
        assert_eq!(bm.to_positions(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn set_range_across_words() {
        let mut bm = Bitmap::new(200);
        bm.set_range(60, 135);
        assert_eq!(bm.count_ones(), 75);
        assert!(bm.get(60) && bm.get(134));
        assert!(!bm.get(59) && !bm.get(135));
    }

    #[test]
    fn set_range_empty_is_noop() {
        let mut bm = Bitmap::new(64);
        bm.set_range(5, 5);
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn set_range_full() {
        let mut bm = Bitmap::new(190);
        bm.set_range(0, 190);
        assert_eq!(bm.count_ones(), 190);
    }

    #[test]
    fn and_or_not() {
        let mut a = Bitmap::new(70);
        a.set_range(0, 40);
        let mut b = Bitmap::new(70);
        b.set_range(30, 70);

        let mut and = a.clone();
        and.intersect_with(&b);
        assert_eq!(and.count_ones(), 10);

        let mut or = a.clone();
        or.union_with(&b);
        assert_eq!(or.count_ones(), 70);

        a.not_assign();
        assert_eq!(a.count_ones(), 30);
        assert!(a.get(40) && !a.get(39));
    }

    #[test]
    fn not_masks_tail_bits() {
        let mut bm = Bitmap::new(65);
        bm.not_assign();
        assert_eq!(bm.count_ones(), 65);
    }

    #[test]
    fn grow_keeps_existing_bits() {
        let mut bm = Bitmap::new(10);
        bm.set(9);
        bm.grow(200);
        assert_eq!(bm.len(), 200);
        assert!(bm.get(9));
        assert!(!bm.get(150));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn iter_ones_order() {
        let mut bm = Bitmap::new(300);
        for i in [0usize, 63, 64, 128, 299] {
            bm.set(i);
        }
        let got: Vec<usize> = bm.iter_ones().collect();
        assert_eq!(got, vec![0, 63, 64, 128, 299]);
    }

    #[test]
    fn iter_ones_empty() {
        let bm = Bitmap::new(0);
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn or_word_at_aligned() {
        let mut bm = Bitmap::new(200);
        bm.or_word_at(1, 0b1011);
        assert_eq!(bm.to_positions(), vec![64, 65, 67]);
        bm.or_word_at(0, 0); // no-op, in bounds by construction
        assert_eq!(bm.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn or_word_at_rejects_mask_past_len() {
        let mut bm = Bitmap::new(70);
        bm.or_word_at(1, 1 << 10); // bit 74
    }

    #[test]
    fn or_mask_at_unaligned_splits_words() {
        let mut bm = Bitmap::new(200);
        bm.or_mask_at(60, 0b1_0011);
        assert_eq!(bm.to_positions(), vec![60, 61, 64]);
        // Equivalent to per-bit sets.
        let mut per_bit = Bitmap::new(200);
        for p in [60usize, 61, 64] {
            per_bit.set(p);
        }
        assert_eq!(bm, per_bit);
    }

    #[test]
    fn or_mask_at_matches_per_bit_everywhere() {
        for start in [0usize, 1, 63, 64, 65, 100] {
            let mask = 0x8000_0000_0000_0001u64; // bits 0 and 63
            let mut word_wise = Bitmap::new(256);
            word_wise.or_mask_at(start, mask);
            let mut per_bit = Bitmap::new(256);
            per_bit.set(start);
            per_bit.set(start + 63);
            assert_eq!(word_wise, per_bit, "start={start}");
        }
    }

    #[test]
    fn union_intersect_match_per_bit_reference() {
        let mut a = Bitmap::new(150);
        let mut b = Bitmap::new(150);
        for i in (0..150).step_by(3) {
            a.set(i);
        }
        for i in (0..150).step_by(5) {
            b.set(i);
        }
        let mut union = a.clone();
        union.union_with(&b);
        let mut inter = a.clone();
        inter.intersect_with(&b);
        for i in 0..150 {
            assert_eq!(union.get(i), a.get(i) || b.get(i), "union bit {i}");
            assert_eq!(inter.get(i), a.get(i) && b.get(i), "intersect bit {i}");
        }
    }

    #[test]
    fn iter_set_words_skips_zero_words() {
        let mut bm = Bitmap::new(300);
        bm.set(2);
        bm.set(130);
        let words: Vec<(usize, u64)> = bm.iter_set_words().collect();
        assert_eq!(words, vec![(0, 1 << 2), (2, 1 << 2)]);
    }

    #[test]
    fn window_at_matches_per_bit_reference() {
        let mut bm = Bitmap::new(150);
        for i in (0..150).step_by(7) {
            bm.set(i);
        }
        for start in [0usize, 1, 63, 64, 65, 100, 140, 149, 150, 200] {
            let window = bm.window_at(start);
            for i in 0..64 {
                let want = start + i < 150 && bm.get(start + i);
                assert_eq!((window >> i) & 1 == 1, want, "start={start} bit={i}");
            }
        }
    }

    #[test]
    fn window_at_zero_pads_past_len() {
        let bm = Bitmap::ones(70);
        assert_eq!(bm.window_at(64), u64::MAX >> 58); // 6 live bits
        assert_eq!(bm.window_at(70), 0);
        assert_eq!(bm.window_at(1000), 0);
    }

    #[test]
    fn count_ones_in_range_matches_reference() {
        let mut bm = Bitmap::new(300);
        for i in (0..300).step_by(3) {
            bm.set(i);
        }
        for (start, end) in [(0, 0), (0, 300), (5, 70), (63, 65), (64, 128), (297, 300)] {
            let want = (start..end).filter(|&i| bm.get(i)).count();
            assert_eq!(bm.count_ones_in_range(start, end), want, "{start}..{end}");
        }
    }

    #[test]
    fn set_range_matches_per_bit_reference_around_word_boundaries() {
        for start in [0usize, 1, 62, 63, 64, 65] {
            for end in [start, start + 1, start + 63, start + 64, start + 65] {
                let mut ranged = Bitmap::new(256);
                ranged.set_range(start, end);
                let mut per_bit = Bitmap::new(256);
                for i in start..end {
                    per_bit.set(i);
                }
                assert_eq!(ranged, per_bit, "range {start}..{end}");
            }
        }
    }
}

//! Error types for the storage layer.

use std::fmt;

/// Errors produced by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A named column was not found in a table.
    ColumnNotFound(String),
    /// A named table was not found in the catalog.
    TableNotFound(String),
    /// A column was accessed as the wrong type.
    TypeMismatch {
        /// Column that was mis-accessed.
        column: String,
        /// Type the column actually holds.
        expected: &'static str,
        /// Type the caller asked for.
        actual: &'static str,
    },
    /// Appended columns did not all have the same length.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Number of rows actually supplied.
        actual: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the table/column.
        len: usize,
    },
    /// A table with the same name already exists.
    DuplicateTable(String),
    /// A column with the same name already exists.
    DuplicateColumn(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on column {column}: stored {expected}, requested {actual}"
            ),
            StorageError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} rows, got {actual}")
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds for length {len}")
            }
            StorageError::DuplicateTable(name) => write!(f, "table already exists: {name}"),
            StorageError::DuplicateColumn(name) => write!(f, "column already exists: {name}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = StorageError::ColumnNotFound("price".into());
        assert_eq!(e.to_string(), "column not found: price");
    }

    #[test]
    fn display_type_mismatch() {
        let e = StorageError::TypeMismatch {
            column: "x".into(),
            expected: "i64",
            actual: "f64",
        };
        assert!(e.to_string().contains("stored i64"));
        assert!(e.to_string().contains("requested f64"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = StorageError::LengthMismatch {
            expected: 10,
            actual: 7,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 10 rows, got 7");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(StorageError::TableNotFound("t".into()));
        assert!(e.to_string().contains('t'));
    }
}

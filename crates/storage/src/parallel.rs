//! Multi-threaded scan helpers built on scoped threads.
//!
//! Large full-table scans partition the input into per-thread chunks; counts
//! and partial aggregates combine associatively. Skip-heavy scans rarely
//! benefit (they touch little data), so parallelism is opt-in via the
//! engine's executor configuration.

use crate::scan;
use crate::types::DataValue;

/// Minimum rows per thread before parallelism pays for thread start-up.
pub const MIN_ROWS_PER_THREAD: usize = 1 << 18;

/// Counts values in `[lo, hi]` using up to `threads` worker threads.
///
/// Falls back to the sequential kernel when the slice is small or
/// `threads <= 1`. Result is identical to [`scan::count_in_range`].
pub fn par_count_in_range<T: DataValue>(data: &[T], lo: T, hi: T, threads: usize) -> usize {
    let usable = effective_threads(data.len(), threads);
    if usable <= 1 {
        return scan::count_in_range(data, lo, hi);
    }
    let chunk = data.len().div_ceil(usable);
    crossbeam::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|c| s.spawn(move |_| scan::count_in_range(c, lo, hi)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).sum()
    })
    .expect("scan scope panicked")
}

/// Sums qualifying values in parallel; returns `(count, sum)`.
pub fn par_sum_in_range<T: DataValue>(data: &[T], lo: T, hi: T, threads: usize) -> (usize, f64) {
    let usable = effective_threads(data.len(), threads);
    if usable <= 1 {
        return scan::sum_in_range(data, lo, hi);
    }
    let chunk = data.len().div_ceil(usable);
    crossbeam::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|c| s.spawn(move |_| scan::sum_in_range(c, lo, hi)))
            .collect();
        handles.into_iter().fold((0usize, 0.0f64), |(ac, asum), h| {
            let (c, sum) = h.join().expect("scan worker panicked");
            (ac + c, asum + sum)
        })
    })
    .expect("scan scope panicked")
}

fn effective_threads(rows: usize, requested: usize) -> usize {
    if requested <= 1 {
        return 1;
    }
    requested.min(rows.div_ceil(MIN_ROWS_PER_THREAD)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_stays_sequential_but_correct() {
        let data: Vec<i64> = (0..1000).collect();
        assert_eq!(par_count_in_range(&data, 100, 199, 8), 100);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let data: Vec<i64> = (0..(MIN_ROWS_PER_THREAD as i64 * 4)).map(|i| i % 997).collect();
        let seq = scan::count_in_range(&data, 100, 500);
        assert_eq!(par_count_in_range(&data, 100, 500, 4), seq);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<i64> = (0..(MIN_ROWS_PER_THREAD as i64 * 3)).map(|i| i % 101).collect();
        let (sc, ss) = scan::sum_in_range(&data, 10, 90);
        let (pc, ps) = par_sum_in_range(&data, 10, 90, 3);
        assert_eq!(sc, pc);
        assert!((ss - ps).abs() < 1e-6);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(10, 1), 1);
        assert_eq!(effective_threads(10, 8), 1);
        assert_eq!(effective_threads(MIN_ROWS_PER_THREAD * 2, 8), 2);
        assert_eq!(effective_threads(MIN_ROWS_PER_THREAD * 100, 8), 8);
    }

    #[test]
    fn empty_input() {
        assert_eq!(par_count_in_range::<i64>(&[], 0, 1, 4), 0);
    }
}

//! Multi-threaded scan helpers built on scoped threads.
//!
//! Two layers live here:
//!
//! * [`par_map`] / [`par_map_weighted`] — a generic per-unit driver: apply
//!   a kernel to every work item across scoped worker threads and return
//!   the results **in item order**, so callers that fold results (answers,
//!   observations) see exactly the sequence a sequential loop would have
//!   produced. Work is split into one contiguous run of items per thread,
//!   balanced by a caller-supplied weight (rows, typically).
//! * [`par_count_in_range`] / [`par_sum_in_range`] — whole-slice
//!   conveniences for callers without a unit structure.
//!
//! Skip-heavy scans rarely benefit (they touch little data), so
//! parallelism is opt-in via the engine's executor policy.

use crate::scan;
use crate::types::DataValue;

/// Minimum rows per thread before parallelism pays for thread start-up.
pub const MIN_ROWS_PER_THREAD: usize = 1 << 18;

/// How many worker threads a workload of `total_weight` rows can keep
/// profitably busy: `requested` clamped so every thread gets at least
/// `min_per_thread` rows (never below 1 thread).
pub fn effective_threads(total_weight: usize, requested: usize, min_per_thread: usize) -> usize {
    if requested <= 1 {
        return 1;
    }
    requested.min(total_weight / min_per_thread.max(1)).max(1)
}

/// Applies `f` to every item of `items` using up to `threads` scoped
/// worker threads, returning results in item order.
///
/// `f` receives `(item_index, &item)`. Each thread processes one
/// contiguous run of items, so result order — and therefore any
/// order-sensitive fold the caller performs (floating-point sums,
/// observation feedback) — is identical to a sequential `items.iter().map`.
pub fn par_map<I, R, F>(items: &[I], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    par_map_weighted(items, threads, |_| 1, f)
}

/// As [`par_map`], balancing the per-thread runs by `weight` (e.g. rows
/// per scan unit) instead of item count.
pub fn par_map_weighted<I, R, F, W>(items: &[I], threads: usize, weight: W, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
    W: Fn(&I) -> usize,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let total: usize = items.iter().map(&weight).sum();
    let threads = threads.min(items.len());
    let per_thread = total.div_ceil(threads).max(1);

    // Cut the item list into contiguous runs of ~per_thread weight.
    let mut runs: Vec<(usize, usize)> = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, it) in items.iter().enumerate() {
        acc += weight(it);
        if acc >= per_thread && i + 1 < items.len() {
            runs.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < items.len() {
        runs.push((start, items.len()));
    }

    let f = &f;
    let mut results: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move || {
                    items[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(off, it)| f(lo + off, it))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            // invariant: worker closures contain no panicking operations;
            // a panic there is a bug worth propagating loudly.
            results.extend(h.join().expect("scan worker panicked"));
        }
    });
    results
}

/// Counts values in `[lo, hi]` using up to `threads` worker threads.
///
/// Falls back to the sequential kernel when the slice is small or
/// `threads <= 1`. Result is identical to [`scan::count_in_range`].
pub fn par_count_in_range<T: DataValue>(data: &[T], lo: T, hi: T, threads: usize) -> usize {
    let usable = effective_threads(data.len(), threads, MIN_ROWS_PER_THREAD);
    if usable <= 1 {
        // live: delete-unaware helper by contract — documented to match
        // `scan::count_in_range`; delete-aware callers mask upstream.
        return scan::count_in_range(data, lo, hi);
    }
    let chunk = data.len().div_ceil(usable);
    let chunks: Vec<&[T]> = data.chunks(chunk).collect();
    // live: same delete-unaware contract.
    par_map(&chunks, usable, |_, c| scan::count_in_range(c, lo, hi))
        .into_iter()
        .sum()
}

/// Sums qualifying values in parallel; returns `(count, sum)`.
pub fn par_sum_in_range<T: DataValue>(data: &[T], lo: T, hi: T, threads: usize) -> (usize, f64) {
    let usable = effective_threads(data.len(), threads, MIN_ROWS_PER_THREAD);
    if usable <= 1 {
        // live: delete-unaware helper by contract, like
        // `par_count_in_range` above.
        return scan::sum_in_range(data, lo, hi);
    }
    let chunk = data.len().div_ceil(usable);
    let chunks: Vec<&[T]> = data.chunks(chunk).collect();
    // live: same delete-unaware contract.
    par_map(&chunks, usable, |_, c| scan::sum_in_range(c, lo, hi))
        .into_iter()
        .fold((0usize, 0.0f64), |(ac, asum), (c, sum)| {
            (ac + c, asum + sum)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranges::RowRange;

    #[test]
    fn small_input_stays_sequential_but_correct() {
        let data: Vec<i64> = (0..1000).collect();
        assert_eq!(par_count_in_range(&data, 100, 199, 8), 100);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let data: Vec<i64> = (0..(MIN_ROWS_PER_THREAD as i64 * 4))
            .map(|i| i % 997)
            .collect();
        let seq = scan::count_in_range(&data, 100, 500);
        assert_eq!(par_count_in_range(&data, 100, 500, 4), seq);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let data: Vec<i64> = (0..(MIN_ROWS_PER_THREAD as i64 * 3))
            .map(|i| i % 101)
            .collect();
        let (sc, ss) = scan::sum_in_range(&data, 10, 90);
        let (pc, ps) = par_sum_in_range(&data, 10, 90, 3);
        assert_eq!(sc, pc);
        assert!((ss - ps).abs() < 1e-6);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(10, 1, MIN_ROWS_PER_THREAD), 1);
        assert_eq!(effective_threads(10, 8, MIN_ROWS_PER_THREAD), 1);
        assert_eq!(
            effective_threads(MIN_ROWS_PER_THREAD * 2, 8, MIN_ROWS_PER_THREAD),
            2
        );
        assert_eq!(
            effective_threads(MIN_ROWS_PER_THREAD * 100, 8, MIN_ROWS_PER_THREAD),
            8
        );
        assert_eq!(
            effective_threads(100, 4, 0),
            4,
            "zero floor never divides by zero"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(par_count_in_range::<i64>(&[], 0, 1, 4), 0);
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |i, &it| {
                assert_eq!(i, it);
                it * 2
            });
            assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_weighted_matches_sequential_on_uneven_units() {
        let data: Vec<i64> = (0..100_000).collect();
        let units = [
            RowRange::new(0, 10),
            RowRange::new(10, 60_000),
            RowRange::new(60_000, 60_001),
            RowRange::new(60_001, 100_000),
        ];
        for threads in [1, 2, 3, 8] {
            let out = par_map_weighted(
                &units,
                threads,
                |u| u.len(),
                |_, u| scan::count_in_range(&data[u.start..u.end], 100, 70_000),
            );
            let seq: Vec<usize> = units
                .iter()
                .map(|u| scan::count_in_range(&data[u.start..u.end], 100, 70_000))
                .collect();
            assert_eq!(out, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_items() {
        let items: Vec<usize> = Vec::new();
        assert!(par_map(&items, 4, |_, &x| x).is_empty());
    }
}

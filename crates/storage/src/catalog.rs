//! A catalog of named tables.

use crate::error::{Result, StorageError};
use crate::table::Table;
use std::collections::BTreeMap;

/// Owns all tables of a store instance.
///
/// `BTreeMap` keeps listing deterministic, which the experiment harness
/// relies on for reproducible report ordering.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table under its own name.
    pub fn register(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Borrows a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Mutably borrows a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Removes a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register(Table::new("a")).unwrap();
        cat.register(Table::new("b")).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.table("a").is_ok());
        assert!(matches!(
            cat.table("c"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn duplicate_rejected() {
        let mut cat = Catalog::new();
        cat.register(Table::new("a")).unwrap();
        assert!(matches!(
            cat.register(Table::new("a")),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn drop_table() {
        let mut cat = Catalog::new();
        cat.register(Table::new("a")).unwrap();
        let t = cat.drop_table("a").unwrap();
        assert_eq!(t.name(), "a");
        assert!(cat.is_empty());
        assert!(cat.drop_table("a").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut cat = Catalog::new();
        cat.register(Table::new("zeta")).unwrap();
        cat.register(Table::new("alpha")).unwrap();
        assert_eq!(cat.table_names().collect::<Vec<_>>(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn mutate_through_catalog() {
        let mut cat = Catalog::new();
        cat.register(Table::new("t")).unwrap();
        cat.table_mut("t")
            .unwrap()
            .add_column("x", crate::column::Column::from_values(vec![1i64]))
            .unwrap();
        assert_eq!(cat.table("t").unwrap().num_rows(), 1);
    }
}

//! Tables: named collections of equal-length columns.

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::types::DataValue;

/// A column of any supported value type.
///
/// The engine dispatches on the variant once per scan and then runs the
/// monomorphised kernels, so dynamic typing costs nothing inside the hot
/// loop.
#[derive(Debug, Clone)]
pub enum AnyColumn {
    /// 32-bit signed integers.
    I32(Column<i32>),
    /// 64-bit signed integers.
    I64(Column<i64>),
    /// 64-bit unsigned integers.
    U64(Column<u64>),
    /// 64-bit floats.
    F64(Column<f64>),
}

impl AnyColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            AnyColumn::I32(c) => c.len(),
            AnyColumn::I64(c) => c.len(),
            AnyColumn::U64(c) => c.len(),
            AnyColumn::F64(c) => c.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Name of the stored value type.
    pub fn type_name(&self) -> &'static str {
        match self {
            AnyColumn::I32(_) => i32::TYPE_NAME,
            AnyColumn::I64(_) => i64::TYPE_NAME,
            AnyColumn::U64(_) => u64::TYPE_NAME,
            AnyColumn::F64(_) => f64::TYPE_NAME,
        }
    }

    /// Heap bytes held by the column.
    pub fn memory_bytes(&self) -> usize {
        match self {
            AnyColumn::I32(c) => c.memory_bytes(),
            AnyColumn::I64(c) => c.memory_bytes(),
            AnyColumn::U64(c) => c.memory_bytes(),
            AnyColumn::F64(c) => c.memory_bytes(),
        }
    }

    /// Borrows as a typed column.
    pub fn as_typed<T: ColumnAccess>(&self) -> Option<&Column<T>> {
        ColumnAccess::from_any(self)
    }

    /// Mutably borrows as a typed column.
    pub fn as_typed_mut<T: ColumnAccess>(&mut self) -> Option<&mut Column<T>> {
        ColumnAccess::from_any_mut(self)
    }
}

impl From<Column<i32>> for AnyColumn {
    fn from(c: Column<i32>) -> Self {
        AnyColumn::I32(c)
    }
}
impl From<Column<i64>> for AnyColumn {
    fn from(c: Column<i64>) -> Self {
        AnyColumn::I64(c)
    }
}
impl From<Column<u64>> for AnyColumn {
    fn from(c: Column<u64>) -> Self {
        AnyColumn::U64(c)
    }
}
impl From<Column<f64>> for AnyColumn {
    fn from(c: Column<f64>) -> Self {
        AnyColumn::F64(c)
    }
}

/// Typed extraction from [`AnyColumn`], implemented per supported type.
pub trait ColumnAccess: DataValue + Sized {
    /// Borrows the matching variant, or `None` on type mismatch.
    fn from_any(col: &AnyColumn) -> Option<&Column<Self>>;
    /// Mutably borrows the matching variant, or `None` on type mismatch.
    fn from_any_mut(col: &mut AnyColumn) -> Option<&mut Column<Self>>;
}

macro_rules! impl_column_access {
    ($($t:ty => $variant:ident),*) => {$(
        impl ColumnAccess for $t {
            fn from_any(col: &AnyColumn) -> Option<&Column<Self>> {
                match col {
                    AnyColumn::$variant(c) => Some(c),
                    _ => None,
                }
            }
            fn from_any_mut(col: &mut AnyColumn) -> Option<&mut Column<Self>> {
                match col {
                    AnyColumn::$variant(c) => Some(c),
                    _ => None,
                }
            }
        }
    )*};
}

impl_column_access!(i32 => I32, i64 => I64, u64 => U64, f64 => F64);

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<(String, AnyColumn)>,
    rows: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
            rows: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Adds a column. On a non-empty table the column must match the
    /// current row count.
    pub fn add_column(&mut self, name: impl Into<String>, col: impl Into<AnyColumn>) -> Result<()> {
        let name = name.into();
        let col = col.into();
        if self.columns.iter().any(|(n, _)| *n == name) {
            return Err(StorageError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && col.len() != self.rows {
            return Err(StorageError::LengthMismatch {
                expected: self.rows,
                actual: col.len(),
            });
        }
        self.rows = col.len();
        self.columns.push((name, col));
        Ok(())
    }

    /// Borrows a column by name.
    pub fn column(&self, name: &str) -> Result<&AnyColumn> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// Borrows a column by name with its stored type.
    pub fn typed_column<T: ColumnAccess>(&self, name: &str) -> Result<&Column<T>> {
        let col = self.column(name)?;
        col.as_typed::<T>()
            .ok_or_else(|| StorageError::TypeMismatch {
                column: name.to_string(),
                expected: col.type_name(),
                actual: T::TYPE_NAME,
            })
    }

    /// Appends a batch of rows given as per-column value slices, in column
    /// declaration order. All slices must have the same length; the append
    /// is rejected (and nothing is modified) otherwise.
    pub fn append_batch(&mut self, batch: &[AnyColumn]) -> Result<usize> {
        if batch.len() != self.columns.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.columns.len(),
                actual: batch.len(),
            });
        }
        let added = batch.first().map_or(0, AnyColumn::len);
        for (incoming, (name, existing)) in batch.iter().zip(&self.columns) {
            if incoming.len() != added {
                return Err(StorageError::LengthMismatch {
                    expected: added,
                    actual: incoming.len(),
                });
            }
            if incoming.type_name() != existing.type_name() {
                return Err(StorageError::TypeMismatch {
                    column: name.clone(),
                    expected: existing.type_name(),
                    actual: incoming.type_name(),
                });
            }
        }
        for (incoming, (_, existing)) in batch.iter().zip(&mut self.columns) {
            match (incoming, existing) {
                (AnyColumn::I32(src), AnyColumn::I32(dst)) => dst.extend_from_slice(src.as_slice()),
                (AnyColumn::I64(src), AnyColumn::I64(dst)) => dst.extend_from_slice(src.as_slice()),
                (AnyColumn::U64(src), AnyColumn::U64(dst)) => dst.extend_from_slice(src.as_slice()),
                (AnyColumn::F64(src), AnyColumn::F64(dst)) => dst.extend_from_slice(src.as_slice()),
                _ => unreachable!("type equality checked above"),
            }
        }
        self.rows += added;
        Ok(added)
    }

    /// Total heap bytes held by all columns.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("trades");
        t.add_column("price", Column::from_values(vec![10i64, 20, 30]))
            .unwrap();
        t.add_column("qty", Column::from_values(vec![1.0f64, 2.0, 3.0]))
            .unwrap();
        t
    }

    #[test]
    fn build_and_inspect() {
        let t = sample_table();
        assert_eq!(t.name(), "trades");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_names().collect::<Vec<_>>(), vec!["price", "qty"]);
    }

    #[test]
    fn typed_access() {
        let t = sample_table();
        let price = t.typed_column::<i64>("price").unwrap();
        assert_eq!(price.as_slice(), &[10, 20, 30]);
    }

    #[test]
    fn typed_access_wrong_type_errors() {
        let t = sample_table();
        let err = t.typed_column::<f64>("price").unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn missing_column_errors() {
        let t = sample_table();
        assert!(matches!(
            t.column("nope"),
            Err(StorageError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut t = sample_table();
        let err = t
            .add_column("price", Column::from_values(vec![0i64, 0, 0]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut t = sample_table();
        let err = t
            .add_column("bad", Column::from_values(vec![1i64]))
            .unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
    }

    #[test]
    fn append_batch_grows_all_columns() {
        let mut t = sample_table();
        let added = t
            .append_batch(&[
                Column::from_values(vec![40i64, 50]).into(),
                Column::from_values(vec![4.0f64, 5.0]).into(),
            ])
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.typed_column::<i64>("price").unwrap().value(4), 50);
    }

    #[test]
    fn append_batch_rejects_ragged_input_atomically() {
        let mut t = sample_table();
        let err = t
            .append_batch(&[
                Column::from_values(vec![40i64, 50]).into(),
                Column::from_values(vec![4.0f64]).into(),
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
        assert_eq!(t.num_rows(), 3, "failed append must not mutate");
    }

    #[test]
    fn append_batch_rejects_wrong_type() {
        let mut t = sample_table();
        let err = t
            .append_batch(&[
                Column::from_values(vec![1.5f64]).into(),
                Column::from_values(vec![4.0f64]).into(),
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn append_batch_wrong_arity() {
        let mut t = sample_table();
        let err = t
            .append_batch(&[Column::from_values(vec![1i64]).into()])
            .unwrap_err();
        assert!(matches!(err, StorageError::LengthMismatch { .. }));
    }

    #[test]
    fn memory_accounting() {
        let t = sample_table();
        assert!(t.memory_bytes() >= 3 * 8 + 3 * 8);
    }
}

//! Zone-local physical reorganization payloads.
//!
//! A [`ReorgZone`] is the `Reorganized` layout of a single zonemap zone:
//! a copied permutation of the zone's rows — values alongside their base
//! row ids — that is incrementally *cracked* (Hoare-partitioned around
//! observed predicate bounds, the piece machinery of database cracking)
//! and eventually converted to fully sorted once enough bounds
//! accumulate. Once sorted, any range predicate resolves positionally:
//! two binary searches yield a contiguous run of qualifying view
//! positions, and the rowid permutation maps them back to base rows.
//!
//! The payload is pure data: it knows nothing about zonemaps, epochs, or
//! publication. Callers that share a payload across threads wrap it in
//! an `Arc` and copy-on-write (`Arc::make_mut`) before cracking, which
//! is what keeps published snapshots immutable-until-republished.

use crate::types::DataValue;
use std::cmp::Ordering;
use std::ops::Range;

/// Number of distinct crack bounds after which the payload converts to
/// fully sorted: past this point piece bookkeeping costs more than one
/// deterministic sort, and sorted zones answer with zero edge scans.
const SORT_AFTER_BOUNDS: usize = 12;

/// A piece boundary: the prefix `[0, pos)` of the payload holds exactly
/// the values `v` with `v < key` (or `v <= key` when `inclusive`),
/// under the total order of [`DataValue::total_cmp`].
#[derive(Debug, Clone, Copy)]
struct PieceBound<T: DataValue> {
    key: T,
    inclusive: bool,
    pos: usize,
}

impl<T: DataValue> PieceBound<T> {
    /// Predicate order: ascending inclusion of the matched value set
    /// (`v < k` ⊂ `v <= k` ⊂ `v < k'` for `k < k'`).
    fn cmp_pred(&self, key: &T, inclusive: bool) -> Ordering {
        self.key.total_cmp(key).then(self.inclusive.cmp(&inclusive))
    }

    fn matches(&self, v: &T) -> bool {
        match v.total_cmp(&self.key) {
            Ordering::Less => true,
            Ordering::Equal => self.inclusive,
            Ordering::Greater => false,
        }
    }
}

/// The positional answer of a [`ReorgZone`] lookup, in view coordinates
/// of the payload.
///
/// Every view position in `full` qualifies without any per-row test; the
/// up-to-two `edges` pieces straddle a predicate bound that has not been
/// cracked yet and must be scanned with the predicate. On a fully sorted
/// payload `edges` is always empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReorgSpans {
    /// Contiguous run of view positions that all qualify.
    pub full: Range<usize>,
    /// Boundary pieces (view coordinates) to scan with the predicate.
    pub edges: [Option<Range<usize>>; 2],
}

impl ReorgSpans {
    /// Rows the executor must still test one by one.
    pub fn edge_rows(&self) -> usize {
        self.edges.iter().flatten().map(|r| r.end - r.start).sum()
    }
}

/// A reorganized zone: permuted copy of the zone's values plus the rowid
/// permutation mapping view positions back to base rows.
#[derive(Debug, Clone)]
pub struct ReorgZone<T: DataValue> {
    values: Vec<T>,
    rowids: Vec<u32>,
    bounds: Vec<PieceBound<T>>,
    sorted: bool,
    zmin: T,
    zmax: T,
    cracks_done: u64,
    bytes_moved: u64,
}

impl<T: DataValue> ReorgZone<T> {
    /// Copies the zone's rows out of the base column. `first_rowid` is
    /// the base row id of `slice[0]` (shard-local coordinates). The
    /// fresh payload is one uncracked piece.
    pub fn build(slice: &[T], first_rowid: u32) -> Self {
        let mut zmin = T::MAX_VALUE;
        let mut zmax = T::MIN_VALUE;
        for &v in slice {
            zmin = zmin.min_total(v);
            zmax = zmax.max_total(v);
        }
        ReorgZone {
            values: slice.to_vec(),
            rowids: (first_rowid..first_rowid + slice.len() as u32).collect(),
            bounds: Vec::new(),
            sorted: slice.len() <= 1,
            zmin,
            zmax,
            cracks_done: 0,
            bytes_moved: (slice.len() * Self::row_bytes()) as u64,
        }
    }

    /// Bytes one (value, rowid) pair occupies — the unit of movement
    /// accounting.
    fn row_bytes() -> usize {
        std::mem::size_of::<T>() + std::mem::size_of::<u32>()
    }

    /// Number of rows in the zone.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the zone holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True once the payload has converted to fully sorted order.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Number of pieces the payload is divided into (1 when sorted).
    pub fn num_pieces(&self) -> usize {
        if self.sorted {
            1
        } else {
            self.bounds.len() + 1
        }
    }

    /// Crack partitions performed over the payload's lifetime.
    pub fn cracks_done(&self) -> u64 {
        self.cracks_done
    }

    /// Cumulative bytes copied or relocated: the build copy plus every
    /// partition swap and the sort conversion.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Exact `(min, max)` of every row in the zone, computed at build
    /// time (identities for an empty zone).
    pub fn min_max(&self) -> (T, T) {
        (self.zmin, self.zmax)
    }

    /// The permuted values, in view order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Base row id for each view position.
    pub fn rowids(&self) -> &[u32] {
        &self.rowids
    }

    /// Heap footprint of the payload.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<T>()
            + self.rowids.capacity() * std::mem::size_of::<u32>()
            + self.bounds.capacity() * std::mem::size_of::<PieceBound<T>>()
    }

    /// Resolves the inclusive range `[lo, hi]` (total order) against the
    /// current piece structure without mutating it. Safe on shared
    /// payloads (published snapshots).
    pub fn lookup(&self, lo: T, hi: T) -> ReorgSpans {
        if self.sorted {
            // ordering by total_cmp: partition_point wants a monotone
            // predicate, which "v < lo" and "v <= hi" both are.
            let start = self
                .values
                .partition_point(|v| v.total_cmp(&lo) == Ordering::Less);
            let end = self
                .values
                .partition_point(|v| v.total_cmp(&hi) != Ordering::Greater);
            return ReorgSpans {
                full: start..end.max(start),
                edges: [None, None],
            };
        }
        let (full_start, lo_edge) = match self.bound_pos(&lo, false) {
            Ok(pos) => (pos, None),
            Err((s, e)) => (e, Some(s..e)),
        };
        let (full_end, hi_edge) = match self.bound_pos(&hi, true) {
            Ok(pos) => (pos, None),
            Err((s, e)) => (s, Some(s..e)),
        };
        // Both bounds landing in the same uncracked piece collapse to a
        // single edge scan and an empty full run.
        let edges = if lo_edge.is_some() && lo_edge == hi_edge {
            [lo_edge, None]
        } else {
            [lo_edge, hi_edge]
        };
        ReorgSpans {
            full: full_start..full_end.max(full_start),
            edges,
        }
    }

    /// Position of the exact bound `(key, inclusive)` if it has been
    /// cracked, else the enclosing uncracked piece `(start, end)`.
    fn bound_pos(&self, key: &T, inclusive: bool) -> Result<usize, (usize, usize)> {
        match self.bounds.binary_search_by(|b| b.cmp_pred(key, inclusive)) {
            Ok(i) => Ok(self.bounds[i].pos),
            Err(i) => {
                let start = if i == 0 { 0 } else { self.bounds[i - 1].pos };
                let end = if i == self.bounds.len() {
                    self.values.len()
                } else {
                    self.bounds[i].pos
                };
                Err((start, end))
            }
        }
    }

    /// Ensures crack bounds exist for the inclusive range `[lo, hi]`,
    /// partitioning at most two pieces, and converts to fully sorted
    /// once enough bounds accumulate. Returns the bytes moved by this
    /// call (0 means the payload was untouched — both bounds already
    /// existed or the zone is sorted).
    pub fn crack(&mut self, lo: T, hi: T) -> u64 {
        if self.sorted {
            return 0;
        }
        let before = self.bytes_moved;
        self.ensure_bound(lo, false);
        self.ensure_bound(hi, true);
        if self.bounds.len() >= SORT_AFTER_BOUNDS {
            self.sort_fully();
        }
        self.bytes_moved - before
    }

    /// Ensures a piece boundary for `(key, inclusive)` exists, cracking
    /// the enclosing piece with one Hoare partition if not.
    fn ensure_bound(&mut self, key: T, inclusive: bool) {
        if let Err((seg_start, seg_end)) = self.bound_pos(&key, inclusive) {
            let idx = self
                .bounds
                .binary_search_by(|b| b.cmp_pred(&key, inclusive))
                .unwrap_err();
            let bound = PieceBound {
                key,
                inclusive,
                pos: 0,
            };
            let pos = self.partition(seg_start, seg_end, &bound);
            self.bounds.insert(
                idx,
                PieceBound {
                    key,
                    inclusive,
                    pos,
                },
            );
            self.cracks_done += 1;
        }
    }

    /// In-place Hoare partition of `[start, end)` by `bound`; rowids
    /// move with their values. Returns the split point.
    fn partition(&mut self, start: usize, end: usize, bound: &PieceBound<T>) -> usize {
        let mut i = start;
        let mut j = end;
        while i < j {
            if bound.matches(&self.values[i]) {
                i += 1;
            } else {
                j -= 1;
                self.values.swap(i, j);
                self.rowids.swap(i, j);
                self.bytes_moved += 2 * Self::row_bytes() as u64;
            }
        }
        i
    }

    /// Converts to the canonical fully sorted layout: `(value, rowid)`
    /// pairs ordered by total order, ties broken by ascending rowid so
    /// the permutation is deterministic regardless of crack history.
    pub fn sort_fully(&mut self) {
        if self.sorted {
            return;
        }
        let mut pairs: Vec<(T, u32)> = self
            .values
            .iter()
            .copied()
            .zip(self.rowids.iter().copied())
            .collect();
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (i, (v, r)) in pairs.into_iter().enumerate() {
            self.values[i] = v;
            self.rowids[i] = r;
        }
        self.bounds.clear();
        self.sorted = true;
        self.bytes_moved += (self.values.len() * Self::row_bytes()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_count(data: &[i64], lo: i64, hi: i64) -> usize {
        data.iter().filter(|v| v.in_range_total(&lo, &hi)).count()
    }

    /// Counts matches via lookup: full run length plus predicate-tested
    /// edge rows.
    fn lookup_count(z: &ReorgZone<i64>, lo: i64, hi: i64) -> usize {
        let spans = z.lookup(lo, hi);
        let mut count = spans.full.len();
        for edge in spans.edges.iter().flatten() {
            count += z.values()[edge.clone()]
                .iter()
                .filter(|v| v.in_range_total(&lo, &hi))
                .count();
        }
        count
    }

    fn test_data() -> Vec<i64> {
        (0..2000).map(|i| (i * 2654435761i64) % 997).collect()
    }

    #[test]
    fn lookup_matches_oracle_before_any_crack() {
        let data = test_data();
        let z = ReorgZone::build(&data, 0);
        for q in 0..40 {
            let lo = (q * 53) % 900;
            assert_eq!(
                lookup_count(&z, lo, lo + 70),
                oracle_count(&data, lo, lo + 70)
            );
        }
    }

    #[test]
    fn lookup_matches_oracle_through_crack_sequence() {
        let data = test_data();
        let mut z = ReorgZone::build(&data, 0);
        for q in 0..60 {
            let lo = (q * 37) % 900;
            let hi = lo + 45;
            z.crack(lo, hi);
            assert_eq!(
                lookup_count(&z, lo, hi),
                oracle_count(&data, lo, hi),
                "query {q}"
            );
            // A cracked predicate needs no edge scans at all.
            assert_eq!(z.lookup(lo, hi).edge_rows(), 0);
        }
        assert!(
            z.is_sorted(),
            "enough bounds should trigger sort conversion"
        );
    }

    #[test]
    fn stays_a_permutation_and_rowids_track_values() {
        let data = test_data();
        let mut z = ReorgZone::build(&data, 100);
        for q in 0..30 {
            let lo = (q * 13) % 800;
            z.crack(lo, lo + 31);
        }
        let mut sorted_orig = data.clone();
        sorted_orig.sort_unstable();
        let mut sorted_view = z.values().to_vec();
        sorted_view.sort_unstable();
        assert_eq!(sorted_orig, sorted_view);
        for (i, &v) in z.values().iter().enumerate() {
            let base = (z.rowids()[i] - 100) as usize;
            assert_eq!(data[base], v, "rowid broken at view pos {i}");
        }
    }

    #[test]
    fn sorted_conversion_is_deterministic() {
        let data = test_data();
        let mut a = ReorgZone::build(&data, 0);
        let mut b = ReorgZone::build(&data, 0);
        // Different crack histories...
        a.crack(100, 200);
        a.crack(700, 800);
        b.crack(400, 450);
        a.sort_fully();
        b.sort_fully();
        // ...identical canonical layouts.
        assert_eq!(a.values(), b.values());
        assert_eq!(a.rowids(), b.rowids());
    }

    #[test]
    fn sorted_lookup_is_exact_run() {
        let data = vec![5i64, 1, 9, 3, 7, 3];
        let mut z = ReorgZone::build(&data, 0);
        z.sort_fully();
        let spans = z.lookup(3, 7);
        assert_eq!(spans.edge_rows(), 0);
        let vals: Vec<i64> = z.values()[spans.full.clone()].to_vec();
        assert_eq!(vals, vec![3, 3, 5, 7]);
        let mut rows: Vec<u32> = spans.full.map(|p| z.rowids()[p]).collect();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 3, 4, 5]);
    }

    #[test]
    fn min_max_is_exact_and_survives_cracking() {
        let data = vec![4i64, -7, 22, 0];
        let mut z = ReorgZone::build(&data, 0);
        assert_eq!(z.min_max(), (-7, 22));
        z.crack(0, 5);
        assert_eq!(z.min_max(), (-7, 22));
    }

    #[test]
    fn floats_with_nan_and_signed_zero() {
        let data = vec![0.5f64, -0.0, f64::NAN, 0.0, -1.5, f64::INFINITY];
        let mut z = ReorgZone::build(&data, 0);
        // Total order: NaN sorts above +inf, -0.0 below 0.0.
        let all = lookup_count_f64(&z, f64::NEG_INFINITY, f64::NAN);
        assert_eq!(all, 6);
        z.sort_fully();
        let spans = z.lookup(-0.0, 0.0);
        assert_eq!(spans.full.len(), 2, "both zeros inside [-0.0, 0.0]");
        let spans = z.lookup(0.0, 0.0);
        assert_eq!(
            spans.full.len(),
            1,
            "[0.0, 0.0] excludes -0.0 in total order"
        );
        let (lo, hi) = z.min_max();
        assert_eq!(lo, -1.5);
        assert!(hi.is_nan());
    }

    fn lookup_count_f64(z: &ReorgZone<f64>, lo: f64, hi: f64) -> usize {
        let spans = z.lookup(lo, hi);
        let mut count = spans.full.len();
        for edge in spans.edges.iter().flatten() {
            count += z.values()[edge.clone()]
                .iter()
                .filter(|v| v.in_range_total(&lo, &hi))
                .count();
        }
        count
    }

    #[test]
    fn repeated_cracks_move_no_bytes() {
        let data = test_data();
        let mut z = ReorgZone::build(&data, 0);
        assert!(z.crack(100, 300) > 0);
        assert_eq!(z.crack(100, 300), 0, "existing bounds cost nothing");
    }

    #[test]
    fn empty_and_single_row_zones() {
        let z = ReorgZone::<i64>::build(&[], 0);
        assert!(z.is_empty());
        assert!(z.is_sorted());
        assert_eq!(z.lookup(0, 10), ReorgSpans::default());
        let z = ReorgZone::build(&[42i64], 7);
        assert!(z.is_sorted(), "single row is trivially sorted");
        assert_eq!(z.lookup(40, 50).full, 0..1);
        assert_eq!(z.rowids(), &[7]);
        assert_eq!(z.min_max(), (42, 42));
    }

    #[test]
    fn bytes_moved_accounting_is_monotone() {
        let data = test_data();
        let mut z = ReorgZone::build(&data, 0);
        let built = z.bytes_moved();
        assert_eq!(built as usize, data.len() * (8 + 4));
        z.crack(10, 500);
        let cracked = z.bytes_moved();
        assert!(cracked >= built);
        z.sort_fully();
        assert!(z.bytes_moved() > cracked);
    }
}

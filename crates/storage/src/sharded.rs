//! Sharded column versions: S contiguous partitions over [`SharedColumn`].
//!
//! A [`ShardedColumn`] cuts one logical column into a fixed number of
//! contiguous shards, each an independently versioned [`SharedColumn`].
//! The shard layout is the unit of everything the sharding layer makes
//! local: zone metadata, adaptation, snapshot publication, and scan
//! fan-out all operate per shard, and a global row id is recovered as
//! `shard start + local row`.
//!
//! Two layout rules keep the partition trivial to reason about:
//!
//! * **Contiguous, fixed count.** Shard `s` covers global rows
//!   `[start(s), start(s) + shard(s).len())`, shards are adjacent in shard
//!   order, and the shard count never changes after construction. Short
//!   columns simply leave trailing shards empty.
//! * **Appends route to the tail shard.** Growing the column produces a
//!   new [`ShardedColumn`] version in which only the last shard is a new
//!   [`SharedColumn`] version; every other shard is the same `Arc` as
//!   before. Readers holding older shard versions are unaffected, and
//!   publication layers only need to republish the one shard that moved.

use crate::ranges::RowRange;
use crate::shared::SharedColumn;
use crate::types::DataValue;

/// One logical column partitioned into contiguous shards.
#[derive(Debug, Clone)]
pub struct ShardedColumn<T: DataValue> {
    shards: Vec<SharedColumn<T>>,
    /// Global row id of each shard's first row; `starts[s] + shards[s].len()`
    /// is the start of shard `s + 1`.
    starts: Vec<usize>,
}

impl<T: DataValue> ShardedColumn<T> {
    /// Partitions `data` into `shards` contiguous pieces of
    /// `ceil(len / shards)` rows each; when the division is uneven the last
    /// piece is short, and when `shards` exceeds the row count the trailing
    /// shards are empty (they fill later via appends).
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(data: Vec<T>, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let len = data.len();
        let chunk = len.div_ceil(shards).max(1);
        let mut out = ShardedColumn {
            shards: Vec::with_capacity(shards),
            starts: Vec::with_capacity(shards),
        };
        for s in 0..shards {
            let start = (s * chunk).min(len);
            let end = ((s + 1) * chunk).min(len);
            out.starts.push(start);
            out.shards
                .push(SharedColumn::new(data[start..end].to_vec()));
        }
        out
    }

    /// Wraps existing shard versions; `starts` are recomputed from the
    /// shard lengths.
    pub fn from_shards(shards: Vec<SharedColumn<T>>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let mut starts = Vec::with_capacity(shards.len());
        let mut at = 0usize;
        for shard in &shards {
            starts.push(at);
            at += shard.len();
        }
        ShardedColumn { shards, starts }
    }

    /// Number of shards (fixed for the lifetime of the column).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        // invariant: constructors reject empty shard sets (both lines).
        self.starts.last().expect("at least one shard")
            + self.shards.last().expect("at least one shard").len()
    }

    /// True when no shard holds any rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard `s`'s column version.
    pub fn shard(&self, s: usize) -> &SharedColumn<T> {
        &self.shards[s]
    }

    /// All shard versions, in shard order.
    pub fn shards(&self) -> &[SharedColumn<T>] {
        &self.shards
    }

    /// Global row id of shard `s`'s first row.
    pub fn start(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Global row ids of each shard's first row, in shard order.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Global row range shard `s` covers.
    pub fn shard_range(&self, s: usize) -> RowRange {
        RowRange::new(self.starts[s], self.starts[s] + self.shards[s].len())
    }

    /// Rows per shard, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(SharedColumn::len).collect()
    }

    /// Produces the next version: `rows` appended to the **tail shard**.
    ///
    /// Only the last shard becomes a new [`SharedColumn`] version; the
    /// other shards are shared (`Arc` bumps) with `self`, so readers and
    /// publication layers can tell exactly which shard moved.
    pub fn append(&self, rows: &[T]) -> ShardedColumn<T> {
        let mut shards = self.shards.clone();
        // invariant: constructors reject empty shard sets.
        let tail = shards.last_mut().expect("at least one shard");
        *tail = tail.append(rows);
        ShardedColumn {
            shards,
            starts: self.starts.clone(),
        }
    }

    /// Gathers all shards into one contiguous vector, in global row order.
    /// Intended for tests and reference comparisons, not the hot path.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend_from_slice(shard.as_slice());
        }
        out
    }

    /// Bytes of column data across all shard versions.
    pub fn data_bytes(&self) -> usize {
        self.shards.iter().map(SharedColumn::data_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_covers_everything() {
        let data: Vec<i64> = (0..103).collect();
        for shards in [1, 2, 3, 8, 16] {
            let col = ShardedColumn::new(data.clone(), shards);
            assert_eq!(col.num_shards(), shards);
            assert_eq!(col.len(), 103);
            assert_eq!(col.to_vec(), data, "{shards} shards reorder rows");
            // Contiguity: each shard starts where the previous ended.
            let mut at = 0;
            for s in 0..shards {
                assert_eq!(col.start(s), at, "{shards} shards: gap at {s}");
                assert_eq!(
                    col.shard_range(s),
                    RowRange::new(at, at + col.shard(s).len())
                );
                at += col.shard(s).len();
            }
            assert_eq!(at, 103);
        }
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_tails() {
        let col = ShardedColumn::new((0..5i64).collect(), 8);
        assert_eq!(col.shard_lens(), vec![1, 1, 1, 1, 1, 0, 0, 0]);
        assert_eq!(col.len(), 5);
        assert!(!col.is_empty());
        // Empty shards still have well-defined (empty) ranges at the end.
        assert_eq!(col.shard_range(7), RowRange::new(5, 5));
    }

    #[test]
    fn empty_column_shards_cleanly() {
        let col: ShardedColumn<i64> = ShardedColumn::new(Vec::new(), 4);
        assert!(col.is_empty());
        assert_eq!(col.shard_lens(), vec![0, 0, 0, 0]);
        assert_eq!(col.data_bytes(), 0);
    }

    #[test]
    fn append_touches_only_the_tail_shard() {
        let v0 = ShardedColumn::new((0..100i64).collect(), 4);
        let v1 = v0.append(&[100, 101, 102]);
        assert_eq!(v0.len(), 100);
        assert_eq!(v1.len(), 103);
        assert_eq!(v1.to_vec(), (0..103).collect::<Vec<i64>>());
        for s in 0..3 {
            // Non-tail shards are the same version, sharing their allocation.
            assert!(std::ptr::eq(v0.shard(s).as_slice(), v1.shard(s).as_slice()));
            assert_eq!(v0.shard(s).version(), v1.shard(s).version());
        }
        assert_eq!(v1.shard(3).version(), v0.shard(3).version() + 1);
        assert_eq!(v1.starts(), v0.starts());
    }

    #[test]
    fn appends_grow_an_empty_tail() {
        let v0 = ShardedColumn::new((0..3i64).collect(), 8);
        let v1 = v0.append(&[3, 4]);
        assert_eq!(v1.to_vec(), vec![0, 1, 2, 3, 4]);
        assert_eq!(v1.shard(7).as_slice(), &[3, 4]);
        assert_eq!(v1.shard_range(7), RowRange::new(3, 5));
        // Intermediate empty shards stay empty; contiguity holds because
        // they all start at the same global row as the tail.
        assert_eq!(v1.shard_lens(), vec![1, 1, 1, 0, 0, 0, 0, 2]);
    }

    #[test]
    fn from_shards_recomputes_starts() {
        let shards = vec![
            SharedColumn::new(vec![1i64, 2]),
            SharedColumn::new(vec![3]),
            SharedColumn::new(Vec::new()),
            SharedColumn::new(vec![4, 5, 6]),
        ];
        let col = ShardedColumn::from_shards(shards);
        assert_eq!(col.starts(), &[0, 2, 3, 3]);
        assert_eq!(col.to_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedColumn::new(vec![1i64], 0);
    }
}

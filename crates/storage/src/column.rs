//! Dense, typed, append-only columns.

use crate::types::DataValue;

/// A dense in-memory column of `T` values.
///
/// Columns are append-only: rows are never removed or reordered, which is
/// what lets positional zone metadata stay valid as data arrives. (The
/// cracking baseline maintains its own reordered *copy* of a column.)
#[derive(Debug, Clone, Default)]
pub struct Column<T: DataValue> {
    data: Vec<T>,
}

impl<T: DataValue> Column<T> {
    /// Creates an empty column.
    pub fn new() -> Self {
        Column { data: Vec::new() }
    }

    /// Creates an empty column with room for `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        Column {
            data: Vec::with_capacity(cap),
        }
    }

    /// Builds a column from existing values.
    pub fn from_values(values: Vec<T>) -> Self {
        Column { data: values }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one value.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.data.push(v);
    }

    /// Appends a batch of values.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.data.extend_from_slice(values);
    }

    /// Value at `row`.
    ///
    /// # Panics
    /// Panics if `row >= len`.
    #[inline]
    pub fn value(&self, row: usize) -> T {
        self.data[row]
    }

    /// The whole column as a slice — the unit the scan kernels operate on.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// A sub-range of the column as a slice.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> &[T] {
        &self.data[start..end]
    }

    /// Exact `(min, max)` of the rows in `[start, end)` under the total
    /// order, or `None` if the range is empty.
    pub fn min_max(&self, start: usize, end: usize) -> Option<(T, T)> {
        let slice = self.slice(start, end);
        let first = *slice.first()?;
        let mut min = first;
        let mut max = first;
        for &v in &slice[1..] {
            min = min.min_total(v);
            max = max.max_total(v);
        }
        Some((min, max))
    }

    /// Heap bytes held by the column's values.
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<T>()
    }
}

impl<T: DataValue> From<Vec<T>> for Column<T> {
    fn from(values: Vec<T>) -> Self {
        Column::from_values(values)
    }
}

impl<T: DataValue> Extend<T> for Column<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut c = Column::new();
        c.push(5i64);
        c.push(-3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(0), 5);
        assert_eq!(c.value(1), -3);
        assert!(!c.is_empty());
    }

    #[test]
    fn from_values_and_slice() {
        let c = Column::from_values(vec![1i64, 2, 3, 4]);
        assert_eq!(c.slice(1, 3), &[2, 3]);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn extend_batches() {
        let mut c: Column<i64> = Column::with_capacity(8);
        c.extend_from_slice(&[1, 2]);
        c.extend([3i64, 4]);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn min_max_exact() {
        let c = Column::from_values(vec![5i64, -1, 9, 3]);
        assert_eq!(c.min_max(0, 4), Some((-1, 9)));
        assert_eq!(c.min_max(0, 1), Some((5, 5)));
        assert_eq!(c.min_max(2, 2), None);
    }

    #[test]
    fn min_max_floats_with_nan() {
        let c = Column::from_values(vec![1.0f64, f64::NAN, -2.0]);
        let (min, max) = c.min_max(0, 3).unwrap();
        assert_eq!(min, -2.0);
        assert!(max.is_nan());
    }

    #[test]
    fn memory_bytes_scales_with_capacity() {
        let c = Column::from_values(vec![0u32; 100]);
        assert!(c.memory_bytes() >= 400);
    }

    #[test]
    #[should_panic]
    fn value_out_of_bounds_panics() {
        Column::from_values(vec![1i64]).value(1);
    }
}

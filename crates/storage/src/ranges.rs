//! Row ranges and sets of disjoint row ranges.
//!
//! A data-skipping index answers a pruning request with a [`RangeSet`]: the
//! candidate row ranges a scan must still visit. Soundness requires the set
//! to be a superset of the qualifying rows; effectiveness is measured by how
//! much of the table it excludes.

/// A half-open range of row positions `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First row in the range.
    pub start: usize,
    /// One past the last row in the range.
    pub end: usize,
}

impl RowRange {
    /// Creates `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end`.
    #[inline]
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid range {start}..{end}");
        RowRange { start, end }
    }

    /// Number of rows covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the range covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if `row` falls inside the range.
    #[inline]
    pub fn contains(&self, row: usize) -> bool {
        self.start <= row && row < self.end
    }

    /// Intersection with another range, if non-empty.
    pub fn intersect(&self, other: &RowRange) -> Option<RowRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(RowRange { start, end })
        } else {
            None
        }
    }
}

/// An ordered set of disjoint, non-adjacent row ranges.
///
/// The canonical form (sorted, coalesced) is maintained by construction:
/// ranges are pushed in increasing order and merged when they touch.
///
/// ```
/// use ads_storage::RangeSet;
/// let mut rs = RangeSet::new();
/// rs.push_span(0, 10);
/// rs.push_span(10, 20); // coalesces with the previous span
/// rs.push_span(50, 60);
/// assert_eq!(rs.num_ranges(), 2);
/// assert_eq!(rs.covered_rows(), 30);
/// assert_eq!(rs.complement(100).covered_rows(), 70);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    ranges: Vec<RowRange>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet { ranges: Vec::new() }
    }

    /// Creates an empty set with capacity for `cap` ranges.
    pub fn with_capacity(cap: usize) -> Self {
        RangeSet {
            ranges: Vec::with_capacity(cap),
        }
    }

    /// The full range `[0, n)` as a single-range set.
    pub fn full(n: usize) -> Self {
        let mut rs = RangeSet::new();
        if n > 0 {
            rs.ranges.push(RowRange::new(0, n));
        }
        rs
    }

    /// Appends a range, coalescing with the previous one when adjacent or
    /// overlapping.
    ///
    /// # Panics
    /// Panics if `range` starts before the end of the previously pushed
    /// range minus overlap (i.e. ranges must be pushed in increasing
    /// `start` order).
    pub fn push(&mut self, range: RowRange) {
        if range.is_empty() {
            return;
        }
        if let Some(last) = self.ranges.last_mut() {
            assert!(
                range.start >= last.start,
                "ranges must be pushed in increasing order"
            );
            if range.start <= last.end {
                last.end = last.end.max(range.end);
                return;
            }
        }
        self.ranges.push(range);
    }

    /// Appends `[start, end)`.
    pub fn push_span(&mut self, start: usize, end: usize) {
        self.push(RowRange::new(start, end));
    }

    /// The ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[RowRange] {
        &self.ranges
    }

    /// Number of ranges.
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of rows covered.
    pub fn covered_rows(&self) -> usize {
        self.ranges.iter().map(RowRange::len).sum()
    }

    /// True if no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// True if `row` is covered by some range.
    pub fn contains(&self, row: usize) -> bool {
        // Binary search on start; candidate is the last range starting <= row.
        match self.ranges.binary_search_by(|r| r.start.cmp(&row)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].contains(row),
        }
    }

    /// Intersection of two range sets.
    pub fn intersect(&self, other: &RangeSet) -> RangeSet {
        let mut out = RangeSet::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (a, b) = (self.ranges[i], other.ranges[j]);
            if let Some(r) = a.intersect(&b) {
                out.push(r);
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Union of two range sets via a single sorted merge.
    ///
    /// Both inputs are canonical (sorted, disjoint), so one pass over the
    /// two range lists suffices; `push` coalesces touching spans. This is
    /// the O(R) replacement for re-sorting per inserted range.
    pub fn union(&self, other: &RangeSet) -> RangeSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = RangeSet::with_capacity(self.ranges.len() + other.ranges.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            if self.ranges[i].start <= other.ranges[j].start {
                out.push(self.ranges[i]);
                i += 1;
            } else {
                out.push(other.ranges[j]);
                j += 1;
            }
        }
        for r in &self.ranges[i..] {
            out.push(*r);
        }
        for r in &other.ranges[j..] {
            out.push(*r);
        }
        out
    }

    /// True if the whole span `[start, end)` is covered by a single range.
    ///
    /// Ranges are canonical (disjoint, non-adjacent), so a contiguous span
    /// is covered iff one range contains it; binary search on `start`
    /// finds the only candidate. An empty span is trivially covered.
    pub fn covers_span(&self, start: usize, end: usize) -> bool {
        if start >= end {
            return true;
        }
        // Candidate: last range whose start is <= start.
        let i = self.ranges.partition_point(|r| r.start <= start);
        if i == 0 {
            return false;
        }
        let r = self.ranges[i - 1];
        r.start <= start && end <= r.end
    }

    /// Complement of the set within `[0, n)`.
    pub fn complement(&self, n: usize) -> RangeSet {
        let mut out = RangeSet::new();
        let mut cursor = 0;
        for r in &self.ranges {
            if r.start > cursor {
                out.push_span(cursor, r.start.min(n));
            }
            cursor = cursor.max(r.end);
        }
        if cursor < n {
            out.push_span(cursor, n);
        }
        out
    }

    /// Iterates over every covered row position in increasing order.
    pub fn iter_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(|r| r.start..r.end)
    }

    /// Fraction of `[0, n)` covered; 0.0 when `n == 0`.
    pub fn coverage_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.covered_rows() as f64 / n as f64
        }
    }
}

impl FromIterator<RowRange> for RangeSet {
    fn from_iter<I: IntoIterator<Item = RowRange>>(iter: I) -> Self {
        let mut rs = RangeSet::new();
        for r in iter {
            rs.push(r);
        }
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_range_basics() {
        let r = RowRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(r.contains(10) && r.contains(19));
        assert!(!r.contains(20) && !r.contains(9));
        assert!(!r.is_empty());
        assert!(RowRange::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn row_range_backwards_panics() {
        RowRange::new(5, 4);
    }

    #[test]
    fn row_range_intersect() {
        let a = RowRange::new(0, 10);
        assert_eq!(
            a.intersect(&RowRange::new(5, 15)),
            Some(RowRange::new(5, 10))
        );
        assert_eq!(a.intersect(&RowRange::new(10, 15)), None);
        assert_eq!(a.intersect(&RowRange::new(3, 7)), Some(RowRange::new(3, 7)));
    }

    #[test]
    fn push_coalesces_adjacent() {
        let mut rs = RangeSet::new();
        rs.push_span(0, 10);
        rs.push_span(10, 20);
        rs.push_span(25, 30);
        assert_eq!(rs.num_ranges(), 2);
        assert_eq!(rs.covered_rows(), 25);
    }

    #[test]
    fn push_coalesces_overlapping() {
        let mut rs = RangeSet::new();
        rs.push_span(0, 15);
        rs.push_span(10, 20);
        assert_eq!(rs.num_ranges(), 1);
        assert_eq!(rs.ranges()[0], RowRange::new(0, 20));
    }

    #[test]
    fn push_ignores_empty() {
        let mut rs = RangeSet::new();
        rs.push_span(5, 5);
        assert!(rs.is_empty());
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(RangeSet::full(100).covered_rows(), 100);
        assert!(RangeSet::full(0).is_empty());
        assert_eq!(RangeSet::new().covered_rows(), 0);
    }

    #[test]
    fn contains_binary_search() {
        let mut rs = RangeSet::new();
        rs.push_span(10, 20);
        rs.push_span(30, 40);
        rs.push_span(50, 60);
        for row in [10, 19, 30, 55] {
            assert!(rs.contains(row), "row {row}");
        }
        for row in [0, 9, 20, 29, 45, 60, 1000] {
            assert!(!rs.contains(row), "row {row}");
        }
    }

    #[test]
    fn intersect_sets() {
        let mut a = RangeSet::new();
        a.push_span(0, 10);
        a.push_span(20, 30);
        let mut b = RangeSet::new();
        b.push_span(5, 25);
        let c = a.intersect(&b);
        assert_eq!(c.ranges(), &[RowRange::new(5, 10), RowRange::new(20, 25)]);
    }

    #[test]
    fn intersect_with_empty() {
        let a = RangeSet::full(50);
        assert!(a.intersect(&RangeSet::new()).is_empty());
    }

    #[test]
    fn union_merges_sorted_sets() {
        let mut a = RangeSet::new();
        a.push_span(0, 10);
        a.push_span(20, 30);
        let mut b = RangeSet::new();
        b.push_span(5, 25);
        b.push_span(40, 50);
        let u = a.union(&b);
        assert_eq!(u.ranges(), &[RowRange::new(0, 30), RowRange::new(40, 50)]);
        // Symmetric.
        assert_eq!(b.union(&a), u);
    }

    #[test]
    fn union_with_empty_and_adjacent() {
        let a = RangeSet::full(10);
        assert_eq!(a.union(&RangeSet::new()), a);
        assert_eq!(RangeSet::new().union(&a), a);
        let mut b = RangeSet::new();
        b.push_span(10, 20);
        assert_eq!(a.union(&b).ranges(), &[RowRange::new(0, 20)]);
    }

    #[test]
    fn union_interleaved_matches_reference() {
        // Exhaustive-ish check against a per-row reference on small sets.
        let mut a = RangeSet::new();
        for s in [0usize, 8, 16, 32] {
            a.push_span(s, s + 4);
        }
        let mut b = RangeSet::new();
        for s in [2usize, 12, 20, 36] {
            b.push_span(s, s + 4);
        }
        let u = a.union(&b);
        for row in 0..48 {
            assert_eq!(
                u.contains(row),
                a.contains(row) || b.contains(row),
                "row {row}"
            );
        }
    }

    #[test]
    fn covers_span_binary_search() {
        let mut rs = RangeSet::new();
        rs.push_span(10, 20);
        rs.push_span(30, 40);
        assert!(rs.covers_span(10, 20));
        assert!(rs.covers_span(12, 18));
        assert!(rs.covers_span(30, 31));
        assert!(!rs.covers_span(9, 11));
        assert!(!rs.covers_span(15, 25));
        assert!(!rs.covers_span(20, 30));
        assert!(!rs.covers_span(0, 5));
        assert!(!rs.covers_span(40, 41));
        // Empty spans are trivially covered.
        assert!(rs.covers_span(25, 25));
        assert!(RangeSet::new().covers_span(3, 3));
        assert!(!RangeSet::new().covers_span(3, 4));
    }

    #[test]
    fn complement_basic() {
        let mut rs = RangeSet::new();
        rs.push_span(10, 20);
        rs.push_span(30, 40);
        let c = rs.complement(50);
        assert_eq!(
            c.ranges(),
            &[
                RowRange::new(0, 10),
                RowRange::new(20, 30),
                RowRange::new(40, 50)
            ]
        );
        assert_eq!(rs.covered_rows() + c.covered_rows(), 50);
    }

    #[test]
    fn complement_of_full_is_empty() {
        assert!(RangeSet::full(10).complement(10).is_empty());
        assert_eq!(RangeSet::new().complement(10).covered_rows(), 10);
    }

    #[test]
    fn iter_rows_flattens() {
        let mut rs = RangeSet::new();
        rs.push_span(1, 3);
        rs.push_span(7, 9);
        let rows: Vec<usize> = rs.iter_rows().collect();
        assert_eq!(rows, vec![1, 2, 7, 8]);
    }

    #[test]
    fn coverage_fraction() {
        let rs = RangeSet::full(50);
        assert!((rs.coverage_fraction(100) - 0.5).abs() < 1e-12);
        assert_eq!(RangeSet::new().coverage_fraction(0), 0.0);
    }

    #[test]
    fn from_iterator() {
        let rs: RangeSet = [RowRange::new(0, 5), RowRange::new(5, 10)]
            .into_iter()
            .collect();
        assert_eq!(rs.num_ranges(), 1);
    }
}

//! Word-packed set sketches (blocked bloom filters) for equality-heavy
//! zones.
//!
//! A [`BloomSketch`] summarises the *value set* of a contiguous row range
//! so an equality probe can prove "no row here equals `v`" without
//! touching a row. Min/max zone metadata cannot skip point predicates
//! that fall inside a wide `[min, max]` interval; a set sketch can.
//!
//! Soundness is one-sided by construction: a probe may report a value as
//! present when it is not (hash collision — the zone gets scanned and
//! the scan finds nothing), but can never report an inserted value as
//! absent. Keys come from [`DataValue::sketch_key`], which maps
//! total-order-equal values to equal keys, so a predicate bound equal to
//! a stored value always probes the bits that value set.

use crate::types::DataValue;

/// Probes per key: two derived bit positions from one 64-bit mix.
const PROBES: u32 = 2;

/// A fixed-size bloom filter over the values of one row range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomSketch {
    /// Bit array, packed little-endian into 64-bit words.
    words: Box<[u64]>,
    /// `words.len() * 64`, cached as a power-of-two mask-friendly count.
    bits: u64,
}

impl BloomSketch {
    /// Builds a sketch over `data` with roughly `bits_per_row` filter
    /// bits per row, capped at `max_bytes` of bit array. The word count
    /// is rounded up to a power of two so probe positions reduce with a
    /// mask instead of a modulo.
    ///
    /// # Panics
    /// Panics when `bits_per_row == 0` or `max_bytes < 8`.
    pub fn build<T: DataValue>(data: &[T], bits_per_row: usize, max_bytes: usize) -> Self {
        assert!(bits_per_row > 0, "bits_per_row must be positive");
        assert!(max_bytes >= 8, "need at least one 64-bit word");
        let want_bits = data.len().saturating_mul(bits_per_row).max(64);
        let max_bits = max_bytes * 8;
        let words = (want_bits.min(max_bits).div_ceil(64)).next_power_of_two();
        let mut sketch = BloomSketch {
            words: vec![0u64; words].into_boxed_slice(),
            bits: (words * 64) as u64,
        };
        for &v in data {
            sketch.insert(v);
        }
        sketch
    }

    /// Inserts one value.
    fn insert<T: DataValue>(&mut self, v: T) {
        let mut h = splitmix64(v.sketch_key());
        for _ in 0..PROBES {
            let bit = h % self.bits;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
            h = splitmix64(h);
        }
    }

    /// True when `v` may have been inserted; false proves it was not.
    #[inline]
    pub fn may_contain<T: DataValue>(&self, v: T) -> bool {
        let mut h = splitmix64(v.sketch_key());
        for _ in 0..PROBES {
            let bit = h % self.bits;
            if self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
            h = splitmix64(h);
        }
        true
    }

    /// Heap bytes held by the bit array.
    pub fn metadata_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Fraction of set bits — a saturation gauge; past ~0.5 the false
    /// positive rate makes the sketch near-useless.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.bits as f64
    }
}

/// The splitmix64 finaliser: a cheap, well-distributed 64-bit mix.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_false_negative() {
        let data: Vec<i64> = (0..4096).map(|i| (i * 2654435761i64) % 100_000).collect();
        let sketch = BloomSketch::build(&data, 8, 1 << 20);
        for &v in &data {
            assert!(sketch.may_contain(v), "inserted {v} reported absent");
        }
    }

    #[test]
    fn mostly_rejects_absent_values() {
        let data: Vec<i64> = (0..1000).collect();
        let sketch = BloomSketch::build(&data, 8, 1 << 20);
        let misses = (1_000_000..1_001_000)
            .filter(|&v| !sketch.may_contain(v))
            .count();
        assert!(misses > 800, "false positive rate too high: {misses}/1000");
    }

    #[test]
    fn float_keys_respect_total_order_equality() {
        let data = [1.5f64, -0.0, f64::NAN];
        let sketch = BloomSketch::build(&data, 8, 1024);
        assert!(sketch.may_contain(1.5));
        assert!(sketch.may_contain(-0.0));
        assert!(sketch.may_contain(f64::NAN), "same-pattern NaN must hit");
    }

    #[test]
    fn size_cap_is_respected() {
        let data: Vec<i64> = (0..100_000).collect();
        let sketch = BloomSketch::build(&data, 8, 256);
        assert!(sketch.metadata_bytes() <= 256);
        // Saturated but still sound.
        for &v in &data[..1000] {
            assert!(sketch.may_contain(v));
        }
        assert!(sketch.fill_ratio() > 0.5);
    }

    #[test]
    fn empty_slice_rejects_everything_cheaply() {
        let sketch = BloomSketch::build(&[] as &[i64], 8, 1024);
        assert!(!sketch.may_contain(0i64));
        assert_eq!(sketch.metadata_bytes(), 8);
    }
}

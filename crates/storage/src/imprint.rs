//! Column-imprint bit sketches (Sidirourgos & Kersten, SIGMOD 2013),
//! promoted to a reusable storage citizen.
//!
//! For every cache line of a column slice, an *imprint* records — as a
//! 64-bit mask — which histogram bins the line's values fall into. A
//! range predicate maps to a bin mask; lines whose imprint does not
//! intersect the mask are skipped, and lines composed purely of the
//! predicate's interior bins match in full without reading a row.
//! Consecutive identical imprints are run-length compressed, which both
//! shrinks metadata and lets pruning decide whole runs at once.
//!
//! Two consumers share this machinery: the [`ads-baselines`] crate's
//! `ColumnImprints` (whole-column, eager — the evaluation baseline) and
//! the adaptive zonemap's per-zone imprint tier in `ads-core` (zone
//! slice, lazily built, dropped by feedback). The classify API speaks
//! storage vocabulary only — slice-local [`RowRange`]s plus a
//! [`RunVerdict`] per run — so both consumers translate decisions into
//! their own outcome types.

use crate::ranges::RowRange;
use crate::types::DataValue;

/// Maximum number of histogram bins (one bit each in a 64-bit imprint).
pub const MAX_BINS: usize = 64;

/// A run of consecutive cache lines sharing one imprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ImprintRun {
    imprint: u64,
    lines: u32,
}

/// What an imprint run proves about a predicate, per run of lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunVerdict {
    /// No value of the run can satisfy the predicate.
    Skip,
    /// Every value of the run satisfies the predicate.
    FullMatch,
    /// The run may hold qualifying and non-qualifying values; scan it.
    Scan,
}

/// Column imprints over one contiguous slice of rows (a whole column or
/// a single zone), addressed in slice-local coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Imprints<T: DataValue> {
    /// Ascending bin boundaries; `boundaries.len() + 1` bins. Bin `k`
    /// holds values `v` with exactly `k` boundaries `<= v`.
    boundaries: Vec<T>,
    values_per_line: usize,
    runs: Vec<ImprintRun>,
    len: usize,
}

impl<T: DataValue> Imprints<T> {
    /// Builds imprints over `data` with the given line width (rows per
    /// imprint; 8 matches one 64-byte cache line of `i64`) and bin count.
    ///
    /// # Panics
    /// Panics if `values_per_line == 0` or `num_bins` is not in `2..=64`.
    pub fn build(data: &[T], values_per_line: usize, num_bins: usize) -> Self {
        assert!(values_per_line > 0, "values_per_line must be positive");
        assert!(
            (2..=MAX_BINS).contains(&num_bins),
            "num_bins must be in 2..=64"
        );
        let boundaries = equi_depth_boundaries(data, num_bins);
        let mut imp = Imprints {
            boundaries,
            values_per_line,
            runs: Vec::new(),
            len: 0,
        };
        imp.extend_lines_from(0, data);
        imp
    }

    /// Default parameters: 8-value lines (one i64 cache line), 64 bins.
    pub fn with_defaults(data: &[T]) -> Self {
        Imprints::build(data, 8, MAX_BINS)
    }

    /// Rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when covering zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of compressed imprint runs (probe cost per query).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of histogram bins actually in use.
    pub fn num_bins(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Rows per imprint line.
    pub fn values_per_line(&self) -> usize {
        self.values_per_line
    }

    /// Heap bytes held by the sketch.
    pub fn metadata_bytes(&self) -> usize {
        self.runs.capacity() * std::mem::size_of::<ImprintRun>()
            + self.boundaries.capacity() * std::mem::size_of::<T>()
    }

    /// Bin index of a value: the number of boundaries `<= v`.
    fn bin_of(&self, v: T) -> usize {
        self.boundaries.partition_point(|b| b.le_total(&v))
    }

    /// Imprint of the rows in `[start, end)`.
    fn line_imprint(&self, data: &[T], start: usize, end: usize) -> u64 {
        let mut imp = 0u64;
        for &v in &data[start..end] {
            imp |= 1u64 << self.bin_of(v);
        }
        imp
    }

    /// Appends an imprint run for one line, RLE-merging with the tail.
    fn rle_push(&mut self, imprint: u64) {
        match self.runs.last_mut() {
            Some(run) if run.imprint == imprint && run.lines < u32::MAX => run.lines += 1,
            _ => self.runs.push(ImprintRun { imprint, lines: 1 }),
        }
    }

    /// Recomputes imprints for all lines from line `first_line` to the
    /// end of `base`, replacing whatever runs covered them.
    fn extend_lines_from(&mut self, first_line: usize, base: &[T]) {
        // Truncate runs down to exactly `first_line` lines.
        let mut kept_lines = 0usize;
        let mut kept_runs = 0usize;
        for run in &self.runs {
            if kept_lines + run.lines as usize <= first_line {
                kept_lines += run.lines as usize;
                kept_runs += 1;
            } else {
                break;
            }
        }
        self.runs.truncate(kept_runs);
        assert_eq!(
            kept_lines, first_line,
            "first_line must fall on a run boundary (callers split first)"
        );

        let vpl = self.values_per_line;
        let mut start = first_line * vpl;
        while start < base.len() {
            let end = (start + vpl).min(base.len());
            let imprint = self.line_imprint(base, start, end);
            self.rle_push(imprint);
            start = end;
        }
        self.len = base.len();
    }

    /// Re-covers an appended tail: `base` is the full slice including new
    /// rows. The line containing the old tail may have been partial, so
    /// everything from that line onward is recomputed. Bin boundaries
    /// stay fixed — imprints do not adapt to domain drift.
    pub fn extend(&mut self, base: &[T]) {
        let first_dirty_line = self.len / self.values_per_line;
        // extend_lines_from requires a run boundary at first_dirty_line;
        // ensure it by splitting the tail run if needed.
        self.split_runs_at_line(first_dirty_line);
        self.extend_lines_from(first_dirty_line, base);
    }

    /// Splits whichever run straddles `line` so that a run boundary
    /// exists exactly there.
    fn split_runs_at_line(&mut self, line: usize) {
        let mut acc = 0usize;
        for i in 0..self.runs.len() {
            let run_lines = self.runs[i].lines as usize;
            if acc + run_lines > line {
                // narrowing: line - acc < run_lines, which fits in u32.
                let before = (line - acc) as u32;
                if before > 0 {
                    let imprint = self.runs[i].imprint;
                    self.runs[i].lines -= before;
                    self.runs.insert(
                        i,
                        ImprintRun {
                            imprint,
                            lines: before,
                        },
                    );
                }
                return;
            }
            acc += run_lines;
        }
    }

    /// Bit mask with bits `a..=b` set.
    fn bits_between(a: usize, b: usize) -> u64 {
        debug_assert!(a <= b && b < 64);
        let width = b - a + 1;
        if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << a
        }
    }

    /// Classifies every run against `[lo, hi]` (inclusive, total order),
    /// yielding `(range, verdict)` per run in ascending slice-local row
    /// order. Soundness: a `Skip` run provably holds no qualifying value;
    /// a `FullMatch` run provably holds only qualifying values.
    pub fn classify<F: FnMut(RowRange, RunVerdict)>(&self, lo: T, hi: T, mut f: F) {
        let lo_bin = self.bin_of(lo);
        let hi_bin = self.bin_of(hi);
        let mask = Self::bits_between(lo_bin, hi_bin);
        // Bins strictly between the predicate's edge bins hold only
        // qualifying values; lines composed purely of interior bins match
        // in full.
        let interior = if hi_bin >= lo_bin + 2 {
            Self::bits_between(lo_bin + 1, hi_bin - 1)
        } else {
            0
        };
        let vpl = self.values_per_line;
        let mut line = 0usize;
        for run in &self.runs {
            let start = (line * vpl).min(self.len);
            line += run.lines as usize;
            let end = (line * vpl).min(self.len);
            let verdict = if run.imprint & mask == 0 {
                RunVerdict::Skip
            } else if run.imprint & !interior == 0 {
                RunVerdict::FullMatch
            } else {
                RunVerdict::Scan
            };
            f(RowRange::new(start, end), verdict);
        }
    }
}

/// Approximate equi-depth bin boundaries from a (possibly sampled) copy
/// of the data. Returns strictly increasing boundaries, at most
/// `num_bins - 1`.
fn equi_depth_boundaries<T: DataValue>(data: &[T], num_bins: usize) -> Vec<T> {
    if data.is_empty() {
        return Vec::new();
    }
    const SAMPLE_CAP: usize = 8192;
    let step = data.len().div_ceil(SAMPLE_CAP).max(1);
    let mut sample: Vec<T> = data.iter().step_by(step).copied().collect();
    sample.sort_unstable_by(|a, b| a.total_cmp(b));
    let mut boundaries = Vec::with_capacity(num_bins - 1);
    for k in 1..num_bins {
        let idx = k * sample.len() / num_bins;
        let candidate = sample[idx.min(sample.len() - 1)];
        if boundaries
            .last()
            .is_none_or(|last: &T| last.lt_total(&candidate))
        {
            boundaries.push(candidate);
        }
    }
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar oracle: classify must never Skip a qualifying row and never
    /// FullMatch a non-qualifying one.
    fn check_sound(imp: &Imprints<i64>, data: &[i64], lo: i64, hi: i64) {
        imp.classify(lo, hi, |range, verdict| {
            for (i, &v) in data[range.start..range.end].iter().enumerate() {
                let q = lo <= v && v <= hi;
                match verdict {
                    RunVerdict::Skip => {
                        assert!(!q, "row {} (value {v}) lost by Skip", range.start + i)
                    }
                    RunVerdict::FullMatch => {
                        assert!(
                            q,
                            "row {} (value {v}) wrongly full-matched",
                            range.start + i
                        )
                    }
                    RunVerdict::Scan => {}
                }
            }
        });
    }

    #[test]
    fn classify_covers_every_row_exactly_once() {
        let data: Vec<i64> = (0..10_000).map(|i| (i * 37) % 1000).collect();
        let imp = Imprints::with_defaults(&data);
        let mut covered = 0usize;
        imp.classify(100, 300, |range, _| {
            assert_eq!(range.start, covered, "gap or overlap");
            covered = range.end;
        });
        assert_eq!(covered, data.len());
    }

    #[test]
    fn classify_is_sound_on_varied_shapes() {
        let sorted: Vec<i64> = (0..8192).collect();
        let random: Vec<i64> = (0..8192).map(|i| (i * 2654435761i64) % 10_000).collect();
        let mut clustered = vec![10i64; 4096];
        clustered.extend(vec![10_000i64; 4096]);
        for data in [&sorted, &random, &clustered] {
            let imp = Imprints::with_defaults(data);
            for q in 0..20 {
                let lo = (q * 331) % 9000;
                check_sound(&imp, data, lo, lo + 400);
            }
        }
    }

    #[test]
    fn wide_predicate_full_matches_interior_lines() {
        let data: Vec<i64> = (0..64_000).collect();
        let imp = Imprints::with_defaults(&data);
        let mut full = 0usize;
        imp.classify(10_000, 50_000, |range, verdict| {
            if verdict == RunVerdict::FullMatch {
                full += range.len();
            }
        });
        assert!(
            full > 0,
            "sorted data under a wide predicate must full-match"
        );
    }

    #[test]
    fn extend_keeps_soundness_and_splits_rle_runs() {
        let mut data = vec![5i64; 100];
        let mut imp = Imprints::build(&data, 8, 16);
        assert_eq!(imp.num_runs(), 1);
        data.extend(vec![999_999i64; 20]);
        imp.extend(&data);
        assert_eq!(imp.len(), 120);
        check_sound(&imp, &data, 900_000, 1_000_000);
        check_sound(&imp, &data, 5, 5);
    }

    #[test]
    fn accessors_and_empty() {
        let imp = Imprints::build(&(0..640i64).collect::<Vec<_>>(), 8, 64);
        assert_eq!(imp.values_per_line(), 8);
        assert!(imp.num_bins() <= 64 && imp.num_bins() >= 2);
        assert!(imp.metadata_bytes() > 0);
        assert!(!imp.is_empty());

        let empty = Imprints::build(&[] as &[i64], 8, 8);
        assert!(empty.is_empty());
        let mut calls = 0;
        empty.classify(0, 10, |_, _| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn floats_with_nan_never_lose_rows() {
        let mut data: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 / 4.0).collect();
        data[100] = f64::NAN;
        data[2000] = f64::NEG_INFINITY;
        data[3000] = -0.0;
        let imp = Imprints::with_defaults(&data);
        for (lo, hi) in [(0.0, 5.0), (-1.0, 0.0), (20.0, 24.0)] {
            imp.classify(lo, hi, |range, verdict| {
                for &v in &data[range.start..range.end] {
                    let q = v.ge_total(&lo) && v.le_total(&hi);
                    match verdict {
                        RunVerdict::Skip => assert!(!q, "lost {v}"),
                        RunVerdict::FullMatch => assert!(q, "bad full {v}"),
                        RunVerdict::Scan => {}
                    }
                }
            });
        }
    }
}

//! Out-of-place mutation primitives: tombstones and tail deltas.
//!
//! The store's columns are immutable once published ([`crate::SharedColumn`]
//! shares its rows behind an `Arc`), so mutations never touch them in
//! place. A `delete(rowid)` sets a bit in an epoch-stamped [`DeleteVector`];
//! an `update(rowid, value)` tombstones the old row and appends the new
//! value at the tail (a fresh rowid); plain appends ride the same tail. A
//! [`DeltaBuffer`] stages those three operations between publication
//! rounds so a whole batch lands in one snapshot swap — readers see either
//! none of a batch or all of it, never a torn prefix.
//!
//! Scan kernels consume the delete vector word-wise: one
//! [`DeleteVector::live_window`] call covers a full 64-row block, ANDed
//! into the block's qualifying lane mask, so masking costs one load and
//! one AND per block instead of a per-row branch.

use crate::bitmap::Bitmap;

/// An epoch-stamped tombstone set over the rows of one column (or one
/// shard of one column).
///
/// Bit `i` set means row `i` is deleted. The epoch stamps which
/// publication round produced this version of the vector: a reader that
/// holds a snapshot `{column, delete_vector, epoch}` can always tell
/// which mutations its view includes, because the vector and its epoch
/// travel in the same allocation.
///
/// ```
/// use ads_storage::DeleteVector;
/// let mut dv = DeleteVector::new(100, 1);
/// assert!(dv.delete(42));
/// assert!(!dv.delete(42)); // idempotent: already dead
/// assert_eq!(dv.live_count(), 99);
/// assert_eq!(dv.live_window(42) & 1, 0); // row 42 masked out
/// ```
#[derive(Clone, Debug)]
pub struct DeleteVector {
    deleted: Bitmap,
    deleted_count: usize,
    epoch: u64,
}

impl DeleteVector {
    /// Creates an all-live vector over `len` rows, stamped `epoch`.
    pub fn new(len: usize, epoch: u64) -> Self {
        DeleteVector {
            deleted: Bitmap::new(len),
            deleted_count: 0,
            epoch,
        }
    }

    /// Number of rows the vector addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.deleted.len()
    }

    /// True if the vector addresses zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
    }

    /// The publication epoch this version of the vector belongs to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps a new publication epoch.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Tombstones row `row`. Returns `true` if the row was live (a new
    /// tombstone), `false` if it was already dead — deletes are
    /// idempotent and double-deletes never inflate the count.
    ///
    /// # Panics
    /// Panics if `row >= len`.
    pub fn delete(&mut self, row: usize) -> bool {
        if self.deleted.get(row) {
            return false;
        }
        self.deleted.set(row);
        self.deleted_count += 1;
        true
    }

    /// True if row `row` has been tombstoned.
    ///
    /// # Panics
    /// Panics if `row >= len`.
    #[inline]
    pub fn is_deleted(&self, row: usize) -> bool {
        self.deleted.get(row)
    }

    /// Number of tombstoned rows.
    #[inline]
    pub fn deleted_count(&self) -> usize {
        self.deleted_count
    }

    /// Number of live rows.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.len() - self.deleted_count
    }

    /// Fraction of rows tombstoned, in `[0, 1]`; `0` for an empty vector.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.deleted_count as f64 / self.len() as f64
        }
    }

    /// The 64-row liveness window starting at row `bit`: result bit `i`
    /// is `1` iff row `bit + i` exists and is live. Rows at or past `len`
    /// read as dead, so a scan block that overhangs the column tail masks
    /// itself without a bounds branch.
    #[inline]
    pub fn live_window(&self, bit: usize) -> u64 {
        let len = self.deleted.len();
        if bit >= len {
            return 0;
        }
        let live = !self.deleted.window_at(bit);
        let remaining = len - bit;
        if remaining < 64 {
            live & (u64::MAX >> (64 - remaining))
        } else {
            live
        }
    }

    /// Number of live rows in `start..end`, word-at-a-time.
    ///
    /// # Panics
    /// Panics if `end > len` or `start > end`.
    pub fn live_count_in_range(&self, start: usize, end: usize) -> usize {
        (end - start) - self.deleted.count_ones_in_range(start, end)
    }

    /// Grows the vector to cover `new_len` rows; appended rows are live.
    ///
    /// # Panics
    /// Panics if `new_len < len` (rows never disappear outside compaction,
    /// which builds a fresh vector instead).
    pub fn grow(&mut self, new_len: usize) {
        self.deleted.grow(new_len);
    }

    /// True if any row is tombstoned — the fast-path gate: kernels skip
    /// masking entirely on an all-live vector.
    #[inline]
    pub fn has_deletes(&self) -> bool {
        self.deleted_count > 0
    }
}

/// A staging buffer for one publication round of out-of-place mutations.
///
/// Rowids are addressed in the coordinate space of the column the buffer
/// will be applied to (global rowids for a sharded column; the applier
/// routes them to shards). `update` decomposes into tombstone + tail
/// append here, so downstream there are only two primitive effects:
/// a set of rows to tombstone and a run of values to append.
///
/// ```
/// use ads_storage::DeltaBuffer;
/// let mut delta = DeltaBuffer::new();
/// delta.delete(3);
/// delta.update(7, 99i64); // tombstone 7, value 99 reborn at the tail
/// delta.append(100);
/// assert_eq!(delta.pending_deletes(), 2);
/// assert_eq!(delta.pending_appends(), 2);
/// let (deletes, appends) = delta.take();
/// assert_eq!(deletes, vec![3, 7]);
/// assert_eq!(appends, vec![99, 100]);
/// ```
#[derive(Clone, Debug)]
pub struct DeltaBuffer<T> {
    deletes: Vec<usize>,
    appends: Vec<T>,
}

impl<T> Default for DeltaBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeltaBuffer<T> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        DeltaBuffer {
            deletes: Vec::new(),
            appends: Vec::new(),
        }
    }

    /// Stages a tombstone for `rowid`.
    pub fn delete(&mut self, rowid: usize) {
        self.deletes.push(rowid);
    }

    /// Stages an update of `rowid` to `value`: tombstone the old row,
    /// append the new value at the tail (it gets a fresh rowid when the
    /// buffer is applied).
    pub fn update(&mut self, rowid: usize, value: T) {
        self.deletes.push(rowid);
        self.appends.push(value);
    }

    /// Stages a plain tail append.
    pub fn append(&mut self, value: T) {
        self.appends.push(value);
    }

    /// Number of staged tombstones (updates count once each).
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Number of staged tail values (updates count once each).
    pub fn pending_appends(&self) -> usize {
        self.appends.len()
    }

    /// True if nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.appends.is_empty()
    }

    /// Drains the buffer, returning `(rowids to tombstone, values to
    /// append)` in staging order. The buffer is empty afterwards.
    pub fn take(&mut self) -> (Vec<usize>, Vec<T>) {
        (
            std::mem::take(&mut self.deletes),
            std::mem::take(&mut self.appends),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_is_idempotent_and_counts_once() {
        let mut dv = DeleteVector::new(128, 0);
        assert!(dv.delete(5));
        assert!(!dv.delete(5));
        assert!(dv.delete(127));
        assert_eq!(dv.deleted_count(), 2);
        assert_eq!(dv.live_count(), 126);
        assert!(dv.is_deleted(5) && dv.is_deleted(127));
        assert!(!dv.is_deleted(6));
    }

    #[test]
    fn live_window_complements_and_kills_overhang() {
        let mut dv = DeleteVector::new(70, 0);
        dv.delete(0);
        dv.delete(65);
        // Block at 0: bit 0 dead, rest live.
        assert_eq!(dv.live_window(0), u64::MAX << 1); // bit 0 clear
        assert_eq!(dv.live_window(0) & 1, 0);
        // Block at 64: rows 64..70 exist (6 bits), row 65 dead.
        let w = dv.live_window(64);
        assert_eq!(w, 0b11_1101);
        // Fully past the end: all dead.
        assert_eq!(dv.live_window(70), 0);
        assert_eq!(dv.live_window(128), 0);
    }

    #[test]
    fn live_window_matches_per_row_reference() {
        let mut dv = DeleteVector::new(200, 0);
        for i in (0..200).step_by(3) {
            dv.delete(i);
        }
        for base in [0usize, 1, 63, 64, 65, 137, 199, 200] {
            let w = dv.live_window(base);
            for i in 0..64 {
                let want = base + i < 200 && !dv.is_deleted(base + i);
                assert_eq!((w >> i) & 1 == 1, want, "base={base} bit={i}");
            }
        }
    }

    #[test]
    fn live_count_in_range_matches_reference() {
        let mut dv = DeleteVector::new(300, 0);
        for i in (0..300).step_by(7) {
            dv.delete(i);
        }
        for (start, end) in [(0, 300), (0, 0), (5, 70), (63, 65), (64, 256)] {
            let want = (start..end).filter(|&i| !dv.is_deleted(i)).count();
            assert_eq!(dv.live_count_in_range(start, end), want, "{start}..{end}");
        }
    }

    #[test]
    fn grow_keeps_tombstones_and_adds_live_rows() {
        let mut dv = DeleteVector::new(10, 3);
        dv.delete(9);
        dv.grow(100);
        assert_eq!(dv.len(), 100);
        assert!(dv.is_deleted(9));
        assert!(!dv.is_deleted(50));
        assert_eq!(dv.live_count(), 99);
        assert_eq!(dv.epoch(), 3);
    }

    #[test]
    fn tombstone_ratio() {
        let mut dv = DeleteVector::new(4, 0);
        assert_eq!(dv.tombstone_ratio(), 0.0);
        dv.delete(0);
        assert_eq!(dv.tombstone_ratio(), 0.25);
        assert!(dv.has_deletes());
        assert_eq!(DeleteVector::new(0, 0).tombstone_ratio(), 0.0);
        assert!(DeleteVector::new(0, 0).is_empty());
    }

    #[test]
    fn epoch_restamps() {
        let mut dv = DeleteVector::new(8, 1);
        dv.set_epoch(9);
        assert_eq!(dv.epoch(), 9);
    }

    #[test]
    fn delta_buffer_stages_and_drains_in_order() {
        let mut delta: DeltaBuffer<i64> = DeltaBuffer::default();
        assert!(delta.is_empty());
        delta.delete(10);
        delta.update(20, -1);
        delta.append(7);
        assert!(!delta.is_empty());
        assert_eq!(delta.pending_deletes(), 2);
        assert_eq!(delta.pending_appends(), 2);
        let (deletes, appends) = delta.take();
        assert_eq!(deletes, vec![10, 20]);
        assert_eq!(appends, vec![-1, 7]);
        assert!(delta.is_empty());
    }
}

//! Order-preserving dictionary-encoded string columns.
//!
//! String predicates become integer-range predicates: the dictionary is
//! kept sorted, so code order equals string order and any skipping index
//! over the `u32` code column prunes string ranges, equality, and prefix
//! queries. This is how columnar systems (ORC, Parquet + dictionary
//! encoding) get zonemap-style skipping on strings.
//!
//! The price of order preservation is paid on ingestion: appending a
//! string the dictionary has not seen forces a dictionary rebuild and a
//! full code remap, invalidating any index built over the codes. The
//! append API surfaces that explicitly so callers can rebuild.

use crate::column::Column;

/// A string column stored as a sorted dictionary plus per-row codes.
///
/// ```
/// use ads_storage::DictColumn;
/// let col = DictColumn::from_strings(&["cherry", "apple", "banana"]);
/// // String order == code order, so range predicates become code ranges.
/// let (lo, hi) = col.code_range("apple", "banana").unwrap();
/// assert!(lo < hi);
/// assert_eq!(col.value(0), "cherry");
/// assert_eq!(col.code_range("x", "z"), None); // provably empty
/// ```
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    /// Sorted, deduplicated values; `codes[i]` indexes into this.
    dict: Vec<String>,
    codes: Column<u32>,
}

/// What an append did to the code space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendEffect {
    /// Only known strings were appended; existing codes are unchanged and
    /// any index over the codes stays valid after its own `on_append`.
    Extended,
    /// New strings forced a dictionary rebuild: **every** code may have
    /// changed, and indexes over the codes must be rebuilt from scratch.
    Remapped,
}

impl DictColumn {
    /// Builds a dictionary column from row values.
    pub fn from_strings<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dict: Vec<String> = values.iter().map(|s| s.as_ref().to_string()).collect();
        dict.sort_unstable();
        dict.dedup();
        let codes = values
            .iter()
            .map(|s| {
                dict.binary_search_by(|d| d.as_str().cmp(s.as_ref()))
                    // invariant: the dictionary was built from exactly
                    // these values two lines up.
                    .expect("value was inserted into dict") as u32
            })
            .collect();
        DictColumn {
            dict,
            codes: Column::from_values(codes),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The string at `row`.
    ///
    /// # Panics
    /// Panics if `row >= len`.
    pub fn value(&self, row: usize) -> &str {
        &self.dict[self.codes.value(row) as usize]
    }

    /// The code column — the thing skipping indexes are built over.
    pub fn codes(&self) -> &Column<u32> {
        &self.codes
    }

    /// The sorted dictionary.
    pub fn dictionary(&self) -> &[String] {
        &self.dict
    }

    /// Code of an exact string, if present.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict
            .binary_search_by(|d| d.as_str().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// Inclusive code bounds equivalent to the string range `[lo, hi]`,
    /// or `None` when no stored value falls in the range. Order
    /// preservation makes this exact: `code in [a, b]  <=>  value in
    /// [lo, hi]` for stored values.
    pub fn code_range(&self, lo: &str, hi: &str) -> Option<(u32, u32)> {
        let a = self.dict.partition_point(|d| d.as_str() < lo);
        let b = self.dict.partition_point(|d| d.as_str() <= hi);
        (a < b).then(|| (a as u32, (b - 1) as u32))
    }

    /// Inclusive code bounds for values starting with `prefix`, or `None`
    /// when no stored value matches.
    pub fn code_range_prefix(&self, prefix: &str) -> Option<(u32, u32)> {
        let a = self.dict.partition_point(|d| d.as_str() < prefix);
        let b = self
            .dict
            .partition_point(|d| d.as_str() < prefix || d.starts_with(prefix));
        (a < b).then(|| (a as u32, (b - 1) as u32))
    }

    /// Appends rows. Returns whether existing codes survived.
    pub fn append<S: AsRef<str>>(&mut self, values: &[S]) -> AppendEffect {
        let all_known = values.iter().all(|s| self.code_of(s.as_ref()).is_some());
        if all_known {
            for s in values {
                // invariant: all_known verified every value has a code.
                let code = self.code_of(s.as_ref()).expect("checked known");
                self.codes.push(code);
            }
            return AppendEffect::Extended;
        }
        // Rebuild: merge new distinct values, then remap every row.
        let old_dict = std::mem::take(&mut self.dict);
        let mut materialised: Vec<String> = self
            .codes
            .as_slice()
            .iter()
            .map(|&c| old_dict[c as usize].clone())
            .collect();
        materialised.extend(values.iter().map(|s| s.as_ref().to_string()));
        *self = DictColumn::from_strings(&materialised);
        AppendEffect::Remapped
    }

    /// Heap bytes: dictionary strings plus codes.
    pub fn memory_bytes(&self) -> usize {
        self.dict.iter().map(|s| s.capacity()).sum::<usize>()
            + self.dict.capacity() * std::mem::size_of::<String>()
            + self.codes.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DictColumn {
        DictColumn::from_strings(&["cherry", "apple", "banana", "apple", "date", "banana"])
    }

    #[test]
    fn build_and_read_back() {
        let c = sample();
        assert_eq!(c.len(), 6);
        assert_eq!(c.cardinality(), 4);
        assert_eq!(c.value(0), "cherry");
        assert_eq!(c.value(1), "apple");
        assert_eq!(c.value(5), "banana");
    }

    #[test]
    fn codes_preserve_order() {
        let c = sample();
        // apple < banana < cherry < date in both string and code order.
        let codes: Vec<u32> = ["apple", "banana", "cherry", "date"]
            .iter()
            .map(|s| c.code_of(s).expect("present"))
            .collect();
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(c.code_of("kiwi"), None);
    }

    #[test]
    fn code_range_semantics() {
        let c = sample();
        let (a, b) = c.code_range("banana", "cherry").expect("non-empty");
        assert_eq!(a, c.code_of("banana").expect("present"));
        assert_eq!(b, c.code_of("cherry").expect("present"));
        // Bounds not present in the dictionary still clamp correctly.
        let (a2, b2) = c.code_range("apricot", "coconut").expect("non-empty");
        assert_eq!(a2, c.code_of("banana").expect("present"));
        assert_eq!(b2, c.code_of("cherry").expect("present"));
        assert_eq!(c.code_range("x", "z"), None);
        assert_eq!(c.code_range("aa", "ab"), None);
    }

    #[test]
    fn prefix_range() {
        let c = DictColumn::from_strings(&["aa", "ab", "abc", "abd", "ac", "b"]);
        let (a, b) = c.code_range_prefix("ab").expect("non-empty");
        assert_eq!(a, c.code_of("ab").expect("present"));
        assert_eq!(b, c.code_of("abd").expect("present"));
        assert_eq!(c.code_range_prefix("zz"), None);
        let (fa, fb) = c.code_range_prefix("a").expect("non-empty");
        assert_eq!((fa, fb), (0, 4));
    }

    #[test]
    fn append_known_values_extends() {
        let mut c = sample();
        let effect = c.append(&["apple", "date"]);
        assert_eq!(effect, AppendEffect::Extended);
        assert_eq!(c.len(), 8);
        assert_eq!(c.value(6), "apple");
        assert_eq!(c.cardinality(), 4);
    }

    #[test]
    fn append_new_values_remaps() {
        let mut c = sample();
        let before_banana = c.code_of("banana").expect("present");
        let effect = c.append(&["aardvark", "zebra"]);
        assert_eq!(effect, AppendEffect::Remapped);
        assert_eq!(c.len(), 8);
        assert_eq!(c.cardinality(), 6);
        // "aardvark" now sorts first, shifting every other code.
        assert_eq!(c.code_of("aardvark"), Some(0));
        assert_ne!(c.code_of("banana"), Some(before_banana));
        // Row values survive the remap.
        assert_eq!(c.value(0), "cherry");
        assert_eq!(c.value(6), "aardvark");
        assert_eq!(c.value(7), "zebra");
    }

    #[test]
    fn empty_column() {
        let c = DictColumn::from_strings::<&str>(&[]);
        assert!(c.is_empty());
        assert_eq!(c.code_range("a", "z"), None);
        assert_eq!(c.code_range_prefix(""), None);
    }

    #[test]
    fn memory_accounting_nonzero() {
        assert!(sample().memory_bytes() > 0);
    }
}

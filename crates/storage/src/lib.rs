//! # ads-storage — main-memory column store substrate
//!
//! The storage layer underneath the adaptive data-skipping framework of
//! Qin & Idreos, *Adaptive Data Skipping in Main-Memory Systems* (SIGMOD
//! 2016). It provides exactly what the paper's setting assumes:
//!
//! * dense, typed, append-only [`Column`]s grouped into [`Table`]s;
//! * tight branchless [`scan`] kernels ("fast scans") over column slices,
//!   including a kernel that computes zone `(min, max)` metadata as a
//!   by-product of a scan;
//! * row addressing via [`Bitmap`]s and disjoint [`RangeSet`]s — the
//!   currency in which skipping indexes tell scans what they may skip;
//! * order-preserving dictionary-encoded string columns ([`DictColumn`])
//!   that turn string predicates into integer code ranges;
//! * out-of-place mutation primitives ([`mutation`]): epoch-stamped
//!   tombstone vectors and tail delta buffers, so updates and deletes
//!   never rewrite a published column version;
//! * value-set and histogram sketches over row ranges ([`sketch`],
//!   [`imprint`]) — the metadata tiers skipping indexes layer on top of
//!   plain `(min, max)` bounds;
//! * optional [`parallel`] scan helpers for full-table baselines.
//!
//! Nothing here knows about zonemaps: the skipping logic lives in
//! `ads-core`, keeping the substrate reusable by the baseline indexes too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod catalog;
pub mod column;
pub mod error;
pub mod imprint;
pub mod mutation;
pub mod parallel;
pub mod ranges;
pub mod reorg;
pub mod scan;
pub mod sharded;
pub mod shared;
pub mod sketch;
pub mod strings;
pub mod table;
pub mod types;

pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use column::Column;
pub use error::{Result, StorageError};
pub use imprint::{Imprints, RunVerdict};
pub use mutation::{DeleteVector, DeltaBuffer};
pub use ranges::{RangeSet, RowRange};
pub use reorg::{ReorgSpans, ReorgZone};
pub use sharded::ShardedColumn;
pub use shared::SharedColumn;
pub use sketch::BloomSketch;
pub use strings::{AppendEffect, DictColumn};
pub use table::{AnyColumn, ColumnAccess, Table};
pub use types::DataValue;

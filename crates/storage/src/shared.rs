//! Shared immutable column versions.
//!
//! A [`SharedColumn`] is one frozen version of a column's data: cheap to
//! clone (an `Arc` bump), safe to read from any number of threads, and
//! never mutated in place. Growing the column produces a *new* version via
//! [`SharedColumn::append`]; readers holding the old version keep a
//! consistent view for as long as they need it. This is the storage half
//! of snapshot isolation: a snapshot pairs one column version with the
//! index metadata computed over exactly that version, so stale metadata
//! can never be applied to newer data.

use crate::types::DataValue;
use std::sync::Arc;

/// One immutable version of a column, shareable across threads.
#[derive(Debug, Clone)]
pub struct SharedColumn<T: DataValue> {
    data: Arc<Vec<T>>,
    /// Monotone version number: 0 for the initial load, +1 per append.
    version: u64,
}

impl<T: DataValue> SharedColumn<T> {
    /// Freezes `data` as version 0.
    pub fn new(data: Vec<T>) -> Self {
        SharedColumn {
            data: Arc::new(data),
            version: 0,
        }
    }

    /// The column values.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of rows in this version.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when this version holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// This version's number.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Produces the next version: this version's rows followed by `rows`.
    ///
    /// Copy-on-append: the new version owns a fresh allocation, so readers
    /// of `self` are unaffected. O(len + rows.len()) — appends are expected
    /// to be batched and serialized through a single writer (the service's
    /// maintenance thread), not fired per row.
    pub fn append(&self, rows: &[T]) -> SharedColumn<T> {
        let mut grown = Vec::with_capacity(self.data.len() + rows.len());
        grown.extend_from_slice(&self.data);
        grown.extend_from_slice(rows);
        SharedColumn {
            data: Arc::new(grown),
            version: self.version + 1,
        }
    }

    /// Produces the next version with `data` as its rows — the compaction
    /// path: live rows densely repacked replace this version wholesale,
    /// and the version number still advances so consumers that sum shard
    /// versions into a monotone snapshot number keep their invariant
    /// (`new()` would restart at 0 and make the sum go backwards).
    pub fn replace(&self, data: Vec<T>) -> SharedColumn<T> {
        SharedColumn {
            data: Arc::new(data),
            version: self.version + 1,
        }
    }

    /// Bytes of column data this version holds.
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

impl<T: DataValue> std::ops::Deref for SharedColumn<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_produces_new_version_and_preserves_old() {
        let v0 = SharedColumn::new(vec![1i64, 2, 3]);
        let v1 = v0.append(&[4, 5]);
        assert_eq!(v0.as_slice(), &[1, 2, 3]);
        assert_eq!(v1.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!((v0.version(), v1.version()), (0, 1));
        assert_eq!((v0.len(), v1.len()), (3, 5));
    }

    #[test]
    fn replace_swaps_rows_and_advances_version() {
        let v0 = SharedColumn::new(vec![1i64, 2, 3, 4]);
        let v1 = v0.append(&[5]);
        let compacted = v1.replace(vec![2, 4, 5]);
        assert_eq!(compacted.as_slice(), &[2, 4, 5]);
        assert_eq!(compacted.version(), 2);
        assert_eq!(v1.as_slice(), &[1, 2, 3, 4, 5], "old version untouched");
    }

    #[test]
    fn clones_share_the_allocation() {
        let v0 = SharedColumn::new((0..1000).collect::<Vec<i64>>());
        let c = v0.clone();
        assert!(std::ptr::eq(v0.as_slice(), c.as_slice()));
        assert_eq!(c.version(), 0);
    }

    #[test]
    fn empty_and_bytes() {
        let e: SharedColumn<i64> = SharedColumn::new(Vec::new());
        assert!(e.is_empty());
        assert_eq!(e.data_bytes(), 0);
        let one = e.append(&[7]);
        assert!(!one.is_empty());
        assert_eq!(one.data_bytes(), 8);
        // Deref gives slice methods directly.
        assert_eq!(one.iter().sum::<i64>(), 7);
    }
}

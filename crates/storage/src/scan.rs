//! Tight scan kernels over column slices.
//!
//! These loops are the "fast scans" the paper's setting assumes. They are
//! explicitly **block-structured**: each kernel walks the slice in
//! 64-element lanes (`chunks_exact(64)` plus a scalar tail) and evaluates
//! the predicate branchlessly into a per-block `u64` qualifying bitmask —
//! bit `i` set when lane `i` satisfies `lo <= v <= hi`. Everything
//! downstream consumes the mask in word units: COUNT is a popcount per
//! block, bitmap materialisation is one word-OR per block
//! ([`crate::Bitmap::or_mask_at`]), position collection iterates set bits
//! with `trailing_zeros`, and value-reading aggregates select through the
//! mask instead of branching per element. All kernels take *inclusive*
//! value bounds `[lo, hi]`, matching how zonemap `(min, max)` metadata is
//! compared against predicates.
//!
//! The pre-block scalar implementations are retained verbatim in
//! [`scalar`]: they are the reference the property tests compare every
//! block kernel against, and the baseline the kernel benchmark
//! (`cargo run -p ads-bench --release --bin kernels_json`) measures
//! speedups over.

use crate::bitmap::Bitmap;
use crate::mutation::DeleteVector;
use crate::types::DataValue;

/// Lanes per block: one qualifying bit per lane fills exactly one `u64`.
pub const LANES: usize = 64;

/// One past the largest row position representable in the `u32` position
/// lists ([`collect_in_range`], [`Bitmap::to_positions`]). Columns at or
/// above this row count must grow the position type before they can use
/// positional kernels; the guard asserts instead of silently truncating.
pub const MAX_ADDRESSABLE_ROWS: usize = u32::MAX as usize + 1;

/// Guards the `u32` position encoding: `base + len` rows must stay within
/// [`MAX_ADDRESSABLE_ROWS`].
#[inline]
fn assert_positions_addressable(base: usize, len: usize) {
    assert!(
        base + len <= MAX_ADDRESSABLE_ROWS,
        "rows {base}..{} exceed the u32 position ceiling ({MAX_ADDRESSABLE_ROWS} rows)",
        base + len
    );
}

/// Multiplier for the SWAR byte→bit pack: with eight 0/1 bytes packed
/// little-endian in a `u64`, `(w * PACK_MUL) >> 56` places byte `i`'s
/// value at bit `i` of the top byte (the portable movemask trick).
const PACK_MUL: u64 = 0x0102_0408_1020_4080;

/// Folds 64 0/1 lane bytes into the per-block qualifying bitmask via
/// eight multiply-packs.
#[inline]
fn pack_lanes(lanes: &[u8; LANES]) -> u64 {
    let mut mask = 0u64;
    for (w, group) in lanes.chunks_exact(8).enumerate() {
        // invariant: chunks_exact(8) yields exactly 8 bytes per group.
        let word = u64::from_le_bytes(group.try_into().expect("chunks_exact(8)"));
        mask |= (word.wrapping_mul(PACK_MUL) >> 56) << (8 * w);
    }
    mask
}

/// The per-block predicate kernel: bit `i` of the result is set when
/// `block[i]` lies in `[lo, hi]` under the total order.
///
/// Two branchless passes: the compares write one 0/1 *byte* per lane —
/// a loop with no cross-iteration dependency that the compiler turns
/// into packed SIMD compares — and then eight multiply-packs fold each
/// 8-byte group into 8 mask bits. A single-pass `mask |= q << i` loop
/// is a 64-deep dependent OR chain that defeats vectorisation.
///
/// Point predicates (`lo` total-order-equal to `hi`, the lowering of
/// equality queries) dispatch to a single-compare pass — one predictable
/// branch per block buys every kernel the equality fast path at once.
#[inline]
fn lane_mask<T: DataValue>(block: &[T], lo: T, hi: T) -> u64 {
    debug_assert_eq!(block.len(), LANES);
    if lo.eq_total(&hi) {
        return lane_mask_point(block, lo);
    }
    let mut lanes = [0u8; LANES];
    for (b, v) in lanes.iter_mut().zip(block) {
        *b = v.in_range_total(&lo, &hi) as u8;
    }
    pack_lanes(&lanes)
}

/// Equality kernel: one compare per lane instead of two.
#[inline]
fn lane_mask_point<T: DataValue>(block: &[T], v: T) -> u64 {
    debug_assert_eq!(block.len(), LANES);
    let mut lanes = [0u8; LANES];
    for (b, x) in lanes.iter_mut().zip(block) {
        *b = x.eq_total(&v) as u8;
    }
    pack_lanes(&lanes)
}

/// Counts values `v` in `data` with `lo <= v <= hi`.
#[inline]
pub fn count_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> usize {
    let mut chunks = data.chunks_exact(LANES);
    let mut count = 0usize;
    for block in chunks.by_ref() {
        count += lane_mask(block, lo, hi).count_ones() as usize;
    }
    for v in chunks.remainder() {
        count += v.in_range_total(&lo, &hi) as usize;
    }
    count
}

/// Counts qualifying values and simultaneously computes the exact
/// `(min, max)` of the slice.
///
/// This is the kernel adaptive zonemaps use to materialise zone metadata
/// *as a by-product of a scan the query had to perform anyway* — the "free"
/// metadata collection at the heart of incremental adaptation. Returns
/// `(count, min, max)`; for an empty slice, `(0, MAX_VALUE, MIN_VALUE)`.
#[inline]
pub fn count_in_range_with_minmax<T: DataValue>(data: &[T], lo: T, hi: T) -> (usize, T, T) {
    let mut chunks = data.chunks_exact(LANES);
    let mut count = 0usize;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    for block in chunks.by_ref() {
        count += lane_mask(block, lo, hi).count_ones() as usize;
        for &v in block {
            min = min.min_total(v);
            max = max.max_total(v);
        }
    }
    for &v in chunks.remainder() {
        count += v.in_range_total(&lo, &hi) as usize;
        min = min.min_total(v);
        max = max.max_total(v);
    }
    (count, min, max)
}

/// Appends the positions (`base + offset`) of qualifying values to `out`.
///
/// # Panics
/// Panics if `base + data.len()` exceeds [`MAX_ADDRESSABLE_ROWS`].
#[inline]
pub fn collect_in_range<T: DataValue>(data: &[T], base: usize, lo: T, hi: T, out: &mut Vec<u32>) {
    assert_positions_addressable(base, data.len());
    let mut chunks = data.chunks_exact(LANES);
    let mut block_base = base as u32;
    for block in chunks.by_ref() {
        let mut mask = lane_mask(block, lo, hi);
        while mask != 0 {
            out.push(block_base + mask.trailing_zeros());
            mask &= mask - 1; // clear lowest set bit
        }
        block_base += LANES as u32;
    }
    for (i, v) in chunks.remainder().iter().enumerate() {
        if v.in_range_total(&lo, &hi) {
            out.push(block_base + i as u32);
        }
    }
}

/// Sets the bits (`base + offset`) of qualifying values in `bm`, one
/// word-OR per 64-row block.
///
/// # Panics
/// Panics if `base + data.len()` exceeds the bitmap length.
#[inline]
pub fn fill_bitmap_in_range<T: DataValue>(data: &[T], base: usize, lo: T, hi: T, bm: &mut Bitmap) {
    assert!(
        base + data.len() <= bm.len(),
        "bitmap too small for scan output"
    );
    let mut chunks = data.chunks_exact(LANES);
    let mut bit = base;
    for block in chunks.by_ref() {
        bm.or_mask_at(bit, lane_mask(block, lo, hi));
        bit += LANES;
    }
    for (i, v) in chunks.remainder().iter().enumerate() {
        if v.in_range_total(&lo, &hi) {
            bm.set(bit + i);
        }
    }
}

/// Sums qualifying values as `f64` and counts them; returns `(count, sum)`.
///
/// `f64` accumulation keeps one kernel for all value types; integer columns
/// up to 2^53 sum exactly, which covers the workloads in this repository.
/// Accumulation order is ascending row order, so results are bit-identical
/// to the scalar reference (the accumulator can never become `-0.0`, so
/// skipping the non-qualifying `+0.0` adds changes nothing).
#[inline]
pub fn sum_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> (usize, f64) {
    let mut chunks = data.chunks_exact(LANES);
    let mut count = 0usize;
    let mut sum = 0.0f64;
    for block in chunks.by_ref() {
        let mask = lane_mask(block, lo, hi);
        count += mask.count_ones() as usize;
        if mask == u64::MAX {
            for &v in block {
                sum += v.to_f64();
            }
        } else {
            let mut m = mask;
            while m != 0 {
                sum += block[m.trailing_zeros() as usize].to_f64();
                m &= m - 1;
            }
        }
    }
    for &v in chunks.remainder() {
        let q = v.in_range_total(&lo, &hi);
        count += q as usize;
        sum += if q { v.to_f64() } else { 0.0 };
    }
    (count, sum)
}

/// Sums every value of the slice as `f64` — the no-predicate kernel for
/// ranges already proven to fully match, where re-evaluating the
/// predicate per row (as `sum_in_range` with `[MIN, MAX]` bounds would)
/// wastes two comparisons per tuple.
#[inline]
pub fn sum_all<T: DataValue>(data: &[T]) -> f64 {
    let mut sum = 0.0f64;
    for &v in data {
        sum += v.to_f64();
    }
    sum
}

/// Full aggregate state of one scanned range, produced in a single pass.
///
/// `range_min`/`range_max` cover *all* rows (zone-metadata by-product);
/// `match_min`/`match_max` cover only qualifying rows (MIN/MAX aggregates)
/// and hold the fold identities when `count == 0`.
#[derive(Debug, Clone, Copy)]
pub struct RangeAggregates<T: DataValue> {
    /// Qualifying rows.
    pub count: usize,
    /// Sum of qualifying rows as `f64`.
    pub sum: f64,
    /// Minimum over all rows of the slice.
    pub range_min: T,
    /// Maximum over all rows of the slice.
    pub range_max: T,
    /// Minimum over qualifying rows (MAX_VALUE when none qualify).
    pub match_min: T,
    /// Maximum over qualifying rows (MIN_VALUE when none qualify).
    pub match_max: T,
}

impl<T: DataValue> RangeAggregates<T> {
    /// The fold identity: zero rows seen.
    fn identity() -> Self {
        RangeAggregates {
            count: 0,
            sum: 0.0,
            range_min: T::MAX_VALUE,
            range_max: T::MIN_VALUE,
            match_min: T::MAX_VALUE,
            match_max: T::MIN_VALUE,
        }
    }
}

/// Computes every aggregate of [`RangeAggregates`] in one pass.
#[inline]
pub fn aggregate_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> RangeAggregates<T> {
    let mut agg: RangeAggregates<T> = RangeAggregates::identity();
    let mut chunks = data.chunks_exact(LANES);
    for block in chunks.by_ref() {
        let mask = lane_mask(block, lo, hi);
        agg.count += mask.count_ones() as usize;
        for &v in block {
            agg.range_min = agg.range_min.min_total(v);
            agg.range_max = agg.range_max.max_total(v);
        }
        let mut m = mask;
        while m != 0 {
            let v = block[m.trailing_zeros() as usize];
            agg.sum += v.to_f64();
            agg.match_min = agg.match_min.min_total(v);
            agg.match_max = agg.match_max.max_total(v);
            m &= m - 1;
        }
    }
    for &v in chunks.remainder() {
        let q = v.in_range_total(&lo, &hi);
        agg.count += q as usize;
        agg.sum += if q { v.to_f64() } else { 0.0 };
        agg.range_min = agg.range_min.min_total(v);
        agg.range_max = agg.range_max.max_total(v);
        if q {
            agg.match_min = agg.match_min.min_total(v);
            agg.match_max = agg.match_max.max_total(v);
        }
    }
    agg
}

/// Like [`collect_in_range`] but also returns the slice's exact
/// `(min, max)` so the scan can feed zone metadata back.
///
/// # Panics
/// Panics if `base + data.len()` exceeds [`MAX_ADDRESSABLE_ROWS`].
#[inline]
pub fn collect_in_range_with_minmax<T: DataValue>(
    data: &[T],
    base: usize,
    lo: T,
    hi: T,
    out: &mut Vec<u32>,
) -> (usize, T, T) {
    assert_positions_addressable(base, data.len());
    let before = out.len();
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut chunks = data.chunks_exact(LANES);
    let mut block_base = base as u32;
    for block in chunks.by_ref() {
        let mut mask = lane_mask(block, lo, hi);
        while mask != 0 {
            out.push(block_base + mask.trailing_zeros());
            mask &= mask - 1;
        }
        for &v in block {
            min = min.min_total(v);
            max = max.max_total(v);
        }
        block_base += LANES as u32;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v.in_range_total(&lo, &hi) {
            out.push(block_base + i as u32);
        }
        min = min.min_total(v);
        max = max.max_total(v);
    }
    (out.len() - before, min, max)
}

/// Like [`fill_bitmap_in_range`] but also returns `(qualifying, min, max)`
/// over the slice, for multi-column scans that must both produce a
/// combinable bitmap and feed index observations.
///
/// # Panics
/// Panics if `base + data.len()` exceeds the bitmap length.
#[inline]
pub fn fill_bitmap_in_range_with_minmax<T: DataValue>(
    data: &[T],
    base: usize,
    lo: T,
    hi: T,
    bm: &mut Bitmap,
) -> (usize, T, T) {
    assert!(
        base + data.len() <= bm.len(),
        "bitmap too small for scan output"
    );
    let mut count = 0usize;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut chunks = data.chunks_exact(LANES);
    let mut bit = base;
    for block in chunks.by_ref() {
        let mask = lane_mask(block, lo, hi);
        bm.or_mask_at(bit, mask);
        count += mask.count_ones() as usize;
        for &v in block {
            min = min.min_total(v);
            max = max.max_total(v);
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v.in_range_total(&lo, &hi) {
            bm.set(bit + i);
            count += 1;
        }
        min = min.min_total(v);
        max = max.max_total(v);
    }
    (count, min, max)
}

/// As [`count_in_range_with_minmax`], additionally collecting a 64-bit
/// value mask: bit `b` is set when some row's value falls into equal-width
/// bin `b` of `[bin_lo, bin_hi]` (in `to_f64` space; values outside clamp
/// to the edge bins). Returns `(count, min, max, mask)`.
#[inline]
pub fn count_in_range_with_minmax_and_mask<T: DataValue>(
    data: &[T],
    lo: T,
    hi: T,
    bin_lo: f64,
    bin_hi: f64,
) -> (usize, T, T, u64) {
    let mut count = 0usize;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut mask = 0u64;
    let span = bin_hi - bin_lo;
    let scale = if span > 0.0 { 64.0 / span } else { 0.0 };
    for &v in data {
        count += v.in_range_total(&lo, &hi) as usize;
        min = min.min_total(v);
        max = max.max_total(v);
        let bin = ((v.to_f64() - bin_lo) * scale).clamp(0.0, 63.0) as u32;
        mask |= 1u64 << bin;
    }
    (count, min, max, mask)
}

/// Exact `(min, max)` of a slice under the total order, or `None` if empty.
#[inline]
pub fn min_max<T: DataValue>(data: &[T]) -> Option<(T, T)> {
    let (&first, rest) = data.split_first()?;
    let mut min = first;
    let mut max = first;
    for &v in rest {
        min = min.min_total(v);
        max = max.max_total(v);
    }
    Some((min, max))
}

/// Minimum and maximum of the qualifying values only; `None` if nothing
/// qualifies. Used by MIN/MAX aggregates.
#[inline]
pub fn min_max_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> Option<(T, T)> {
    let mut found = false;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut chunks = data.chunks_exact(LANES);
    for block in chunks.by_ref() {
        let mut m = lane_mask(block, lo, hi);
        found |= m != 0;
        while m != 0 {
            let v = block[m.trailing_zeros() as usize];
            min = min.min_total(v);
            max = max.max_total(v);
            m &= m - 1;
        }
    }
    for &v in chunks.remainder() {
        if v.in_range_total(&lo, &hi) {
            min = min.min_total(v);
            max = max.max_total(v);
            found = true;
        }
    }
    found.then_some((min, max))
}

// --------------------------------------------------------------- masked
// Delete-aware kernel variants. Each takes a [`DeleteVector`] plus the
// row offset of `data[0]` in the vector's coordinate space, and ANDs the
// per-block qualifying mask with [`DeleteVector::live_window`] — one load
// and one AND per 64-row block, preserving the block structure of the
// unmasked kernels. The contract mirrors the observation split: `count`,
// `sum`, `match_min`/`match_max`, and positions cover **live** qualifying
// rows only (the answer), while `range_min`/`range_max` still cover *all*
// rows including tombstones (the zone-metadata by-product), so zonemap
// bounds stay sound-but-conservative over deleted rows until compaction
// re-tightens them.

/// Guards a masked kernel: every row of `data` must be addressed by `live`.
#[inline]
fn assert_live_covers(base: usize, len: usize, live: &DeleteVector) {
    assert!(
        base + len <= live.len(),
        "rows {base}..{} exceed delete vector of {} rows",
        base + len,
        live.len()
    );
}

/// Masked [`count_in_range_with_minmax`]: counts **live** qualifying
/// values; `(min, max)` still covers all rows of the slice.
#[inline]
pub fn count_in_range_with_minmax_live<T: DataValue>(
    data: &[T],
    lo: T,
    hi: T,
    live: &DeleteVector,
    base: usize,
) -> (usize, T, T) {
    assert_live_covers(base, data.len(), live);
    let mut chunks = data.chunks_exact(LANES);
    let mut count = 0usize;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut bit = base;
    for block in chunks.by_ref() {
        let mask = lane_mask(block, lo, hi) & live.live_window(bit);
        count += mask.count_ones() as usize;
        for &v in block {
            min = min.min_total(v);
            max = max.max_total(v);
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        count += (v.in_range_total(&lo, &hi) && !live.is_deleted(bit + i)) as usize;
        min = min.min_total(v);
        max = max.max_total(v);
    }
    (count, min, max)
}

/// Masked [`aggregate_in_range`]: `count`/`sum`/`match_min`/`match_max`
/// cover live qualifying rows; `range_min`/`range_max` cover all rows.
/// Sum accumulation stays in ascending row order, so results are
/// bit-identical to a scalar recompute over the live rows.
#[inline]
pub fn aggregate_in_range_live<T: DataValue>(
    data: &[T],
    lo: T,
    hi: T,
    live: &DeleteVector,
    base: usize,
) -> RangeAggregates<T> {
    assert_live_covers(base, data.len(), live);
    let mut agg: RangeAggregates<T> = RangeAggregates::identity();
    let mut chunks = data.chunks_exact(LANES);
    let mut bit = base;
    for block in chunks.by_ref() {
        let mask = lane_mask(block, lo, hi) & live.live_window(bit);
        agg.count += mask.count_ones() as usize;
        for &v in block {
            agg.range_min = agg.range_min.min_total(v);
            agg.range_max = agg.range_max.max_total(v);
        }
        let mut m = mask;
        while m != 0 {
            let v = block[m.trailing_zeros() as usize];
            agg.sum += v.to_f64();
            agg.match_min = agg.match_min.min_total(v);
            agg.match_max = agg.match_max.max_total(v);
            m &= m - 1;
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        let q = v.in_range_total(&lo, &hi) && !live.is_deleted(bit + i);
        agg.count += q as usize;
        agg.sum += if q { v.to_f64() } else { 0.0 };
        agg.range_min = agg.range_min.min_total(v);
        agg.range_max = agg.range_max.max_total(v);
        if q {
            agg.match_min = agg.match_min.min_total(v);
            agg.match_max = agg.match_max.max_total(v);
        }
    }
    agg
}

/// Masked [`collect_in_range_with_minmax`]: positions of **live**
/// qualifying rows (`base + offset`); `(min, max)` covers all rows.
///
/// # Panics
/// Panics if `base + data.len()` exceeds [`MAX_ADDRESSABLE_ROWS`] or the
/// delete vector's length.
#[inline]
pub fn collect_in_range_with_minmax_live<T: DataValue>(
    data: &[T],
    base: usize,
    lo: T,
    hi: T,
    live: &DeleteVector,
    out: &mut Vec<u32>,
) -> (usize, T, T) {
    assert_positions_addressable(base, data.len());
    assert_live_covers(base, data.len(), live);
    let before = out.len();
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut chunks = data.chunks_exact(LANES);
    let mut bit = base;
    for block in chunks.by_ref() {
        let mut mask = lane_mask(block, lo, hi) & live.live_window(bit);
        while mask != 0 {
            // narrowing: bit + 63 < MAX_ADDRESSABLE_ROWS by the guard above.
            out.push(bit as u32 + mask.trailing_zeros());
            mask &= mask - 1;
        }
        for &v in block {
            min = min.min_total(v);
            max = max.max_total(v);
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v.in_range_total(&lo, &hi) && !live.is_deleted(bit + i) {
            // narrowing: bit + i < MAX_ADDRESSABLE_ROWS by the guard above.
            out.push((bit + i) as u32);
        }
        min = min.min_total(v);
        max = max.max_total(v);
    }
    (out.len() - before, min, max)
}

/// Masked [`sum_all`] for ranges already proven to fully match: sums the
/// **live** rows and returns `(live count, sum)`, one `live_window` per
/// 64-row block.
#[inline]
pub fn sum_all_live<T: DataValue>(data: &[T], live: &DeleteVector, base: usize) -> (usize, f64) {
    assert_live_covers(base, data.len(), live);
    let mut chunks = data.chunks_exact(LANES);
    let mut count = 0usize;
    let mut sum = 0.0f64;
    let mut bit = base;
    for block in chunks.by_ref() {
        let mask = live.live_window(bit);
        count += mask.count_ones() as usize;
        if mask == u64::MAX {
            for &v in block {
                sum += v.to_f64();
            }
        } else {
            let mut m = mask;
            while m != 0 {
                sum += block[m.trailing_zeros() as usize].to_f64();
                m &= m - 1;
            }
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if !live.is_deleted(bit + i) {
            count += 1;
            sum += v.to_f64();
        }
    }
    (count, sum)
}

/// Masked [`min_max`]: `(min, max)` of the **live** rows only, or `None`
/// when every row of the slice is tombstoned. For full-match ranges under
/// MIN/MAX aggregates, where the unmasked path reads the whole slice.
#[inline]
pub fn min_max_live<T: DataValue>(data: &[T], live: &DeleteVector, base: usize) -> Option<(T, T)> {
    assert_live_covers(base, data.len(), live);
    let mut found = false;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut chunks = data.chunks_exact(LANES);
    let mut bit = base;
    for block in chunks.by_ref() {
        let mut m = live.live_window(bit);
        found |= m != 0;
        while m != 0 {
            let v = block[m.trailing_zeros() as usize];
            min = min.min_total(v);
            max = max.max_total(v);
            m &= m - 1;
        }
        bit += LANES;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if !live.is_deleted(bit + i) {
            min = min.min_total(v);
            max = max.max_total(v);
            found = true;
        }
    }
    found.then_some((min, max))
}

/// Masked [`count_in_range_with_minmax_and_mask`]: the value-mask scan
/// with tombstoned rows excluded from the count. Dead rows still feed
/// `(min, max)` and the bin mask — both are conservative-only metadata,
/// and a dead row's bin bit can at worst under-skip, never corrupt.
#[inline]
pub fn count_in_range_with_minmax_and_mask_live<T: DataValue>(
    data: &[T],
    lo: T,
    hi: T,
    bin_lo: f64,
    bin_hi: f64,
    live: &DeleteVector,
    base: usize,
) -> (usize, T, T, u64) {
    assert_live_covers(base, data.len(), live);
    let mut count = 0usize;
    let mut min = T::MAX_VALUE;
    let mut max = T::MIN_VALUE;
    let mut mask = 0u64;
    let span = bin_hi - bin_lo;
    let scale = if span > 0.0 { 64.0 / span } else { 0.0 };
    for (i, &v) in data.iter().enumerate() {
        count += (v.in_range_total(&lo, &hi) && !live.is_deleted(base + i)) as usize;
        min = min.min_total(v);
        max = max.max_total(v);
        // narrowing: clamp(0, 63) bounds the bin index below 64.
        let bin = ((v.to_f64() - bin_lo) * scale).clamp(0.0, 63.0) as u32;
        mask |= 1u64 << bin;
    }
    (count, min, max, mask)
}

/// Appends the row positions in `start..end` that are live to `out` — the
/// full-match POSITIONS path under deletes, where the unmasked kernel
/// extends the whole range wholesale.
///
/// # Panics
/// Panics if `end` exceeds [`MAX_ADDRESSABLE_ROWS`] or the vector length.
#[inline]
pub fn collect_live_positions(live: &DeleteVector, start: usize, end: usize, out: &mut Vec<u32>) {
    assert_positions_addressable(start, end - start);
    assert_live_covers(start, end - start, live);
    let mut bit = start;
    while bit < end {
        let span = (end - bit).min(LANES);
        let mut mask = live.live_window(bit);
        if span < LANES {
            mask &= u64::MAX >> (64 - span);
        }
        while mask != 0 {
            // narrowing: bit + 63 < MAX_ADDRESSABLE_ROWS by the guard above.
            out.push(bit as u32 + mask.trailing_zeros());
            mask &= mask - 1;
        }
        bit += span;
    }
}

/// The pre-block scalar kernels, retained verbatim.
///
/// Two consumers keep these alive: the property tests assert every block
/// kernel is result-identical (bit-identical for `f64` sums) to its scalar
/// twin over randomised and adversarial inputs, and the kernel benchmark
/// (`kernels_json`) reports the block kernels' speedup over this baseline
/// as the repo's machine-readable perf trajectory. They evaluate the
/// predicate per element with short-circuit compares and hope for
/// autovectorisation — exactly the loops the block kernels replaced.
pub mod scalar {
    use super::{Bitmap, DataValue, RangeAggregates};

    /// Scalar reference for [`super::count_in_range`].
    #[inline]
    pub fn count_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> usize {
        let mut count = 0usize;
        for &v in data {
            count += (v.ge_total(&lo) && v.le_total(&hi)) as usize;
        }
        count
    }

    /// Scalar reference for [`super::count_in_range_with_minmax`].
    #[inline]
    pub fn count_in_range_with_minmax<T: DataValue>(data: &[T], lo: T, hi: T) -> (usize, T, T) {
        let mut count = 0usize;
        let mut min = T::MAX_VALUE;
        let mut max = T::MIN_VALUE;
        for &v in data {
            count += (v.ge_total(&lo) && v.le_total(&hi)) as usize;
            min = min.min_total(v);
            max = max.max_total(v);
        }
        (count, min, max)
    }

    /// Scalar reference for [`super::collect_in_range`].
    #[inline]
    pub fn collect_in_range<T: DataValue>(
        data: &[T],
        base: usize,
        lo: T,
        hi: T,
        out: &mut Vec<u32>,
    ) {
        super::assert_positions_addressable(base, data.len());
        for (i, &v) in data.iter().enumerate() {
            if v.ge_total(&lo) && v.le_total(&hi) {
                out.push((base + i) as u32);
            }
        }
    }

    /// Scalar reference for [`super::fill_bitmap_in_range`].
    ///
    /// # Panics
    /// Panics if `base + data.len()` exceeds the bitmap length.
    #[inline]
    pub fn fill_bitmap_in_range<T: DataValue>(
        data: &[T],
        base: usize,
        lo: T,
        hi: T,
        bm: &mut Bitmap,
    ) {
        assert!(
            base + data.len() <= bm.len(),
            "bitmap too small for scan output"
        );
        for (i, &v) in data.iter().enumerate() {
            if v.ge_total(&lo) && v.le_total(&hi) {
                bm.set(base + i);
            }
        }
    }

    /// Scalar reference for [`super::sum_in_range`].
    #[inline]
    pub fn sum_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> (usize, f64) {
        let mut count = 0usize;
        let mut sum = 0.0f64;
        for &v in data {
            let q = v.ge_total(&lo) && v.le_total(&hi);
            count += q as usize;
            sum += if q { v.to_f64() } else { 0.0 };
        }
        (count, sum)
    }

    /// Scalar reference for [`super::aggregate_in_range`].
    #[inline]
    pub fn aggregate_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> RangeAggregates<T> {
        let mut agg = RangeAggregates {
            count: 0,
            sum: 0.0,
            range_min: T::MAX_VALUE,
            range_max: T::MIN_VALUE,
            match_min: T::MAX_VALUE,
            match_max: T::MIN_VALUE,
        };
        for &v in data {
            let q = v.ge_total(&lo) && v.le_total(&hi);
            agg.count += q as usize;
            agg.sum += if q { v.to_f64() } else { 0.0 };
            agg.range_min = agg.range_min.min_total(v);
            agg.range_max = agg.range_max.max_total(v);
            if q {
                agg.match_min = agg.match_min.min_total(v);
                agg.match_max = agg.match_max.max_total(v);
            }
        }
        agg
    }

    /// Scalar reference for [`super::collect_in_range_with_minmax`].
    #[inline]
    pub fn collect_in_range_with_minmax<T: DataValue>(
        data: &[T],
        base: usize,
        lo: T,
        hi: T,
        out: &mut Vec<u32>,
    ) -> (usize, T, T) {
        super::assert_positions_addressable(base, data.len());
        let before = out.len();
        let mut min = T::MAX_VALUE;
        let mut max = T::MIN_VALUE;
        for (i, &v) in data.iter().enumerate() {
            if v.ge_total(&lo) && v.le_total(&hi) {
                out.push((base + i) as u32);
            }
            min = min.min_total(v);
            max = max.max_total(v);
        }
        (out.len() - before, min, max)
    }

    /// Scalar reference for [`super::fill_bitmap_in_range_with_minmax`].
    ///
    /// # Panics
    /// Panics if `base + data.len()` exceeds the bitmap length.
    #[inline]
    pub fn fill_bitmap_in_range_with_minmax<T: DataValue>(
        data: &[T],
        base: usize,
        lo: T,
        hi: T,
        bm: &mut Bitmap,
    ) -> (usize, T, T) {
        assert!(
            base + data.len() <= bm.len(),
            "bitmap too small for scan output"
        );
        let mut count = 0usize;
        let mut min = T::MAX_VALUE;
        let mut max = T::MIN_VALUE;
        for (i, &v) in data.iter().enumerate() {
            if v.ge_total(&lo) && v.le_total(&hi) {
                bm.set(base + i);
                count += 1;
            }
            min = min.min_total(v);
            max = max.max_total(v);
        }
        (count, min, max)
    }

    /// Scalar reference for [`super::min_max_in_range`].
    #[inline]
    pub fn min_max_in_range<T: DataValue>(data: &[T], lo: T, hi: T) -> Option<(T, T)> {
        let mut found = false;
        let mut min = T::MAX_VALUE;
        let mut max = T::MIN_VALUE;
        for &v in data {
            if v.ge_total(&lo) && v.le_total(&hi) {
                min = min.min_total(v);
                max = max.max_total(v);
                found = true;
            }
        }
        found.then_some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_basic() {
        let data = [1i64, 5, 3, 9, 5];
        assert_eq!(count_in_range(&data, 3, 5), 3);
        assert_eq!(count_in_range(&data, 10, 20), 0);
        assert_eq!(count_in_range(&data, i64::MIN, i64::MAX), 5);
    }

    #[test]
    fn count_empty_slice() {
        assert_eq!(count_in_range::<i64>(&[], 0, 10), 0);
    }

    #[test]
    fn count_with_minmax() {
        let data = [4i64, -2, 8, 0];
        let (c, min, max) = count_in_range_with_minmax(&data, 0, 5);
        assert_eq!(c, 2);
        assert_eq!((min, max), (-2, 8));
    }

    #[test]
    fn count_with_minmax_empty() {
        let (c, min, max) = count_in_range_with_minmax::<i64>(&[], 0, 5);
        assert_eq!(c, 0);
        assert_eq!(min, i64::MAX);
        assert_eq!(max, i64::MIN);
    }

    #[test]
    fn collect_positions_with_base() {
        let data = [10i64, 20, 30, 40];
        let mut out = Vec::new();
        collect_in_range(&data, 100, 20, 30, &mut out);
        assert_eq!(out, vec![101, 102]);
    }

    #[test]
    fn fill_bitmap_sets_expected_bits() {
        let data = [1i64, 7, 3, 7];
        let mut bm = Bitmap::new(10);
        fill_bitmap_in_range(&data, 4, 7, 7, &mut bm);
        assert_eq!(bm.to_positions(), vec![5, 7]);
    }

    #[test]
    #[should_panic(expected = "bitmap too small")]
    fn fill_bitmap_bounds_checked() {
        let data = [1i64, 2];
        let mut bm = Bitmap::new(1);
        fill_bitmap_in_range(&data, 0, 0, 10, &mut bm);
    }

    #[test]
    fn sum_kernel() {
        let data = [1.0f64, 2.5, 4.0, 8.0];
        let (c, s) = sum_in_range(&data, 2.0, 8.0);
        assert_eq!(c, 3);
        assert!((s - 14.5).abs() < 1e-12);
    }

    #[test]
    fn sum_kernel_int() {
        let data = [1i32, 2, 3];
        let (c, s) = sum_in_range(&data, 2, 3);
        assert_eq!(c, 2);
        assert_eq!(s, 5.0);
    }

    #[test]
    fn sum_all_matches_predicate_free_sum() {
        let data = [1i64, -2, 30, 4];
        assert_eq!(sum_all(&data), 33.0);
        let (_, s) = sum_in_range(&data, i64::MIN, i64::MAX);
        assert_eq!(sum_all(&data), s);
        assert_eq!(sum_all::<i64>(&[]), 0.0);
    }

    #[test]
    fn min_max_slice() {
        assert_eq!(min_max(&[3i64, 1, 2]), Some((1, 3)));
        assert_eq!(min_max::<i64>(&[]), None);
        assert_eq!(min_max(&[7i64]), Some((7, 7)));
    }

    #[test]
    fn min_max_of_qualifying_only() {
        let data = [1i64, 50, 10, 99];
        assert_eq!(min_max_in_range(&data, 5, 60), Some((10, 50)));
        assert_eq!(min_max_in_range(&data, 200, 300), None);
    }

    #[test]
    fn aggregate_in_range_all_fields() {
        let data = [5i64, -3, 10, 7];
        let a = aggregate_in_range(&data, 0, 8);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 12.0);
        assert_eq!((a.range_min, a.range_max), (-3, 10));
        assert_eq!((a.match_min, a.match_max), (5, 7));
    }

    #[test]
    fn aggregate_in_range_no_matches() {
        let data = [1i64, 2];
        let a = aggregate_in_range(&data, 100, 200);
        assert_eq!(a.count, 0);
        assert_eq!(a.sum, 0.0);
        assert_eq!((a.range_min, a.range_max), (1, 2));
        assert_eq!(a.match_min, i64::MAX);
        assert_eq!(a.match_max, i64::MIN);
    }

    #[test]
    fn collect_with_minmax() {
        let data = [4i64, 9, 1];
        let mut out = vec![7u32]; // pre-existing content preserved
        let (n, min, max) = collect_in_range_with_minmax(&data, 10, 2, 5, &mut out);
        assert_eq!(n, 1);
        assert_eq!(out, vec![7, 10]);
        assert_eq!((min, max), (1, 9));
    }

    #[test]
    fn mask_kernel_sets_expected_bins() {
        let data = [0i64, 50, 99];
        let (c, min, max, mask) = count_in_range_with_minmax_and_mask(&data, 0, 99, 0.0, 100.0);
        assert_eq!(c, 3);
        assert_eq!((min, max), (0, 99));
        assert_eq!(mask.count_ones(), 3);
        assert!(mask & 1 != 0, "value 0 in bin 0");
        assert!(mask & (1 << 32) != 0, "value 50 in bin 32");
        assert!(mask & (1 << 63) != 0, "value 99 in bin 63");
    }

    #[test]
    fn mask_kernel_clamps_out_of_layout_values() {
        let data = [-100i64, 500];
        let (_, _, _, mask) = count_in_range_with_minmax_and_mask(&data, 0, 0, 0.0, 100.0);
        assert!(mask & 1 != 0, "below-layout clamps to bin 0");
        assert!(mask & (1 << 63) != 0, "above-layout clamps to bin 63");
    }

    #[test]
    fn mask_kernel_degenerate_layout() {
        let data = [7i64, 7];
        let (_, _, _, mask) = count_in_range_with_minmax_and_mask(&data, 0, 10, 7.0, 7.0);
        assert_eq!(mask, 1, "zero span puts everything in bin 0");
    }

    #[test]
    fn inclusive_bounds_on_both_ends() {
        let data = [5i64, 10];
        assert_eq!(count_in_range(&data, 5, 10), 2);
        assert_eq!(count_in_range(&data, 6, 9), 0);
    }

    #[test]
    fn lane_mask_places_each_lane_at_its_bit() {
        for i in 0..LANES {
            let mut block = vec![0i64; LANES];
            block[i] = 5;
            assert_eq!(lane_mask(&block, 5, 5), 1u64 << i, "lane {i}");
        }
        let all = vec![7i64; LANES];
        assert_eq!(lane_mask(&all, 0, 10), u64::MAX);
        assert_eq!(lane_mask(&all, 8, 10), 0);
    }

    #[test]
    fn block_kernels_handle_lane_boundaries() {
        // Lengths straddling the 64-lane block structure: full blocks,
        // ±1 around each boundary, and tails of every flavour.
        for n in [0usize, 1, 63, 64, 65, 127, 128, 129, 200] {
            let data: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 50).collect();
            let (lo, hi) = (10, 30);
            assert_eq!(
                count_in_range(&data, lo, hi),
                scalar::count_in_range(&data, lo, hi),
                "n={n}"
            );
            let mut block_pos = Vec::new();
            let mut scalar_pos = Vec::new();
            collect_in_range(&data, 5, lo, hi, &mut block_pos);
            scalar::collect_in_range(&data, 5, lo, hi, &mut scalar_pos);
            assert_eq!(block_pos, scalar_pos, "n={n}");
            let mut block_bm = Bitmap::new(n + 7);
            let mut scalar_bm = Bitmap::new(n + 7);
            fill_bitmap_in_range(&data, 7, lo, hi, &mut block_bm);
            scalar::fill_bitmap_in_range(&data, 7, lo, hi, &mut scalar_bm);
            assert_eq!(block_bm, scalar_bm, "n={n}");
        }
    }

    /// A delete vector over 300 rows with every 7th row tombstoned, plus
    /// the live-row predicate reference the masked kernels must match.
    fn masked_fixture() -> (Vec<i64>, DeleteVector) {
        let data: Vec<i64> = (0..300).map(|i| (i * 13) % 97).collect();
        let mut live = DeleteVector::new(300, 1);
        for i in (0..300).step_by(7) {
            live.delete(i);
        }
        (data, live)
    }

    #[test]
    fn masked_count_matches_per_row_reference() {
        let (data, live) = masked_fixture();
        for (start, end) in [(0usize, 300usize), (5, 70), (63, 129), (250, 300)] {
            let (c, min, max) =
                count_in_range_with_minmax_live(&data[start..end], 10, 60, &live, start);
            let want = (start..end)
                .filter(|&i| !live.is_deleted(i) && (10..=60).contains(&data[i]))
                .count();
            assert_eq!(c, want, "{start}..{end}");
            // min/max still cover ALL rows, tombstoned included.
            let (_, rmin, rmax) = count_in_range_with_minmax(&data[start..end], 10, 60);
            assert_eq!((min, max), (rmin, rmax), "{start}..{end}");
        }
    }

    #[test]
    fn masked_aggregate_matches_live_scalar_recompute() {
        let (data, live) = masked_fixture();
        for (start, end) in [(0usize, 300usize), (1, 64), (64, 200), (199, 300)] {
            let a = aggregate_in_range_live(&data[start..end], 10, 60, &live, start);
            let live_vals: Vec<i64> = (start..end)
                .filter(|&i| !live.is_deleted(i))
                .map(|i| data[i])
                .collect();
            let want = scalar::aggregate_in_range(&live_vals, 10, 60);
            assert_eq!(a.count, want.count, "{start}..{end}");
            assert_eq!(a.sum.to_bits(), want.sum.to_bits(), "{start}..{end}");
            assert_eq!((a.match_min, a.match_max), (want.match_min, want.match_max));
            // range extremes still from all rows.
            let (all_min, all_max) = min_max(&data[start..end]).unwrap();
            assert_eq!((a.range_min, a.range_max), (all_min, all_max));
        }
    }

    #[test]
    fn masked_collect_skips_tombstones() {
        let (data, live) = masked_fixture();
        let mut out = Vec::new();
        let (n, _, _) =
            collect_in_range_with_minmax_live(&data[60..130], 60, 0, 96, &live, &mut out);
        let want: Vec<u32> = (60..130)
            .filter(|&i| !live.is_deleted(i) && (0..=96).contains(&data[i]))
            .map(|i| i as u32)
            .collect();
        assert_eq!(out, want);
        assert_eq!(n, want.len());
    }

    #[test]
    fn masked_sum_all_and_min_max() {
        let (data, live) = masked_fixture();
        let (count, sum) = sum_all_live(&data[0..130], &live, 0);
        let live_vals: Vec<i64> = (0..130)
            .filter(|&i| !live.is_deleted(i))
            .map(|i| data[i])
            .collect();
        assert_eq!(count, live_vals.len());
        assert_eq!(sum.to_bits(), sum_all(&live_vals).to_bits());
        let (min, max) = min_max_live(&data[0..130], &live, 0).unwrap();
        assert_eq!(Some((min, max)), min_max(&live_vals));
    }

    #[test]
    fn masked_min_max_none_when_all_dead() {
        let data = [5i64, 6, 7];
        let mut live = DeleteVector::new(3, 0);
        for i in 0..3 {
            live.delete(i);
        }
        assert_eq!(min_max_live(&data, &live, 0), None);
        assert_eq!(sum_all_live(&data, &live, 0), (0, 0.0));
    }

    #[test]
    fn masked_value_mask_kernel_counts_live_only() {
        let (data, live) = masked_fixture();
        let (c, min, max, mask) =
            count_in_range_with_minmax_and_mask_live(&data[0..100], 10, 60, 0.0, 97.0, &live, 0);
        let want = (0..100)
            .filter(|&i| !live.is_deleted(i) && (10..=60).contains(&data[i]))
            .count();
        assert_eq!(c, want);
        let (_, rmin, rmax, rmask) =
            count_in_range_with_minmax_and_mask(&data[0..100], 10, 60, 0.0, 97.0);
        assert_eq!((min, max, mask), (rmin, rmax, rmask), "metadata unchanged");
    }

    #[test]
    fn collect_live_positions_matches_filter() {
        let (_, live) = masked_fixture();
        let mut out = Vec::new();
        collect_live_positions(&live, 50, 200, &mut out);
        let want: Vec<u32> = (50..200)
            .filter(|&i| !live.is_deleted(i))
            .map(|i| i as u32)
            .collect();
        assert_eq!(out, want);
        let mut empty = Vec::new();
        collect_live_positions(&live, 70, 70, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn masked_kernels_with_all_live_vector_match_unmasked() {
        let data: Vec<i64> = (0..200).map(|i| (i * 31) % 83).collect();
        let live = DeleteVector::new(200, 0);
        let (c, min, max) = count_in_range_with_minmax_live(&data, 20, 70, &live, 0);
        assert_eq!((c, min, max), count_in_range_with_minmax(&data, 20, 70));
        let a = aggregate_in_range_live(&data, 20, 70, &live, 0);
        let b = aggregate_in_range(&data, 20, 70);
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        let (n, s) = sum_all_live(&data, &live, 0);
        assert_eq!(n, 200);
        assert_eq!(s.to_bits(), sum_all(&data).to_bits());
    }

    #[test]
    #[should_panic(expected = "exceed delete vector")]
    fn masked_kernel_rejects_short_delete_vector() {
        let data = [1i64, 2, 3];
        let live = DeleteVector::new(2, 0);
        count_in_range_with_minmax_live(&data, 0, 10, &live, 0);
    }

    #[test]
    #[should_panic(expected = "u32 position ceiling")]
    fn collect_rejects_positions_past_u32() {
        // Documents the row-count ceiling: positions are u32, so a scan
        // whose base offset pushes rows past 2^32 must fail loudly
        // instead of silently truncating.
        let data = [1i64];
        let mut out = Vec::new();
        collect_in_range(&data, MAX_ADDRESSABLE_ROWS, 0, 10, &mut out);
    }

    #[test]
    fn collect_accepts_positions_up_to_the_ceiling() {
        let data = [1i64];
        let mut out = Vec::new();
        collect_in_range(&data, MAX_ADDRESSABLE_ROWS - 1, 0, 10, &mut out);
        assert_eq!(out, vec![u32::MAX]);
    }
}

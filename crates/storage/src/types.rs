//! Value types storable in columns.
//!
//! The scan kernels and zonemap metadata are generic over [`DataValue`],
//! which provides a *total* order (needed so `f64` columns can carry
//! `(min, max)` zone metadata without `PartialOrd` edge cases) plus the
//! extreme values used to seed min/max folds.

use std::cmp::Ordering;
use std::fmt;

/// A primitive value that can be stored in a column and summarised by
/// zone metadata.
///
/// Implementations must provide a total order. For floats this is IEEE-754
/// `totalOrder` (via [`f64::total_cmp`]); NaNs sort after all numbers, so a
/// zone containing a NaN gets `max = NaN` and is never incorrectly skipped
/// by finite-range predicates that use `le_total`/`ge_total`.
pub trait DataValue: Copy + Send + Sync + fmt::Debug + fmt::Display + PartialEq + 'static {
    /// Smallest value of the type under [`DataValue::total_cmp`].
    const MIN_VALUE: Self;
    /// Largest value of the type under [`DataValue::total_cmp`].
    const MAX_VALUE: Self;
    /// Short type name used in error messages and reports.
    const TYPE_NAME: &'static str;

    /// Total-order comparison.
    fn total_cmp(&self, other: &Self) -> Ordering;

    /// Lossy conversion to `f64`, used by SUM/AVG aggregation. Exact for
    /// integers up to 2^53, which covers the workloads in this repository.
    fn to_f64(self) -> f64;

    /// Hash key for value sketches (bloom filters): values equal under
    /// [`DataValue::total_cmp`] must map to the same key, so a sketch
    /// probe keyed on a predicate bound can never miss an equal stored
    /// value. Distinct values may collide — collisions only over-admit.
    fn sketch_key(self) -> u64;

    /// `self == other` under the total order (for floats: bit equality
    /// modulo nothing — `totalOrder` distinguishes `-0.0` from `0.0` and
    /// NaN payloads from each other).
    #[inline]
    fn eq_total(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// `self <= other` under the total order.
    #[inline]
    fn le_total(&self, other: &Self) -> bool {
        self.total_cmp(other) != Ordering::Greater
    }

    /// `self >= other` under the total order.
    #[inline]
    fn ge_total(&self, other: &Self) -> bool {
        self.total_cmp(other) != Ordering::Less
    }

    /// `self < other` under the total order.
    #[inline]
    fn lt_total(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Less
    }

    /// `lo <= self <= hi` under the total order, as one branchless
    /// expression. The hot scan kernels call this once per lane; the
    /// default is correct for every type, and implementations override it
    /// with whatever compare sequence their hardware vectorises best
    /// (plain compares for integers, the sign-magnitude key trick for
    /// floats).
    #[inline]
    fn in_range_total(&self, lo: &Self, hi: &Self) -> bool {
        self.ge_total(lo) & self.le_total(hi)
    }

    /// The smaller of two values under the total order.
    #[inline]
    fn min_total(self, other: Self) -> Self {
        if self.total_cmp(&other) == Ordering::Greater {
            other
        } else {
            self
        }
    }

    /// The larger of two values under the total order.
    #[inline]
    fn max_total(self, other: Self) -> Self {
        if self.total_cmp(&other) == Ordering::Less {
            other
        } else {
            self
        }
    }
}

macro_rules! impl_data_value_int {
    ($($t:ty),*) => {$(
        impl DataValue for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            const TYPE_NAME: &'static str = stringify!($t);

            #[inline]
            fn total_cmp(&self, other: &Self) -> Ordering {
                Ord::cmp(self, other)
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn sketch_key(self) -> u64 {
                // Sign-extending (or zero-extending) cast: equal integers
                // always produce equal keys, exactly as required.
                self as u64
            }

            #[inline]
            fn eq_total(&self, other: &Self) -> bool {
                *self == *other
            }

            #[inline]
            fn in_range_total(&self, lo: &Self, hi: &Self) -> bool {
                (*lo <= *self) & (*self <= *hi)
            }
        }
    )*};
}

impl_data_value_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl DataValue for f64 {
    // f64::MIN/MAX are the finite extremes; under totalOrder the true
    // extremes are the infinities (and beyond them, NaNs). Using
    // -inf/+inf keeps `MIN_VALUE <= x <= MAX_VALUE` true for all
    // non-NaN data, which is what min/max folds need as identities.
    const MIN_VALUE: Self = f64::NEG_INFINITY;
    const MAX_VALUE: Self = f64::INFINITY;
    const TYPE_NAME: &'static str = "f64";

    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn sketch_key(self) -> u64 {
        // Bit pattern: totalOrder-equal floats are bit-identical, so
        // equal values share a key; `-0.0` and `0.0` differ under
        // totalOrder and correctly get distinct keys.
        self.to_bits()
    }

    #[inline]
    fn eq_total(&self, other: &Self) -> bool {
        self.to_bits() == other.to_bits()
    }

    #[inline]
    fn in_range_total(&self, lo: &Self, hi: &Self) -> bool {
        let v = f64_total_key(*self);
        (f64_total_key(*lo) <= v) & (v <= f64_total_key(*hi))
    }
}

/// Monotone map from `f64` to `i64` under IEEE-754 totalOrder — the same
/// sign-magnitude transform `f64::total_cmp` applies before comparing, so
/// `f64_total_key(a) <= f64_total_key(b)` iff `a.total_cmp(&b) != Greater`.
/// Integer compares vectorise where the two-step `total_cmp` may not.
#[inline]
fn f64_total_key(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

/// As [`f64_total_key`] for `f32`.
#[inline]
fn f32_total_key(x: f32) -> i32 {
    let bits = x.to_bits() as i32;
    bits ^ (((bits >> 31) as u32) >> 1) as i32
}

impl DataValue for f32 {
    const MIN_VALUE: Self = f32::NEG_INFINITY;
    const MAX_VALUE: Self = f32::INFINITY;
    const TYPE_NAME: &'static str = "f32";

    #[inline]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn sketch_key(self) -> u64 {
        self.to_bits() as u64
    }

    #[inline]
    fn eq_total(&self, other: &Self) -> bool {
        self.to_bits() == other.to_bits()
    }

    #[inline]
    fn in_range_total(&self, lo: &Self, hi: &Self) -> bool {
        let v = f32_total_key(*self);
        (f32_total_key(*lo) <= v) & (v <= f32_total_key(*hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_total_order_matches_ord() {
        assert_eq!(3i64.total_cmp(&5), Ordering::Less);
        assert_eq!(5i64.total_cmp(&5), Ordering::Equal);
        assert_eq!(7i64.total_cmp(&5), Ordering::Greater);
    }

    #[test]
    fn min_max_total_ints() {
        assert_eq!(3i64.min_total(5), 3);
        assert_eq!(3i64.max_total(5), 5);
        assert_eq!((-1i32).max_total(1), 1);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = f64::NAN;
        // NaN sorts after +inf under totalOrder.
        assert_eq!(nan.total_cmp(&f64::INFINITY), Ordering::Greater);
        assert_eq!(1.0f64.min_total(nan), 1.0);
        assert!(1.0f64.max_total(nan).is_nan());
    }

    #[test]
    fn float_extremes_bracket_all_finite() {
        for v in [-1e300, 0.0, 1e300] {
            assert!(f64::MIN_VALUE.le_total(&v));
            assert!(f64::MAX_VALUE.ge_total(&v));
        }
    }

    #[test]
    fn comparison_helpers() {
        assert!(2i64.le_total(&2));
        assert!(2i64.ge_total(&2));
        assert!(1i64.lt_total(&2));
        assert!(!2i64.lt_total(&2));
    }

    #[test]
    fn negative_zero_orders_before_positive_zero() {
        assert_eq!((-0.0f64).total_cmp(&0.0), Ordering::Less);
    }

    #[test]
    fn in_range_total_matches_ge_le_for_float_edge_cases() {
        let specials = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -0.0,
            0.0,
            1.0,
            1e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
        ];
        for &v in &specials {
            for &lo in &specials {
                for &hi in &specials {
                    assert_eq!(
                        v.in_range_total(&lo, &hi),
                        v.ge_total(&lo) && v.le_total(&hi),
                        "v={v:?} lo={lo:?} hi={hi:?}"
                    );
                    let (v32, lo32, hi32) = (v as f32, lo as f32, hi as f32);
                    assert_eq!(
                        v32.in_range_total(&lo32, &hi32),
                        v32.ge_total(&lo32) && v32.le_total(&hi32),
                        "v={v32:?} lo={lo32:?} hi={hi32:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn in_range_total_matches_ge_le_for_ints() {
        for v in [-3i64, 0, 1, i64::MIN, i64::MAX] {
            for lo in [-3i64, 0, i64::MIN] {
                for hi in [0i64, 7, i64::MAX] {
                    assert_eq!(
                        v.in_range_total(&lo, &hi),
                        v.ge_total(&lo) && v.le_total(&hi)
                    );
                }
            }
        }
    }

    #[test]
    fn eq_total_is_total_order_equality() {
        assert!(5i64.eq_total(&5));
        assert!(!5i64.eq_total(&6));
        assert!(f64::NAN.eq_total(&f64::NAN));
        assert!(!(-0.0f64).eq_total(&0.0), "totalOrder splits the zeros");
        assert!(
            !f64::NAN.eq_total(&-f64::NAN),
            "totalOrder splits NaN signs"
        );
        assert!(2.5f32.eq_total(&2.5));
    }

    #[test]
    fn sketch_key_agrees_with_eq_total() {
        // The soundness contract: eq_total values share a key.
        let floats = [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY];
        for &a in &floats {
            for &b in &floats {
                if a.eq_total(&b) {
                    assert_eq!(a.sketch_key(), b.sketch_key());
                }
            }
        }
        assert_eq!((-3i8).sketch_key(), (-3i64).sketch_key());
        assert_ne!((-0.0f64).sketch_key(), 0.0f64.sketch_key());
    }

    #[test]
    fn type_names() {
        assert_eq!(<i64 as DataValue>::TYPE_NAME, "i64");
        assert_eq!(<u32 as DataValue>::TYPE_NAME, "u32");
        assert_eq!(<f64 as DataValue>::TYPE_NAME, "f64");
    }
}

//! # ads-workloads — synthetic data and query workload generators
//!
//! The demo paper's datasets are not available; these generators substitute
//! controlled synthetics that parameterise exactly the axes the abstract
//! names: sortedness (sorted / semi-sorted), value clustering, and
//! arbitrary (uniform/zipf) distributions, plus query workloads ranging
//! from uniform-random to hotspot, shifting-hotspot, sweep, and drill-down.
//!
//! Everything is deterministic given a seed, so experiments replay the
//! exact same workload against every strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod queries;
pub mod spec;

pub use queries::RangeQuery;
pub use spec::{DataSpec, QuerySpec};

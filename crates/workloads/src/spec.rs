//! Declarative workload specs, so experiments can enumerate and label
//! their workloads uniformly.

use crate::queries::RangeQuery;
use crate::{data, queries};

/// A named data distribution with fixed shape parameters.
///
/// ```
/// use ads_workloads::DataSpec;
/// let col = DataSpec::AlmostSorted { noise: 0.05 }.generate(10_000, 1_000_000, 42);
/// assert_eq!(col.len(), 10_000);
/// // Deterministic: the same seed replays the same column.
/// assert_eq!(col, DataSpec::AlmostSorted { noise: 0.05 }.generate(10_000, 1_000_000, 42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataSpec {
    /// Fully sorted.
    Sorted,
    /// Fully reverse-sorted.
    ReverseSorted,
    /// Sorted with a percentage of locally displaced rows.
    AlmostSorted {
        /// Fraction of displaced rows, in `[0, 1]`.
        noise: f64,
    },
    /// Positionally contiguous value clusters.
    Clustered {
        /// Number of clusters.
        clusters: usize,
    },
    /// Independent uniform draws (the adversarial case).
    Uniform,
    /// Zipf-skewed value frequencies, positions randomised.
    Zipf {
        /// Skew parameter in `(0, 2)`.
        theta: f64,
    },
    /// Repeating ascending runs.
    Sawtooth {
        /// Number of runs.
        periods: usize,
    },
    /// Sorted / uniform / clustered thirds.
    MixedRegions,
}

impl DataSpec {
    /// Generates the column.
    pub fn generate(&self, n: usize, domain: i64, seed: u64) -> Vec<i64> {
        match *self {
            DataSpec::Sorted => data::sorted(n, domain),
            DataSpec::ReverseSorted => data::reverse_sorted(n, domain),
            DataSpec::AlmostSorted { noise } => data::almost_sorted(n, domain, noise, 256, seed),
            DataSpec::Clustered { clusters } => data::clustered(n, clusters, 0.02, domain, seed),
            DataSpec::Uniform => data::uniform(n, domain, seed),
            DataSpec::Zipf { theta } => data::zipf(n, domain, theta, seed),
            DataSpec::Sawtooth { periods } => data::sawtooth(n, periods, domain),
            DataSpec::MixedRegions => data::mixed_regions(n, domain, seed),
        }
    }

    /// Display label for tables.
    pub fn label(&self) -> String {
        match *self {
            DataSpec::Sorted => "sorted".into(),
            DataSpec::ReverseSorted => "reverse-sorted".into(),
            DataSpec::AlmostSorted { noise } => format!("semi-sorted({:.0}%)", noise * 100.0),
            DataSpec::Clustered { clusters } => format!("clustered({clusters})"),
            DataSpec::Uniform => "uniform".into(),
            DataSpec::Zipf { theta } => format!("zipf({theta})"),
            DataSpec::Sawtooth { periods } => format!("sawtooth({periods})"),
            DataSpec::MixedRegions => "mixed-regions".into(),
        }
    }

    /// The distribution suite used by the headline experiments: the
    /// classes the abstract names (sorted, semi-sorted, clustered,
    /// arbitrary) plus the mixed-region stress case.
    pub fn standard_suite() -> Vec<DataSpec> {
        vec![
            DataSpec::Sorted,
            DataSpec::AlmostSorted { noise: 0.05 },
            DataSpec::Clustered { clusters: 64 },
            DataSpec::Uniform,
            DataSpec::MixedRegions,
        ]
    }
}

/// A named query workload with fixed shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// Uniformly placed ranges of fixed value-domain selectivity.
    UniformRandom {
        /// Value-domain selectivity in `[0, 1]`.
        selectivity: f64,
    },
    /// Ranges concentrated around one centre.
    Hotspot {
        /// Value-domain selectivity.
        selectivity: f64,
        /// Hotspot centre as a domain fraction.
        center: f64,
    },
    /// Hotspot that jumps between phases.
    ShiftingHotspot {
        /// Value-domain selectivity.
        selectivity: f64,
        /// Number of phases.
        phases: usize,
    },
    /// Deterministic sweeping window.
    Sweep {
        /// Value-domain selectivity.
        selectivity: f64,
    },
    /// Equality lookups.
    Points,
}

impl QuerySpec {
    /// Generates the query sequence.
    pub fn generate(&self, count: usize, domain: i64, seed: u64) -> Vec<RangeQuery> {
        match *self {
            QuerySpec::UniformRandom { selectivity } => {
                queries::uniform_ranges(count, domain, selectivity, seed)
            }
            QuerySpec::Hotspot {
                selectivity,
                center,
            } => queries::hotspot_ranges(count, domain, selectivity, center, 0.1, seed),
            QuerySpec::ShiftingHotspot {
                selectivity,
                phases,
            } => queries::shifting_hotspot(count, domain, selectivity, phases, 0.1, seed),
            QuerySpec::Sweep { selectivity } => queries::sweep(count, domain, selectivity),
            QuerySpec::Points => queries::point_queries(count, domain, seed),
        }
    }

    /// Display label for tables.
    pub fn label(&self) -> String {
        match *self {
            QuerySpec::UniformRandom { selectivity } => {
                format!("uniform-random({}%)", selectivity * 100.0)
            }
            QuerySpec::Hotspot { selectivity, .. } => format!("hotspot({}%)", selectivity * 100.0),
            QuerySpec::ShiftingHotspot {
                selectivity,
                phases,
            } => format!(
                "shifting-hotspot({}%, {phases} phases)",
                selectivity * 100.0
            ),
            QuerySpec::Sweep { selectivity } => format!("sweep({}%)", selectivity * 100.0),
            QuerySpec::Points => "points".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_data_specs_generate() {
        let specs = [
            DataSpec::Sorted,
            DataSpec::ReverseSorted,
            DataSpec::AlmostSorted { noise: 0.1 },
            DataSpec::Clustered { clusters: 8 },
            DataSpec::Uniform,
            DataSpec::Zipf { theta: 0.99 },
            DataSpec::Sawtooth { periods: 4 },
            DataSpec::MixedRegions,
        ];
        for s in specs {
            let v = s.generate(1000, 10_000, 1);
            assert_eq!(v.len(), 1000, "{}", s.label());
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn all_query_specs_generate() {
        let specs = [
            QuerySpec::UniformRandom { selectivity: 0.01 },
            QuerySpec::Hotspot {
                selectivity: 0.01,
                center: 0.5,
            },
            QuerySpec::ShiftingHotspot {
                selectivity: 0.01,
                phases: 2,
            },
            QuerySpec::Sweep { selectivity: 0.01 },
            QuerySpec::Points,
        ];
        for s in specs {
            let qs = s.generate(64, 10_000, 1);
            assert_eq!(qs.len(), 64, "{}", s.label());
        }
    }

    #[test]
    fn standard_suite_covers_abstract_classes() {
        let labels: Vec<String> = DataSpec::standard_suite()
            .iter()
            .map(|s| s.label())
            .collect();
        assert!(labels.iter().any(|l| l.contains("sorted")));
        assert!(labels.iter().any(|l| l.contains("semi-sorted")));
        assert!(labels.iter().any(|l| l.contains("clustered")));
        assert!(labels.iter().any(|l| l.contains("uniform")));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = DataSpec::Uniform;
        assert_eq!(s.generate(100, 1000, 9), s.generate(100, 1000, 9));
        let q = QuerySpec::UniformRandom { selectivity: 0.05 };
        assert_eq!(q.generate(10, 1000, 9), q.generate(10, 1000, 9));
    }
}

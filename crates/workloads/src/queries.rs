//! Query workload generators: sequences of range predicates.
//!
//! Selectivity here is *value-domain* selectivity — the predicate covers
//! `selectivity * domain` of the value space. The row selectivity this
//! induces depends on the data distribution (uniform data makes the two
//! coincide), which the experiment write-ups note where it matters.

use ads_rng::StdRng;

/// One range query `[lo, hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl RangeQuery {
    /// Width of the queried value interval.
    pub fn width(&self) -> i64 {
        self.hi - self.lo
    }
}

/// Width of a predicate covering `selectivity` of `[0, domain)`.
fn width_for(domain: i64, selectivity: f64) -> i64 {
    ((domain as f64 * selectivity) as i64).clamp(0, domain - 1)
}

/// A query with lower bound `lo`, clamped into the domain.
fn query_at(lo: i64, width: i64, domain: i64) -> RangeQuery {
    let lo = lo.clamp(0, domain - 1 - width);
    RangeQuery { lo, hi: lo + width }
}

/// Ranges with uniformly random positions and fixed selectivity.
pub fn uniform_ranges(count: usize, domain: i64, selectivity: f64, seed: u64) -> Vec<RangeQuery> {
    let width = width_for(domain, selectivity);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| query_at(rng.gen_range(0..domain), width, domain))
        .collect()
}

/// Point (equality) queries at uniformly random values.
pub fn point_queries(count: usize, domain: i64, seed: u64) -> Vec<RangeQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let v = rng.gen_range(0..domain);
            RangeQuery { lo: v, hi: v }
        })
        .collect()
}

/// Ranges concentrated in a hotspot: positions are drawn from
/// `[center - hw, center + hw)` where `hw = hotspot_width_fraction * domain / 2`.
pub fn hotspot_ranges(
    count: usize,
    domain: i64,
    selectivity: f64,
    center_fraction: f64,
    hotspot_width_fraction: f64,
    seed: u64,
) -> Vec<RangeQuery> {
    let width = width_for(domain, selectivity);
    let center = (domain as f64 * center_fraction) as i64;
    let hw = ((domain as f64 * hotspot_width_fraction) as i64 / 2).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| query_at(center + rng.gen_range(-hw..hw), width, domain))
        .collect()
}

/// A workload whose hotspot jumps to a new random centre every
/// `count / phases` queries — the workload-shift scenario (E7).
pub fn shifting_hotspot(
    count: usize,
    domain: i64,
    selectivity: f64,
    phases: usize,
    hotspot_width_fraction: f64,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!(phases > 0, "need at least one phase");
    let per_phase = count.div_ceil(phases);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for p in 0..phases {
        let center_fraction = rng.gen_range(0.1..0.9);
        let take = per_phase.min(count - out.len());
        out.extend(hotspot_ranges(
            take,
            domain,
            selectivity,
            center_fraction,
            hotspot_width_fraction,
            seed ^ (p as u64 + 1),
        ));
    }
    out
}

/// A deterministic window sweeping the domain left to right, wrapping —
/// the dashboard-refresh pattern.
pub fn sweep(count: usize, domain: i64, selectivity: f64) -> Vec<RangeQuery> {
    let width = width_for(domain, selectivity);
    let step = (domain / count.max(1) as i64).max(1);
    (0..count)
        .map(|i| query_at((i as i64 * step) % domain, width, domain))
        .collect()
}

/// Drill-down: repeatedly narrows around a target value, halving the
/// selectivity every `per_level` queries (interactive exploration).
pub fn zoom_in(
    count: usize,
    domain: i64,
    start_selectivity: f64,
    per_level: usize,
    seed: u64,
) -> Vec<RangeQuery> {
    assert!(per_level > 0, "per_level must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let target = rng.gen_range(0..domain);
    (0..count)
        .map(|i| {
            let level = i / per_level;
            let sel = start_selectivity / (1u64 << level.min(32)) as f64;
            let width = width_for(domain, sel).max(1);
            let jitter = rng.gen_range(-width / 2..=width / 2);
            query_at(target + jitter - width / 2, width, domain)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOMAIN: i64 = 1_000_000;

    fn all_valid(qs: &[RangeQuery]) {
        for q in qs {
            assert!(q.lo <= q.hi, "{q:?}");
            assert!(q.lo >= 0 && q.hi < DOMAIN, "{q:?}");
        }
    }

    #[test]
    fn uniform_ranges_have_requested_width() {
        let qs = uniform_ranges(100, DOMAIN, 0.01, 1);
        all_valid(&qs);
        assert!(qs.iter().all(|q| q.width() == DOMAIN / 100));
        assert_eq!(qs, uniform_ranges(100, DOMAIN, 0.01, 1), "deterministic");
    }

    #[test]
    fn point_queries_are_points() {
        let qs = point_queries(50, DOMAIN, 2);
        all_valid(&qs);
        assert!(qs.iter().all(|q| q.width() == 0));
    }

    #[test]
    fn hotspot_stays_in_hotspot() {
        let qs = hotspot_ranges(200, DOMAIN, 0.001, 0.5, 0.1, 3);
        all_valid(&qs);
        let center = DOMAIN / 2;
        for q in &qs {
            assert!(
                (q.lo - center).abs() < DOMAIN / 10,
                "{q:?} far from hotspot"
            );
        }
    }

    #[test]
    fn shifting_hotspot_changes_phase_centres() {
        let qs = shifting_hotspot(300, DOMAIN, 0.001, 3, 0.05, 4);
        assert_eq!(qs.len(), 300);
        all_valid(&qs);
        let mean = |s: &[RangeQuery]| s.iter().map(|q| q.lo).sum::<i64>() / s.len() as i64;
        let (m1, m2, m3) = (mean(&qs[..100]), mean(&qs[100..200]), mean(&qs[200..]));
        assert!(
            (m1 - m2).abs() > DOMAIN / 20 || (m2 - m3).abs() > DOMAIN / 20,
            "phases should move: {m1} {m2} {m3}"
        );
    }

    #[test]
    fn sweep_covers_domain_monotonically() {
        let qs = sweep(100, DOMAIN, 0.005);
        all_valid(&qs);
        assert!(qs.windows(2).take(98).all(|w| w[0].lo <= w[1].lo));
        assert!(qs.last().unwrap().lo > DOMAIN / 2);
    }

    #[test]
    fn zoom_in_narrows() {
        let qs = zoom_in(40, DOMAIN, 0.1, 10, 5);
        all_valid(&qs);
        assert!(qs[0].width() > qs[39].width() * 4);
    }

    #[test]
    fn zero_count() {
        assert!(uniform_ranges(0, DOMAIN, 0.1, 1).is_empty());
        assert!(sweep(0, DOMAIN, 0.1).is_empty());
    }
}

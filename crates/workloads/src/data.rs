//! Synthetic data distributions.
//!
//! The abstract characterises data only by distribution class — sorted,
//! semi-sorted, clustered in value, or arbitrary — so these generators
//! parameterise exactly those axes. All are deterministic given a seed.

use ads_rng::StdRng;

/// Evenly spread ascending values over `[0, domain)`.
pub fn sorted(n: usize, domain: i64) -> Vec<i64> {
    assert!(domain > 0, "domain must be positive");
    (0..n).map(|i| value_at(i, n, domain)).collect()
}

/// Evenly spread descending values over `[0, domain)`.
pub fn reverse_sorted(n: usize, domain: i64) -> Vec<i64> {
    let mut v = sorted(n, domain);
    v.reverse();
    v
}

/// Sorted data with a fraction of rows displaced: `noise_fraction` of the
/// rows are swapped with a partner up to `max_displacement` positions away.
/// This is the "semi-sorted" class — timestamps from slightly-out-of-order
/// ingestion, for example.
pub fn almost_sorted(
    n: usize,
    domain: i64,
    noise_fraction: f64,
    max_displacement: usize,
    seed: u64,
) -> Vec<i64> {
    assert!((0.0..=1.0).contains(&noise_fraction), "noise out of [0,1]");
    let mut v = sorted(n, domain);
    if n < 2 || max_displacement == 0 {
        return v;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // narrowing: swaps <= n/2, and n is a usize row count.
    let swaps = (n as f64 * noise_fraction / 2.0) as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let d = rng.gen_range(1..=max_displacement);
        let j = (i + d).min(n - 1);
        v.swap(i, j);
    }
    v
}

/// Independent uniform draws over `[0, domain)` — the adversarial
/// "arbitrary distribution" case where positional metadata cannot help.
pub fn uniform(n: usize, domain: i64, seed: u64) -> Vec<i64> {
    assert!(domain > 0, "domain must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

/// Positionally contiguous clusters of similar values: the table is cut
/// into `clusters` runs, each drawing values from a narrow window around a
/// random centre. Models partition-loaded or batch-ingested data.
pub fn clustered(
    n: usize,
    clusters: usize,
    width_fraction: f64,
    domain: i64,
    seed: u64,
) -> Vec<i64> {
    assert!(clusters > 0, "need at least one cluster");
    assert!((0.0..=1.0).contains(&width_fraction), "width out of [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let width = ((domain as f64 * width_fraction) as i64).max(1);
    let run = n.div_ceil(clusters);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let center = rng.gen_range(0..domain);
        let take = run.min(n - out.len());
        for _ in 0..take {
            let jitter = rng.gen_range(0..width) - width / 2;
            out.push((center + jitter).clamp(0, domain - 1));
        }
    }
    out
}

/// Zipf-skewed values: rank `r` (0 = hottest) occurs with probability
/// `∝ 1/(r+1)^theta`; ranks map to values spread over the domain by a
/// multiplicative hash so hot values are not positionally clustered.
pub fn zipf(n: usize, domain: i64, theta: f64, seed: u64) -> Vec<i64> {
    assert!(domain > 0, "domain must be positive");
    assert!(theta > 0.0 && theta < 2.0, "theta out of (0,2)");
    // narrowing: clamped to <= 100_000.
    let ranks = domain.min(100_000) as usize;
    // Gray et al. quantile method over a precomputed zeta table.
    let mut zeta = 0.0f64;
    let mut cdf = Vec::with_capacity(ranks);
    for r in 1..=ranks {
        zeta += 1.0 / (r as f64).powf(theta);
        cdf.push(zeta);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..zeta);
            let rank = cdf.partition_point(|&c| c < u) as i64;
            // Spread ranks over the domain deterministically.
            (rank.wrapping_mul(2654435761)).rem_euclid(domain)
        })
        .collect()
}

/// Piecewise-ascending sawtooth: `periods` ascending runs over the full
/// domain. Locally sorted but globally repeating — zonemaps skip well at
/// fine granularity and poorly at coarse granularity, which makes this the
/// distribution where granularity adaptation matters most.
pub fn sawtooth(n: usize, periods: usize, domain: i64) -> Vec<i64> {
    assert!(periods > 0, "need at least one period");
    let run = n.div_ceil(periods);
    (0..n).map(|i| value_at(i % run, run, domain)).collect()
}

/// A column whose regions follow different distributions: the first third
/// sorted, the middle third uniform-random, the final third clustered.
/// Exercises per-region adaptation — no single static granularity (or
/// activation choice) is right for the whole column.
pub fn mixed_regions(n: usize, domain: i64, seed: u64) -> Vec<i64> {
    let third = n / 3;
    let mut v = sorted(third, domain);
    v.extend(uniform(third, domain, seed));
    v.extend(clustered(
        n - 2 * third,
        16,
        0.02,
        domain,
        seed ^ 0x9e37_79b9,
    ));
    v
}

/// A narrow base signal polluted by sparse large outliers: base values
/// draw uniformly from `[0, base_width)`, and every `outlier_every`-th row
/// is replaced by a value from the top half of the domain (sensor glitches,
/// error codes, sentinel values). Outliers pin every zone's `(min, max)`
/// wide open, which is the worst case for plain zonemaps and the motivating
/// case for value-mask refinement.
pub fn with_outliers(
    n: usize,
    base_width: i64,
    outlier_every: usize,
    domain: i64,
    seed: u64,
) -> Vec<i64> {
    assert!(base_width > 0 && base_width <= domain, "bad base width");
    assert!(outlier_every > 0, "outlier_every must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % outlier_every == outlier_every / 2 {
                rng.gen_range(domain / 2..domain)
            } else {
                rng.gen_range(0..base_width)
            }
        })
        .collect()
}

/// The evenly spread value at position `i` of an `n`-row sorted column.
fn value_at(i: usize, n: usize, domain: i64) -> i64 {
    if n <= 1 {
        return 0;
    }
    ((i as i128 * domain as i128) / n as i128) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 10_000;
    const DOMAIN: i64 = 1_000_000;

    fn in_domain(v: &[i64]) {
        assert!(v.iter().all(|&x| (0..DOMAIN).contains(&x)));
    }

    #[test]
    fn sorted_is_sorted_and_spans_domain() {
        let v = sorted(N, DOMAIN);
        assert_eq!(v.len(), N);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        in_domain(&v);
        assert_eq!(v[0], 0);
        assert!(v[N - 1] > DOMAIN * 9 / 10);
    }

    #[test]
    fn reverse_sorted_descends() {
        let v = reverse_sorted(N, DOMAIN);
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn almost_sorted_noise_is_bounded() {
        let v = almost_sorted(N, DOMAIN, 0.05, 100, 7);
        in_domain(&v);
        let inversions = v.windows(2).filter(|w| w[0] > w[1]).count();
        assert!(inversions > 0, "noise should create inversions");
        assert!(
            inversions < N / 5,
            "5% noise should stay mostly sorted: {inversions}"
        );
    }

    #[test]
    fn almost_sorted_zero_noise_is_sorted() {
        let v = almost_sorted(N, DOMAIN, 0.0, 100, 7);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_is_deterministic_and_spread() {
        let a = uniform(N, DOMAIN, 42);
        let b = uniform(N, DOMAIN, 42);
        assert_eq!(a, b);
        assert_ne!(a, uniform(N, DOMAIN, 43));
        in_domain(&a);
        // Roughly half below the midpoint.
        let below = a.iter().filter(|&&x| x < DOMAIN / 2).count();
        assert!((below as f64 / N as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn clustered_runs_have_narrow_value_ranges() {
        let v = clustered(N, 10, 0.01, DOMAIN, 3);
        in_domain(&v);
        let run = N / 10;
        for c in 0..10 {
            let slice = &v[c * run..(c + 1) * run];
            let (min, max) = (*slice.iter().min().unwrap(), *slice.iter().max().unwrap());
            assert!(max - min <= DOMAIN / 50, "cluster {c} too wide");
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let v = zipf(N, DOMAIN, 0.99, 5);
        in_domain(&v);
        // The hottest value should appear far more often than uniform
        // would allow (expected ~N/ranks under uniform).
        let mut counts = std::collections::HashMap::new();
        for &x in &v {
            *counts.entry(x).or_insert(0usize) += 1;
        }
        let max_count = *counts.values().max().unwrap();
        assert!(max_count > N / 100, "not skewed: max count {max_count}");
    }

    #[test]
    fn sawtooth_has_periods() {
        let v = sawtooth(N, 4, DOMAIN);
        in_domain(&v);
        let run = N / 4;
        assert!(v[..run].windows(2).all(|w| w[0] <= w[1]));
        assert!(v[run] < v[run - 1], "teeth should reset");
    }

    #[test]
    fn mixed_regions_structure() {
        let v = mixed_regions(N, DOMAIN, 11);
        assert_eq!(v.len(), N);
        in_domain(&v);
        let third = N / 3;
        assert!(
            v[..third].windows(2).all(|w| w[0] <= w[1]),
            "first third sorted"
        );
    }

    #[test]
    fn with_outliers_structure() {
        let v = with_outliers(N, 1000, 100, DOMAIN, 5);
        in_domain(&v);
        let outliers = v.iter().filter(|&&x| x >= DOMAIN / 2).count();
        assert_eq!(outliers, N / 100);
        assert!(v.iter().filter(|&&x| x < 1000).count() >= N - N / 100);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(sorted(0, DOMAIN).len(), 0);
        assert_eq!(sorted(1, DOMAIN), vec![0]);
        assert_eq!(uniform(0, DOMAIN, 1).len(), 0);
        assert_eq!(clustered(1, 5, 0.1, DOMAIN, 1).len(), 1);
        assert_eq!(sawtooth(3, 10, DOMAIN).len(), 3);
    }
}

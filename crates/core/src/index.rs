//! The [`SkippingIndex`] trait — the framework's uniform interface for
//! data-skipping structures.
//!
//! The paper frames adaptive data skipping as "a framework for structures
//! and techniques that respond to a vast array of data distributions and
//! query workloads". The framework contract here is a two-phase protocol:
//!
//! 1. [`SkippingIndex::prune`] — before the scan, the index converts a
//!    predicate into candidate row ranges (a sound over-approximation);
//! 2. [`SkippingIndex::observe`] — after the scan, the executor feeds back
//!    what the scan saw (qualifying counts and exact per-range min/max),
//!    and the index may reorganise itself.
//!
//! Static structures implement `observe` as a no-op; adaptive ones use it to
//! build, refine, coarsen, or retire metadata.

use crate::outcome::{PruneOutcome, ScanObservation};
use crate::predicate::RangePredicate;
use crate::stats::PruneStats;
use ads_storage::{DataValue, RangeSet};

/// Coordinate system of the ranges an index emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanCoords {
    /// Ranges address the base column directly (zonemaps, imprints).
    Base,
    /// Ranges address the index's own reorganised copy of the column
    /// (cracking, sorted projection); positions translate back to base
    /// row ids via [`SkippingIndex::translate_positions`].
    View,
}

/// A data-skipping access method over one column.
pub trait SkippingIndex<T: DataValue>: Send {
    /// Human-readable name including parameters, used in reports.
    fn name(&self) -> String;

    /// Downcast hook so tools (the demo CLI, dashboards) can inspect a
    /// type-erased index — e.g. to render an adaptive zonemap's zones.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Converts `pred` into candidate ranges. May mutate the index
    /// (cracking physically reorganises during this call).
    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome;

    /// Post-scan feedback; adaptive structures react here. Default: no-op.
    fn observe(&mut self, _obs: &ScanObservation<T>) {}

    /// Maintains the index after `appended` rows were added to the column;
    /// `base` is the full column including the new rows.
    fn on_append(&mut self, appended: &[T], base: &[T]);

    /// Bytes of metadata the index holds (excluding any data copy).
    fn metadata_bytes(&self) -> usize;

    /// Bytes of column data the index duplicates (cracker column, sorted
    /// projection). Zero for metadata-only structures.
    fn data_copy_bytes(&self) -> usize {
        0
    }

    /// Which coordinate system pruned ranges refer to.
    fn scan_coords(&self) -> ScanCoords {
        ScanCoords::Base
    }

    /// The reorganised data copy scans must run against when
    /// [`SkippingIndex::scan_coords`] is [`ScanCoords::View`].
    fn view(&self) -> Option<&[T]> {
        None
    }

    /// Maps view positions (from a scan over [`SkippingIndex::view`]) back
    /// to base row ids, in place. No-op for base-coordinate indexes.
    fn translate_positions(&self, _positions: &mut [u32]) {}

    /// Number of adaptation events (build/split/merge/deactivate/revive)
    /// performed so far. Zero for static structures.
    fn adapt_events(&self) -> u64 {
        0
    }

    /// Pre-probe summary for cost-based planners, or `None` when the index
    /// cannot estimate its own payoff (planners should then treat a probe
    /// as always worthwhile). Only meaningful for base-coordinate indexes.
    fn prune_stats(&self) -> Option<PruneStats> {
        None
    }

    /// Prunes `pred` restricted to rows still `alive` after earlier
    /// conjuncts. The default probes the full map and intersects; indexes
    /// with positional metadata override this to skip examining zones that
    /// are no longer alive. Only meaningful for base-coordinate indexes —
    /// `alive` is in the same coordinates as the emitted ranges.
    fn prune_within(&mut self, pred: &RangePredicate<T>, alive: &RangeSet) -> PruneOutcome {
        self.prune(pred).restrict_to(alive)
    }

    /// Periodic self-maintenance hook, called by executors after feedback
    /// with the current base column. Adaptive structures that physically
    /// reorganize data (zone promotion/demotion) act here; everything
    /// else inherits the no-op.
    fn maintain(&mut self, _base: &[T]) {}
}

impl<T: DataValue> SkippingIndex<T> for Box<dyn SkippingIndex<T>> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self.as_ref().as_any()
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        self.as_mut().prune(pred)
    }

    fn observe(&mut self, obs: &ScanObservation<T>) {
        self.as_mut().observe(obs)
    }

    fn on_append(&mut self, appended: &[T], base: &[T]) {
        self.as_mut().on_append(appended, base)
    }

    fn metadata_bytes(&self) -> usize {
        self.as_ref().metadata_bytes()
    }

    fn data_copy_bytes(&self) -> usize {
        self.as_ref().data_copy_bytes()
    }

    fn scan_coords(&self) -> ScanCoords {
        self.as_ref().scan_coords()
    }

    fn view(&self) -> Option<&[T]> {
        self.as_ref().view()
    }

    fn translate_positions(&self, positions: &mut [u32]) {
        self.as_ref().translate_positions(positions)
    }

    fn adapt_events(&self) -> u64 {
        self.as_ref().adapt_events()
    }

    fn prune_stats(&self) -> Option<PruneStats> {
        self.as_ref().prune_stats()
    }

    fn prune_within(&mut self, pred: &RangePredicate<T>, alive: &RangeSet) -> PruneOutcome {
        self.as_mut().prune_within(pred, alive)
    }

    fn maintain(&mut self, base: &[T]) {
        self.as_mut().maintain(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ads_storage::RangeSet;

    /// Minimal trait impl to pin default-method behaviour.
    struct Dummy;

    impl SkippingIndex<i64> for Dummy {
        fn name(&self) -> String {
            "dummy".into()
        }

        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn prune(&mut self, _pred: &RangePredicate<i64>) -> PruneOutcome {
            PruneOutcome {
                must_scan: RangeSet::full(10),
                ..Default::default()
            }
        }

        fn on_append(&mut self, _appended: &[i64], _base: &[i64]) {}

        fn metadata_bytes(&self) -> usize {
            0
        }
    }

    #[test]
    fn defaults() {
        let mut d = Dummy;
        assert_eq!(d.scan_coords(), ScanCoords::Base);
        assert!(d.view().is_none());
        assert_eq!(d.data_copy_bytes(), 0);
        assert_eq!(d.adapt_events(), 0);
        let mut pos = vec![1u32, 2];
        d.translate_positions(&mut pos);
        assert_eq!(pos, vec![1, 2]);
        let out = d.prune(&RangePredicate::all());
        assert_eq!(out.rows_to_scan(), 10);
        d.observe(&ScanObservation::empty(RangePredicate::all()));
        assert!(d.prune_stats().is_none());
        let mut alive = RangeSet::new();
        alive.push_span(2, 6);
        let restricted = d.prune_within(&RangePredicate::all(), &alive);
        assert_eq!(restricted.rows_to_scan(), 4);
    }

    #[test]
    fn trait_is_object_safe() {
        let b: Box<dyn SkippingIndex<i64>> = Box::new(Dummy);
        assert_eq!(b.name(), "dummy");
    }
}

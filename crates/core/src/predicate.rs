//! Range predicates — the filter shape zonemaps prune against.

use ads_storage::DataValue;

/// An inclusive range predicate `lo <= v <= hi`.
///
/// All comparison predicates used by the engine normalise to this shape:
/// `v = x` becomes `[x, x]`, `v <= x` becomes `[MIN_VALUE, x]`, and
/// `v >= x` becomes `[x, MAX_VALUE]`. Zone pruning then reduces to interval
/// arithmetic against zone `(min, max)` metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate<T: DataValue> {
    /// Inclusive lower bound.
    pub lo: T,
    /// Inclusive upper bound.
    pub hi: T,
}

impl<T: DataValue> RangePredicate<T> {
    /// `lo <= v <= hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi` under the total order.
    pub fn between(lo: T, hi: T) -> Self {
        assert!(lo.le_total(&hi), "empty predicate: lo {lo:?} > hi {hi:?}");
        RangePredicate { lo, hi }
    }

    /// `v = x`.
    pub fn point(x: T) -> Self {
        RangePredicate { lo: x, hi: x }
    }

    /// `v <= x`.
    pub fn at_most(x: T) -> Self {
        RangePredicate {
            lo: T::MIN_VALUE,
            hi: x,
        }
    }

    /// `v >= x`.
    pub fn at_least(x: T) -> Self {
        RangePredicate {
            lo: x,
            hi: T::MAX_VALUE,
        }
    }

    /// The always-true predicate.
    pub fn all() -> Self {
        RangePredicate {
            lo: T::MIN_VALUE,
            hi: T::MAX_VALUE,
        }
    }

    /// True when the predicate selects exactly one value under the total
    /// order (`lo == hi` via [`DataValue::eq_total`]) — the shape bloom
    /// sketches can answer and the single-compare scan kernel serves.
    /// Note `[-0.0, 0.0]` is *not* a point: it spans two distinct values.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo.eq_total(&self.hi)
    }

    /// True if value `v` satisfies the predicate.
    #[inline]
    pub fn matches(&self, v: T) -> bool {
        v.ge_total(&self.lo) && v.le_total(&self.hi)
    }

    /// True if a zone with value range `[min, max]` could contain a
    /// qualifying value — i.e. the intervals overlap. A pruner may skip
    /// the zone exactly when this is false.
    #[inline]
    pub fn overlaps(&self, min: T, max: T) -> bool {
        self.lo.le_total(&max) && self.hi.ge_total(&min)
    }

    /// True if *every* value in a zone with range `[min, max]` qualifies —
    /// the predicate interval contains the zone interval. Such zones need
    /// no scan for COUNT-style queries.
    #[inline]
    pub fn contains_zone(&self, min: T, max: T) -> bool {
        self.lo.le_total(&min) && self.hi.ge_total(&max)
    }
}

impl<T: DataValue> std::fmt::Display for RangePredicate<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} , {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = RangePredicate::between(3i64, 7);
        assert_eq!((p.lo, p.hi), (3, 7));
        assert_eq!(RangePredicate::point(5i64), RangePredicate::between(5, 5));
        assert_eq!(RangePredicate::at_most(9i64).lo, i64::MIN);
        assert_eq!(RangePredicate::at_least(9i64).hi, i64::MAX);
        let all = RangePredicate::<i64>::all();
        assert!(all.matches(i64::MIN) && all.matches(i64::MAX));
    }

    #[test]
    #[should_panic(expected = "empty predicate")]
    fn inverted_bounds_panic() {
        RangePredicate::between(7i64, 3);
    }

    #[test]
    fn matches_inclusive() {
        let p = RangePredicate::between(3i64, 7);
        assert!(p.matches(3) && p.matches(7) && p.matches(5));
        assert!(!p.matches(2) && !p.matches(8));
    }

    #[test]
    fn overlaps_interval_arithmetic() {
        let p = RangePredicate::between(10i64, 20);
        assert!(p.overlaps(0, 10)); // touch at lo
        assert!(p.overlaps(20, 30)); // touch at hi
        assert!(p.overlaps(12, 15)); // inside
        assert!(p.overlaps(0, 100)); // contains
        assert!(!p.overlaps(0, 9));
        assert!(!p.overlaps(21, 30));
    }

    #[test]
    fn contains_zone_semantics() {
        let p = RangePredicate::between(10i64, 20);
        assert!(p.contains_zone(10, 20));
        assert!(p.contains_zone(12, 18));
        assert!(!p.contains_zone(9, 20));
        assert!(!p.contains_zone(10, 21));
    }

    #[test]
    fn is_point_uses_total_order_equality() {
        assert!(RangePredicate::point(5i64).is_point());
        assert!(!RangePredicate::between(3i64, 7).is_point());
        assert!(RangePredicate::point(f64::NAN).is_point());
        assert!(RangePredicate::point(-0.0f64).is_point());
        // -0.0 and 0.0 are distinct under the total order: a two-value
        // interval, not a point.
        assert!(!RangePredicate::between(-0.0f64, 0.0).is_point());
    }

    #[test]
    fn float_predicate_with_nan_zone_max_not_skipped() {
        // A zone holding a NaN has max = NaN, which sorts above +inf;
        // overlap must still be detected for finite predicates whose lo
        // is below the zone's min.
        let p = RangePredicate::between(0.0f64, 10.0);
        assert!(p.overlaps(5.0, f64::NAN));
    }

    #[test]
    fn display() {
        assert_eq!(RangePredicate::between(1i64, 2).to_string(), "[1 , 2]");
    }
}

//! # ads-core — the adaptive data-skipping framework
//!
//! Reproduction of the core contribution of Qin & Idreos, *Adaptive Data
//! Skipping in Main-Memory Systems* (SIGMOD 2016): a framework in which
//! data-skipping structures respond to the data distribution and the query
//! workload, instantiated as **adaptive zonemaps**.
//!
//! ## The framework
//!
//! Every skipping structure implements [`SkippingIndex`], a two-phase
//! protocol:
//!
//! 1. **prune** — turn a [`RangePredicate`] into a [`PruneOutcome`]: the
//!    candidate row ranges a scan must still visit (a sound superset of
//!    the qualifying rows), plus ranges known to match entirely;
//! 2. **observe** — after the scan, receive a [`ScanObservation`] carrying
//!    per-range qualifying counts and exact `(min, max)` computed as scan
//!    by-products, and optionally reorganise.
//!
//! ## The structures
//!
//! * [`StaticZonemap`] — the classic fixed-granularity, eagerly built
//!   zonemap (the paper's comparison point);
//! * [`adaptive::AdaptiveZonemap`] — lazy building, refinement splits,
//!   coarsening merges, deactivation and backoff revival, driven by the
//!   [`CostModel`];
//! * [`Activated`] — index-level adaptation: wraps *any* base-coordinate
//!   structure with benefit metering and dormancy/backoff, turning static
//!   structures adaptive at their on/off granularity.
//!
//! Baseline structures from the wider literature (column imprints,
//! database cracking, a sorted oracle) implement the same trait in
//! `ads-baselines`.
//!
//! ## Example
//!
//! ```
//! use ads_core::{adaptive::{AdaptiveConfig, AdaptiveZonemap}, SkippingIndex,
//!                RangePredicate, RangeObservation, ScanObservation};
//! use ads_storage::scan;
//!
//! let data: Vec<i64> = (0..10_000).collect();
//! let mut zm = AdaptiveZonemap::new(data.len(), AdaptiveConfig::default());
//! let pred = RangePredicate::between(100, 199);
//!
//! // prune -> scan -> observe
//! let outcome = zm.prune(&pred);
//! let mut observations = Vec::new();
//! let mut count = outcome.rows_full_match();
//! for unit in outcome.units() {
//!     let (q, min, max) =
//!         scan::count_in_range_with_minmax(&data[unit.start..unit.end], pred.lo, pred.hi);
//!     count += q;
//!     observations.push(RangeObservation::new(*unit, q, min, max));
//! }
//! zm.observe(&ScanObservation { predicate: pred, ranges: observations });
//! assert_eq!(count, 100);
//!
//! // The second identical query skips nearly everything.
//! let outcome = zm.prune(&pred);
//! assert!(outcome.rows_to_scan() < 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod adaptive;
#[cfg(feature = "audit")]
pub mod audit;
pub mod cost;
pub mod index;
pub mod outcome;
pub mod predicate;
pub mod stats;
pub mod trace;
pub mod zonemap_static;

pub use activation::{Activated, ActivationConfig};
pub use cost::CostModel;
pub use index::{ScanCoords, SkippingIndex};
pub use outcome::{PruneOutcome, RangeObservation, ReorgUnit, ScanObservation};
pub use predicate::RangePredicate;
pub use stats::{Ewma, IndexStats, PruneStats, ZoneStats};
pub use trace::{AdaptEvent, AdaptTrace, TraceTotals};
pub use zonemap_static::StaticZonemap;

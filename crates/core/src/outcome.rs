//! Pruning outcomes and post-scan observations — the two halves of the
//! prune/observe protocol between a skipping index and the scan executor.

use crate::predicate::RangePredicate;
use ads_storage::{DataValue, RangeSet, RowRange};
use std::sync::Arc;

/// A request for the scan to also collect a 64-bin value mask over a
/// scanned unit, using equal-width bins over `[lo_f, hi_f]` (values
/// converted via [`DataValue::to_f64`], which is monotone for all
/// supported types, so the binning is sound for range pruning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskRequest {
    /// Lower edge of the bin layout.
    pub lo_f: f64,
    /// Upper edge of the bin layout.
    pub hi_f: f64,
}

impl MaskRequest {
    /// Bin index of a value under this layout, clamped to `0..64`.
    #[inline]
    pub fn bin(&self, v: f64) -> u32 {
        let span = self.hi_f - self.lo_f;
        if span <= 0.0 {
            return 0;
        }
        // narrowing: clamped to [0, 63] on the previous expression.
        (((v - self.lo_f) / span) * 64.0).clamp(0.0, 63.0) as u32
    }

    /// Bit mask covering all bins a predicate `[lo, hi]` can touch.
    #[inline]
    pub fn predicate_bits(&self, lo: f64, hi: f64) -> u64 {
        let a = self.bin(lo.max(self.lo_f));
        let b = self.bin(hi.min(self.hi_f));
        debug_assert!(a <= b);
        let width = b - a + 1;
        if width >= 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << a
        }
    }
}

/// A positional scan unit over one reorganized zone.
///
/// The prune resolved the predicate against the zone's sorted/cracked
/// payload: every view position in `full` qualifies, the up-to-two
/// `edges` pieces must still be predicate-tested, and the payload's
/// rowid permutation maps view positions back to base rows. The payload
/// `Arc` travels *inside* the outcome so decision and data are published
/// atomically — an executor can never pair these spans with a different
/// payload generation (no torn zones by construction).
///
/// The payload is type-erased (`dyn Any`) so `PruneOutcome` stays
/// non-generic; executors downcast it to `ReorgZone<T>` for the column's
/// value type.
#[derive(Clone)]
pub struct ReorgUnit {
    /// The zone's row range in base coordinates.
    pub zone: RowRange,
    /// View positions (into the payload) that all qualify.
    pub full: RowRange,
    /// Boundary pieces (view positions) to scan with the predicate.
    pub edges: [Option<RowRange>; 2],
    /// The reorganized payload; downcast to `ads_storage::ReorgZone<T>`.
    pub payload: Arc<dyn std::any::Any + Send + Sync>,
}

impl ReorgUnit {
    /// View rows the executor must still test one by one.
    pub fn edge_rows(&self) -> usize {
        self.edges.iter().flatten().map(RowRange::len).sum()
    }

    /// View rows known to qualify without any test.
    pub fn full_rows(&self) -> usize {
        self.full.len()
    }
}

impl std::fmt::Debug for ReorgUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReorgUnit")
            .field("zone", &self.zone)
            .field("full", &self.full)
            .field("edges", &self.edges)
            .finish_non_exhaustive()
    }
}

impl PartialEq for ReorgUnit {
    fn eq(&self, other: &Self) -> bool {
        self.zone == other.zone
            && self.full == other.full
            && self.edges == other.edges
            && Arc::ptr_eq(&self.payload, &other.payload)
    }
}

/// What a skipping index tells the executor after pruning a predicate.
///
/// Soundness contract: every qualifying row lies in `must_scan`,
/// `full_match`, or a `reorg_units` zone (in the index's scan coordinates
/// — base-table positions for positional indexes, view positions for
/// indexes that answer from their own reorganised copy, such as cracking).
/// The `audit` feature checks this contract at runtime: see
/// [`crate::audit`].
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Ranges the executor must scan and filter. Disjoint from `full_match`.
    pub must_scan: RangeSet,
    /// The units the executor should scan *individually*, reporting one
    /// [`RangeObservation`] per unit. Same total coverage as `must_scan`
    /// but possibly finer: adaptive zonemaps emit one unit per zone so the
    /// fed-back `(min, max)` is exact at zone granularity. Empty means
    /// "use `must_scan.ranges()` as the units".
    pub scan_units: Vec<RowRange>,
    /// Optional per-unit mask-collection requests, aligned 1:1 with
    /// `scan_units` when non-empty. A scan honouring entry `i` computes
    /// the 64-bin value mask of unit `i` as a by-product and returns it in
    /// [`RangeObservation::mask`].
    pub mask_requests: Vec<Option<MaskRequest>>,
    /// Ranges known to contain *only* qualifying rows (predicate contains
    /// the zone's value range). COUNT-style queries take these for free.
    pub full_match: RangeSet,
    /// Positional units over reorganized zones, one per overlapping
    /// reorganized zone, disjoint from `must_scan` and `full_match`.
    /// Executors that cannot handle positional units demote them via
    /// [`PruneOutcome::demote_reorg_units`].
    pub reorg_units: Vec<ReorgUnit>,
    /// Zone-metadata entries examined to produce this outcome — the
    /// "metadata reads" whose cost the paper warns about.
    pub zones_probed: usize,
    /// Zones excluded by metadata.
    pub zones_skipped: usize,
    /// Per-zone decision trace for the shadow-oracle auditor. Excluded
    /// from equality: outcomes are decision-equal when they describe the
    /// same scan work, however the decisions were labelled (the
    /// prune ≡ prune_shared ≡ prune_via_zones property tests compare
    /// outcomes across paths with different trace granularity).
    #[cfg(feature = "audit")]
    pub audit_trace: Vec<crate::audit::AuditDecision>,
}

/// Manual impl: every field except the cfg-gated `audit_trace`.
impl PartialEq for PruneOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.must_scan == other.must_scan
            && self.scan_units == other.scan_units
            && self.mask_requests == other.mask_requests
            && self.full_match == other.full_match
            && self.reorg_units == other.reorg_units
            && self.zones_probed == other.zones_probed
            && self.zones_skipped == other.zones_skipped
    }
}

impl PruneOutcome {
    /// An outcome that scans everything: what a store without skipping does.
    pub fn scan_all(rows: usize) -> Self {
        PruneOutcome {
            must_scan: RangeSet::full(rows),
            ..Default::default()
        }
    }

    /// An empty outcome with the working capacities a zone-walking prune
    /// loop wants pre-reserved.
    pub fn for_prune() -> Self {
        PruneOutcome {
            must_scan: RangeSet::with_capacity(32),
            scan_units: Vec::with_capacity(32),
            full_match: RangeSet::with_capacity(8),
            ..Default::default()
        }
    }

    /// Records one per-zone decision for the shadow-oracle auditor.
    #[cfg(feature = "audit")]
    #[inline]
    pub fn record_decision(&mut self, zone: RowRange, action: &'static str) {
        self.audit_trace
            .push(crate::audit::AuditDecision { zone, action });
    }

    /// Without the `audit` feature, decision recording compiles away.
    #[cfg(not(feature = "audit"))]
    #[inline(always)]
    pub fn record_decision(&mut self, _zone: RowRange, _action: &'static str) {}

    /// The mask request for scan unit `i`, if any.
    pub fn mask_request(&self, i: usize) -> Option<MaskRequest> {
        self.mask_requests.get(i).copied().flatten()
    }

    /// The ranges the executor should scan one-by-one: `scan_units` when
    /// the index provided them, the coalesced `must_scan` ranges otherwise.
    pub fn units(&self) -> &[RowRange] {
        if self.scan_units.is_empty() {
            self.must_scan.ranges()
        } else {
            &self.scan_units
        }
    }

    /// Rows that must be touched by the scan.
    pub fn rows_to_scan(&self) -> usize {
        self.must_scan.covered_rows()
    }

    /// Rows answered from metadata alone.
    pub fn rows_full_match(&self) -> usize {
        self.full_match.covered_rows()
    }

    /// Rows resolved positionally from reorganized payloads without
    /// per-row predicate tests — the reorg analogue of
    /// [`PruneOutcome::rows_full_match`].
    pub fn rows_positional_match(&self) -> usize {
        self.reorg_units.iter().map(ReorgUnit::full_rows).sum()
    }

    /// Fraction of an `n`-row table the scan avoids touching
    /// (full-match rows count as avoided for COUNT-style work).
    pub fn skip_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            1.0 - self.rows_to_scan() as f64 / n as f64
        }
    }

    /// Folds positional reorg units back into plain scan units over their
    /// zones' base row ranges, dropping the positional spans and payload.
    ///
    /// Sound (the zone's base rows cover every row its payload permutes)
    /// but slower: the executor re-tests the predicate row by row. Used
    /// by paths that cannot carry positional units — conjunction
    /// restriction and the type-erased table path. Mask alignment is
    /// preserved by inserting `None` requests for the demoted units.
    pub fn demote_reorg_units(&self) -> PruneOutcome {
        if self.reorg_units.is_empty() {
            return self.clone();
        }
        let mut units: Vec<(RowRange, Option<MaskRequest>)> = self
            .units()
            .iter()
            .enumerate()
            .map(|(i, u)| (*u, self.mask_request(i)))
            .collect();
        let mut must_scan = self.must_scan.clone();
        for ru in &self.reorg_units {
            units.push((ru.zone, None));
            let mut zone = RangeSet::new();
            zone.push_span(ru.zone.start, ru.zone.end);
            must_scan = must_scan.union(&zone);
        }
        units.sort_by_key(|(u, _)| u.start);
        #[cfg_attr(not(feature = "audit"), allow(unused_mut))]
        let mut out = PruneOutcome {
            must_scan,
            scan_units: units.iter().map(|(u, _)| *u).collect(),
            mask_requests: units.iter().map(|(_, m)| *m).collect(),
            full_match: self.full_match.clone(),
            zones_probed: self.zones_probed,
            zones_skipped: self.zones_skipped,
            ..Default::default()
        };
        #[cfg(feature = "audit")]
        {
            out.audit_trace = self.audit_trace.clone();
        }
        out
    }

    /// Restricts the outcome to rows still `alive` after earlier conjuncts.
    ///
    /// `must_scan` and `full_match` are intersected with `alive`; scan
    /// units are fragmented at `alive` boundaries so each surviving unit
    /// is still a subrange of exactly one original unit (observation
    /// alignment stays per-unit exact). Mask requests are dropped — a
    /// fragment's value mask would no longer describe the original unit.
    /// Reorg units are demoted to plain units first: a positional span is
    /// meaningless under a base-coordinate restriction. Probe counters
    /// are kept: the metadata reads already happened.
    pub fn restrict_to(&self, alive: &RangeSet) -> PruneOutcome {
        if !self.reorg_units.is_empty() {
            return self.demote_reorg_units().restrict_to(alive);
        }
        let mut units = Vec::new();
        let alive_ranges = alive.ranges();
        let mut j = 0;
        for u in self.units() {
            // Advance past alive ranges entirely before this unit.
            while j < alive_ranges.len() && alive_ranges[j].end <= u.start {
                j += 1;
            }
            // Emit one fragment per overlapping alive range; `j` is not
            // advanced past a range that may also overlap the next unit.
            let mut k = j;
            while k < alive_ranges.len() && alive_ranges[k].start < u.end {
                if let Some(frag) = u.intersect(&alive_ranges[k]) {
                    units.push(frag);
                }
                k += 1;
            }
        }
        #[cfg_attr(not(feature = "audit"), allow(unused_mut))]
        let mut out = PruneOutcome {
            must_scan: self.must_scan.intersect(alive),
            scan_units: units,
            full_match: self.full_match.intersect(alive),
            zones_probed: self.zones_probed,
            zones_skipped: self.zones_skipped,
            ..Default::default()
        };
        #[cfg(feature = "audit")]
        {
            out.audit_trace = self.audit_trace.clone();
        }
        out
    }
}

/// Per-range result of an executed scan, fed back to the index.
///
/// `min`/`max` are the exact extremes of *all* rows in `range` (not only the
/// qualifying ones) — the scan computes them as a by-product, and adaptive
/// zonemaps use them to materialise zone metadata at no extra pass.
#[derive(Debug, Clone, Copy)]
pub struct RangeObservation<T: DataValue> {
    /// The scanned range, in the index's scan coordinates.
    pub range: RowRange,
    /// Number of rows in `range` satisfying the predicate.
    pub qualifying: usize,
    /// Exact minimum over all rows of `range`.
    pub min: T,
    /// Exact maximum over all rows of `range`.
    pub max: T,
    /// 64-bin value mask of the range, present when the prune requested
    /// one (see [`PruneOutcome::mask_requests`]).
    pub mask: Option<u64>,
}

impl<T: DataValue> RangeObservation<T> {
    /// An observation without a mask.
    pub fn new(range: RowRange, qualifying: usize, min: T, max: T) -> Self {
        RangeObservation {
            range,
            qualifying,
            min,
            max,
            mask: None,
        }
    }
}

/// Everything the executor observed while answering one query.
#[derive(Debug, Clone)]
pub struct ScanObservation<T: DataValue> {
    /// The predicate that was evaluated.
    pub predicate: RangePredicate<T>,
    /// One entry per scanned range of `PruneOutcome::must_scan`, in order.
    pub ranges: Vec<RangeObservation<T>>,
}

impl<T: DataValue> ScanObservation<T> {
    /// Observation with no scanned ranges (fully skipped or fully matched).
    pub fn empty(predicate: RangePredicate<T>) -> Self {
        ScanObservation {
            predicate,
            ranges: Vec::new(),
        }
    }

    /// Total qualifying rows across scanned ranges.
    pub fn total_qualifying(&self) -> usize {
        self.ranges.iter().map(|r| r.qualifying).sum()
    }

    /// Total rows scanned.
    pub fn total_scanned(&self) -> usize {
        self.ranges.iter().map(|r| r.range.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_all_covers_everything() {
        let o = PruneOutcome::scan_all(100);
        assert_eq!(o.rows_to_scan(), 100);
        assert_eq!(o.rows_full_match(), 0);
        assert_eq!(o.skip_fraction(100), 0.0);
        assert_eq!(o.zones_probed, 0);
    }

    #[test]
    fn skip_fraction_counts_full_match_as_skipped() {
        let mut o = PruneOutcome::default();
        o.must_scan.push_span(0, 25);
        o.full_match.push_span(50, 75);
        assert!((o.skip_fraction(100) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn skip_fraction_empty_table() {
        assert_eq!(PruneOutcome::default().skip_fraction(0), 0.0);
    }

    #[test]
    fn units_fall_back_to_must_scan() {
        let mut o = PruneOutcome::default();
        o.must_scan.push_span(0, 10);
        o.must_scan.push_span(20, 30);
        assert_eq!(o.units().len(), 2);
        o.scan_units = vec![
            RowRange::new(0, 5),
            RowRange::new(5, 10),
            RowRange::new(20, 30),
        ];
        assert_eq!(o.units().len(), 3);
    }

    #[test]
    fn restrict_to_intersects_and_fragments_units() {
        let mut o = PruneOutcome::default();
        o.must_scan.push_span(0, 30);
        o.scan_units = vec![
            RowRange::new(0, 10),
            RowRange::new(10, 20),
            RowRange::new(20, 30),
        ];
        o.mask_requests = vec![
            None,
            Some(MaskRequest {
                lo_f: 0.0,
                hi_f: 1.0,
            }),
            None,
        ];
        o.full_match.push_span(40, 50);
        o.zones_probed = 4;
        o.zones_skipped = 1;
        let mut alive = RangeSet::new();
        alive.push_span(5, 12);
        alive.push_span(18, 45);
        let r = o.restrict_to(&alive);
        assert_eq!(r.must_scan.covered_rows(), 7 + 2 + 10);
        assert_eq!(
            r.scan_units,
            vec![
                RowRange::new(5, 10),
                RowRange::new(10, 12),
                RowRange::new(18, 20),
                RowRange::new(20, 30),
            ]
        );
        // Each fragment sits inside exactly one original unit.
        for frag in &r.scan_units {
            assert!(o
                .scan_units
                .iter()
                .any(|u| u.start <= frag.start && frag.end <= u.end));
        }
        assert!(r.mask_requests.is_empty());
        assert_eq!(r.full_match.covered_rows(), 5);
        assert_eq!(r.zones_probed, 4);
        assert_eq!(r.zones_skipped, 1);
        // Unit coverage equals the restricted must_scan coverage.
        let total: usize = r.scan_units.iter().map(RowRange::len).sum();
        assert_eq!(total, r.must_scan.covered_rows());
    }

    #[test]
    fn restrict_to_uses_must_scan_when_no_units() {
        let mut o = PruneOutcome::default();
        o.must_scan.push_span(0, 10);
        o.must_scan.push_span(20, 30);
        let mut alive = RangeSet::new();
        alive.push_span(5, 25);
        let r = o.restrict_to(&alive);
        assert_eq!(
            r.scan_units,
            vec![RowRange::new(5, 10), RowRange::new(20, 25)]
        );
        // One alive range spanning two units must not be consumed early.
        assert_eq!(r.must_scan.covered_rows(), 10);
    }

    #[test]
    fn restrict_to_empty_alive_clears_everything() {
        let o = PruneOutcome::scan_all(100);
        let r = o.restrict_to(&RangeSet::new());
        assert!(r.must_scan.is_empty());
        assert!(r.scan_units.is_empty());
        assert!(r.full_match.is_empty());
    }

    #[test]
    fn observation_totals() {
        let pred = RangePredicate::between(0i64, 10);
        let obs = ScanObservation {
            predicate: pred,
            ranges: vec![
                RangeObservation::new(RowRange::new(0, 10), 3, -5, 40),
                RangeObservation::new(RowRange::new(20, 25), 5, 0, 9),
            ],
        };
        assert_eq!(obs.total_qualifying(), 8);
        assert_eq!(obs.total_scanned(), 15);
        assert_eq!(ScanObservation::empty(pred).total_scanned(), 0);
    }
}

//! Index-level activation: the framework's coarsest adaptive technique,
//! applicable to *any* skipping structure.
//!
//! The paper frames adaptive data skipping as "a framework for structures
//! and techniques". Adaptive zonemaps adapt *within* the structure;
//! [`Activated`] adapts *around* one: it meters the realized benefit of an
//! arbitrary inner [`SkippingIndex`] against the cost model, and when the
//! metadata is a sustained net loss it puts the whole index to sleep —
//! queries fall back to plain scans with **zero** probe overhead. Dormant
//! indexes are retried after an exponentially growing backoff, so a
//! workload or data change can win the metadata back.
//!
//! Wrapping a static zonemap or column imprints in `Activated` fixes their
//! adversarial case (uniform data) at the price of a short trial period —
//! without touching their implementation.

use crate::cost::CostModel;
use crate::index::{ScanCoords, SkippingIndex};
use crate::outcome::{PruneOutcome, ScanObservation};
use crate::predicate::RangePredicate;
use crate::stats::Ewma;
use ads_storage::DataValue;

/// Tuning knobs for [`Activated`].
#[derive(Debug, Clone, Copy)]
pub struct ActivationConfig {
    /// Queries of sustained negative benefit before going dormant.
    pub patience: u32,
    /// Dormant queries before the first retrial.
    pub backoff_base: u64,
    /// Queries each retrial stays active before being judged.
    pub trial_queries: u32,
    /// EWMA smoothing for the benefit signal.
    pub ewma_alpha: f64,
}

impl Default for ActivationConfig {
    fn default() -> Self {
        ActivationConfig {
            patience: 8,
            backoff_base: 64,
            trial_queries: 4,
            ewma_alpha: 0.3,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Delegating to the inner index.
    Active,
    /// Bypassing the inner index; `since` stamps the sleep start.
    Dormant {
        /// Query number when the index went dormant.
        since: u64,
    },
}

/// Wraps any skipping index with benefit metering and on/off adaptation.
#[derive(Debug, Clone)]
pub struct Activated<T: DataValue, I: SkippingIndex<T>> {
    inner: I,
    config: ActivationConfig,
    cost: CostModel,
    state: State,
    benefit: Ewma,
    negative_streak: u32,
    trial_left: u32,
    naps: u32,
    query_seq: u64,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: DataValue, I: SkippingIndex<T>> Activated<T, I> {
    /// Wraps `inner` over a column of `len` rows.
    pub fn new(inner: I, len: usize, config: ActivationConfig, cost: CostModel) -> Self {
        Activated {
            inner,
            config,
            cost,
            state: State::Active,
            benefit: Ewma::new(config.ewma_alpha),
            negative_streak: 0,
            trial_left: 0,
            naps: 0,
            query_seq: 0,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Wraps with defaults.
    pub fn with_defaults(inner: I, len: usize) -> Self {
        Activated::new(
            inner,
            len,
            ActivationConfig::default(),
            CostModel::default(),
        )
    }

    /// True while delegating to the inner index.
    pub fn is_active(&self) -> bool {
        self.state == State::Active
    }

    /// How many times the index has been put to sleep.
    pub fn naps(&self) -> u32 {
        self.naps
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Smoothed benefit in tuple-scan equivalents per query (positive:
    /// the metadata pays for itself).
    pub fn benefit(&self) -> f64 {
        self.benefit.value()
    }

    fn backoff(&self) -> u64 {
        let shift = self.naps.saturating_sub(1).min(20);
        self.config.backoff_base.saturating_mul(1 << shift)
    }
}

impl<T: DataValue, I: SkippingIndex<T> + 'static> SkippingIndex<T> for Activated<T, I> {
    fn name(&self) -> String {
        format!("activated({})", self.inner.name())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        self.query_seq += 1;
        if let State::Dormant { since } = self.state {
            if self.query_seq >= since + self.backoff() {
                // Retrial: wake up for a bounded number of queries.
                self.state = State::Active;
                self.trial_left = self.config.trial_queries;
                self.negative_streak = 0;
            } else {
                return PruneOutcome::scan_all(self.len);
            }
        }

        let out = self.inner.prune(pred);
        // Realized benefit of this prune: rows the scan will not touch,
        // minus the probes paid, in tuple-scan equivalents.
        let avoided = self.len.saturating_sub(out.rows_to_scan());
        let sample = avoided as f64 - out.zones_probed as f64 * self.cost.probe_cost_tuples;
        self.benefit.update(sample);
        if sample <= 0.0 {
            self.negative_streak += 1;
        } else {
            self.negative_streak = 0;
        }

        let in_trial = self.trial_left > 0;
        if in_trial {
            self.trial_left -= 1;
        }
        let give_up = if in_trial {
            // Judge a retrial at its end by the smoothed signal.
            self.trial_left == 0 && self.benefit.value() <= 0.0
        } else {
            self.negative_streak >= self.config.patience
        };
        if give_up {
            self.state = State::Dormant {
                since: self.query_seq,
            };
            self.naps = self.naps.saturating_add(1);
        }
        out
    }

    fn observe(&mut self, obs: &ScanObservation<T>) {
        if self.is_active() {
            self.inner.observe(obs);
        }
    }

    fn on_append(&mut self, appended: &[T], base: &[T]) {
        // Keep the inner index fresh even while dormant so a retrial can
        // answer soundly; its maintenance cost is the price of the option.
        self.inner.on_append(appended, base);
        self.len = base.len();
    }

    fn metadata_bytes(&self) -> usize {
        self.inner.metadata_bytes()
    }

    fn data_copy_bytes(&self) -> usize {
        self.inner.data_copy_bytes()
    }

    fn scan_coords(&self) -> ScanCoords {
        // Dormant prunes emit base-coordinate full ranges; inner indexes
        // that answer in view coordinates would make coordinates ambiguous
        // per query, so activation is restricted to base-coordinate inners.
        debug_assert_eq!(
            self.inner.scan_coords(),
            ScanCoords::Base,
            "Activated requires a base-coordinate inner index"
        );
        ScanCoords::Base
    }

    fn adapt_events(&self) -> u64 {
        self.naps as u64 + self.inner.adapt_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zonemap_static::StaticZonemap;

    fn fast_config() -> ActivationConfig {
        ActivationConfig {
            patience: 3,
            backoff_base: 8,
            trial_queries: 2,
            ewma_alpha: 0.5,
        }
    }

    fn uniform(n: usize) -> Vec<i64> {
        (0..n as i64)
            .map(|i| (i * 2654435761).rem_euclid(1_000_000))
            .collect()
    }

    #[test]
    fn stays_active_when_skipping_pays() {
        let data: Vec<i64> = (0..100_000).collect();
        let zm = StaticZonemap::build(&data, 1024);
        let mut act = Activated::new(zm, data.len(), fast_config(), CostModel::default());
        for q in 0..50 {
            let lo = (q * 997) % 90_000;
            let out = act.prune(&RangePredicate::between(lo, lo + 1000));
            assert!(out.zones_probed > 0, "should keep delegating");
        }
        assert!(act.is_active());
        assert_eq!(act.naps(), 0);
        assert!(act.benefit() > 0.0);
    }

    #[test]
    fn goes_dormant_on_useless_metadata() {
        let data = uniform(100_000);
        let zm = StaticZonemap::build(&data, 256);
        let mut act = Activated::new(zm, data.len(), fast_config(), CostModel::default());
        let mut dormant_prunes = 0;
        for q in 0..30 {
            let lo = (q * 997) % 900_000;
            let out = act.prune(&RangePredicate::between(lo, lo + 10_000));
            if out.zones_probed == 0 {
                dormant_prunes += 1;
                assert_eq!(out.rows_to_scan(), data.len());
            }
        }
        assert!(act.naps() >= 1, "useless metadata should be put to sleep");
        assert!(dormant_prunes > 10, "most prunes should bypass metadata");
    }

    #[test]
    fn retries_with_growing_backoff() {
        let data = uniform(50_000);
        let zm = StaticZonemap::build(&data, 256);
        let mut act = Activated::new(zm, data.len(), fast_config(), CostModel::default());
        let mut probed_at: Vec<u64> = Vec::new();
        for q in 0..400u64 {
            let lo = (q as i64 * 997) % 900_000;
            let out = act.prune(&RangePredicate::between(lo, lo + 10_000));
            if out.zones_probed > 0 {
                probed_at.push(q);
            }
        }
        assert!(act.naps() >= 2, "retrials should re-fail on uniform data");
        // Gaps between active bursts should grow (exponential backoff).
        let gaps: Vec<u64> = probed_at
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|&g| g > 1)
            .collect();
        assert!(!gaps.is_empty());
        assert!(gaps.last().expect("has gaps") >= gaps.first().expect("has gaps"));
    }

    #[test]
    fn answers_stay_sound_across_states() {
        let data = uniform(20_000);
        let zm = StaticZonemap::build(&data, 128);
        let mut act = Activated::new(zm, data.len(), fast_config(), CostModel::default());
        for q in 0..60 {
            let lo = (q * 7919) % 900_000;
            let pred = RangePredicate::between(lo, lo + 50_000);
            let out = act.prune(&pred);
            for (i, &v) in data.iter().enumerate() {
                if pred.matches(v) {
                    assert!(
                        out.must_scan.contains(i) || out.full_match.contains(i),
                        "row {i} lost at query {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_keeps_inner_fresh_while_dormant() {
        let mut data = uniform(20_000);
        let zm = StaticZonemap::build(&data, 128);
        let mut act = Activated::new(zm, data.len(), fast_config(), CostModel::default());
        // Drive it dormant.
        for q in 0..20 {
            let lo = (q * 997) % 900_000;
            act.prune(&RangePredicate::between(lo, lo + 10_000));
        }
        assert!(!act.is_active());
        let appended: Vec<i64> = (0..5000).collect();
        data.extend_from_slice(&appended);
        act.on_append(&appended, &data);
        // Dormant prune must cover the appended rows too.
        let out = act.prune(&RangePredicate::all());
        assert_eq!(out.rows_to_scan() + out.rows_full_match(), data.len());
    }

    #[test]
    fn name_and_events() {
        let data: Vec<i64> = (0..1000).collect();
        let act = Activated::with_defaults(StaticZonemap::build(&data, 64), data.len());
        assert!(SkippingIndex::name(&act).starts_with("activated(static-zonemap"));
        assert_eq!(act.adapt_events(), 0);
        assert!(act.inner().num_zones() > 0);
    }
}

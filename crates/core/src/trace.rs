//! Adaptation event traces.
//!
//! The original SIGMOD demo visualised zone boundaries evolving as queries
//! arrived. The trace captures the same information programmatically: every
//! structural change the adaptive zonemap makes, stamped with the query
//! sequence number that triggered it.

use ads_storage::RowRange;

/// One structural change to an adaptive zonemap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptEvent {
    /// Zone metadata materialised for the first time.
    Built {
        /// The zone's row range.
        range: RowRange,
    },
    /// A coarse zone was split into finer zones.
    Split {
        /// The original zone's row range.
        range: RowRange,
        /// Number of resulting zones.
        parts: usize,
    },
    /// Adjacent low-value zones were merged into one.
    Merged {
        /// The merged zone's row range.
        range: RowRange,
        /// Number of zones merged away.
        parts: usize,
    },
    /// Metadata for a region was retired; scans bypass it entirely.
    Deactivated {
        /// The dead region's row range.
        range: RowRange,
    },
    /// A dead region was given another chance after a backoff period.
    Revived {
        /// The revived region's row range.
        range: RowRange,
    },
    /// A secondary value mask was attached to a zone.
    MaskBuilt {
        /// The zone's row range.
        range: RowRange,
    },
    /// A hot zone was promoted to the reorganized (sorted/cracked) layout.
    Promoted {
        /// The zone's row range.
        range: RowRange,
    },
    /// A reorganized zone was demoted back to the flat layout.
    Demoted {
        /// The zone's row range.
        range: RowRange,
    },
    /// A metadata tier (bloom sketch or imprints) was built over a zone.
    TierBuilt {
        /// The zone's row range.
        range: RowRange,
        /// Tier kind label ("bloom" or "imprint").
        kind: &'static str,
    },
    /// A zone's metadata tier was dropped by the feedback policy.
    TierDropped {
        /// The zone's row range.
        range: RowRange,
    },
}

impl AdaptEvent {
    /// Short kind label for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaptEvent::Built { .. } => "built",
            AdaptEvent::Split { .. } => "split",
            AdaptEvent::Merged { .. } => "merged",
            AdaptEvent::Deactivated { .. } => "deactivated",
            AdaptEvent::Revived { .. } => "revived",
            AdaptEvent::MaskBuilt { .. } => "mask-built",
            AdaptEvent::Promoted { .. } => "promoted",
            AdaptEvent::Demoted { .. } => "demoted",
            AdaptEvent::TierBuilt { .. } => "tier-built",
            AdaptEvent::TierDropped { .. } => "tier-dropped",
        }
    }
}

/// A bounded trace of adaptation events plus lifetime counters.
///
/// The ring keeps the most recent `capacity` events for inspection; the
/// counters are exact over the whole lifetime regardless of ring size.
#[derive(Debug, Clone)]
pub struct AdaptTrace {
    events: Vec<(u64, AdaptEvent)>,
    capacity: usize,
    head: usize,
    /// Total events of each kind: built, split, merged, deactivated,
    /// revived, mask-built, promoted, demoted, tier-built, tier-dropped.
    counts: [u64; 10],
}

impl AdaptTrace {
    /// Creates a trace retaining at most `capacity` recent events.
    pub fn new(capacity: usize) -> Self {
        AdaptTrace {
            events: Vec::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            head: 0,
            counts: [0; 10],
        }
    }

    /// Records `event` as caused by query number `query_seq`.
    pub fn record(&mut self, query_seq: u64, event: AdaptEvent) {
        let idx = match event {
            AdaptEvent::Built { .. } => 0,
            AdaptEvent::Split { .. } => 1,
            AdaptEvent::Merged { .. } => 2,
            AdaptEvent::Deactivated { .. } => 3,
            AdaptEvent::Revived { .. } => 4,
            AdaptEvent::MaskBuilt { .. } => 5,
            AdaptEvent::Promoted { .. } => 6,
            AdaptEvent::Demoted { .. } => 7,
            AdaptEvent::TierBuilt { .. } => 8,
            AdaptEvent::TierDropped { .. } => 9,
        };
        self.counts[idx] += 1;
        if self.events.len() < self.capacity {
            self.events.push((query_seq, event));
        } else {
            self.events[self.head] = (query_seq, event);
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Recent events, oldest first.
    pub fn recent(&self) -> Vec<&(u64, AdaptEvent)> {
        let (wrapped, fresh) = self.events.split_at(self.head);
        fresh.iter().chain(wrapped.iter()).collect()
    }

    /// Lifetime totals.
    pub fn totals(&self) -> TraceTotals {
        TraceTotals {
            built: self.counts[0],
            split: self.counts[1],
            merged: self.counts[2],
            deactivated: self.counts[3],
            revived: self.counts[4],
            mask_built: self.counts[5],
            promoted: self.counts[6],
            demoted: self.counts[7],
            tier_built: self.counts[8],
            tier_dropped: self.counts[9],
        }
    }

    /// Total events of all kinds over the lifetime.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Lifetime event totals by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceTotals {
    /// Zones materialised.
    pub built: u64,
    /// Split operations.
    pub split: u64,
    /// Merge operations.
    pub merged: u64,
    /// Deactivations.
    pub deactivated: u64,
    /// Revivals.
    pub revived: u64,
    /// Secondary masks attached.
    pub mask_built: u64,
    /// Zones promoted to the reorganized layout.
    pub promoted: u64,
    /// Zones demoted back to the flat layout.
    pub demoted: u64,
    /// Metadata tiers built over zones.
    pub tier_built: u64,
    /// Metadata tiers dropped by the feedback policy.
    pub tier_dropped: u64,
}

impl std::fmt::Display for TraceTotals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "built={} split={} merged={} deactivated={} revived={} masks={} promoted={} \
             demoted={} tiers={} tiers_dropped={}",
            self.built,
            self.split,
            self.merged,
            self.deactivated,
            self.revived,
            self.mask_built,
            self.promoted,
            self.demoted,
            self.tier_built,
            self.tier_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: usize) -> AdaptEvent {
        AdaptEvent::Built {
            range: RowRange::new(start, start + 10),
        }
    }

    #[test]
    fn records_and_counts() {
        let mut t = AdaptTrace::new(8);
        t.record(1, ev(0));
        t.record(
            2,
            AdaptEvent::Split {
                range: RowRange::new(0, 10),
                parts: 2,
            },
        );
        let totals = t.totals();
        assert_eq!(totals.built, 1);
        assert_eq!(totals.split, 1);
        assert_eq!(t.total_events(), 2);
    }

    #[test]
    fn ring_keeps_recent_counts_exact() {
        let mut t = AdaptTrace::new(3);
        for i in 0..10 {
            t.record(i, ev(i as usize * 10));
        }
        assert_eq!(t.totals().built, 10);
        let recent = t.recent();
        assert_eq!(recent.len(), 3);
        // Oldest-first, holding the last three events (7, 8, 9).
        assert_eq!(recent[0].0, 7);
        assert_eq!(recent[2].0, 9);
    }

    #[test]
    fn recent_before_wrap_is_in_order() {
        let mut t = AdaptTrace::new(10);
        t.record(1, ev(0));
        t.record(2, ev(10));
        let recent = t.recent();
        assert_eq!(recent[0].0, 1);
        assert_eq!(recent[1].0, 2);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ev(0).kind(), "built");
        assert_eq!(
            AdaptEvent::Deactivated {
                range: RowRange::new(0, 1)
            }
            .kind(),
            "deactivated"
        );
    }

    #[test]
    fn totals_display() {
        let mut t = AdaptTrace::new(4);
        t.record(0, ev(0));
        assert!(t.totals().to_string().contains("built=1"));
    }
}

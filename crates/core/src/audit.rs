//! Shadow-oracle prune auditor (compiled only with the `audit` feature).
//!
//! Data skipping has one catastrophic failure mode: a **false skip** — a
//! zone excluded by metadata that actually holds a qualifying row. Every
//! other bug degrades performance; a false skip silently returns wrong
//! answers. Static analysis (ads-lint) proves the *protocols* around
//! metadata publication are followed; this module checks the *decisions*
//! themselves at runtime: after a prune, [`verify_outcome`] recomputes
//! ground truth row by row against the base data and panics the process
//! on the first qualifying live row the outcome excluded, reporting the
//! zone, the predicate, and the prune's per-zone decision trace.
//!
//! The trace side lives in [`PruneOutcome::audit_trace`]: every prune
//! path records one [`AuditDecision`] per zone it resolves (label
//! vocabulary: `skip:bounds`, `skip:mask`, `skip:bloom`, `skip:imprint`,
//! `tier-units`, `scan`, `scan:unbuilt`, `full:bounds`, `positional`),
//! so a violation names the exact decision that excluded the row rather
//! than just the row. Without the feature both the field and the
//! recording calls compile to nothing.
//!
//! The auditor is wired into the scan executor
//! (`scan_pruned_with_deletes`) and the multi-column conjunction path,
//! so building the workspace with `--features audit` turns every
//! existing test — unit, property, and stress — into a false-skip hunt
//! at zero test-code cost. `ads-audit` (in `crates/engine`) sweeps
//! random seeds through the same hook.

use crate::outcome::PruneOutcome;
use crate::predicate::RangePredicate;
use ads_storage::{DataValue, DeleteVector, RangeSet, ReorgZone, RowRange};

/// One per-zone prune decision, recorded for the auditor's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditDecision {
    /// The zone's row range, in the outcome's scan coordinates.
    pub zone: RowRange,
    /// What the prune decided (`skip:bounds`, `scan`, `full:bounds`, …).
    pub action: &'static str,
}

/// Cross-checks one prune outcome against ground truth, panicking on any
/// soundness violation.
///
/// `target` is the column in the outcome's scan coordinates; `live`
/// masks tombstoned rows (`None` = all rows live); `within` restricts
/// the check to rows still in play (the conjunction path prunes within
/// the surviving candidate set — rows outside it are excluded by
/// *earlier* conjuncts, not by this outcome). `source` names the call
/// site for the abort message.
///
/// Three checks, all against a per-row recompute:
///
/// 1. **No false skips**: every live in-scope row satisfying `pred`
///    lies in `must_scan` ∪ `full_match` ∪ a reorg unit's zone.
/// 2. **Full-match purity**: every live in-scope row of `full_match`
///    satisfies `pred`.
/// 3. **Positional soundness**: within a reorg unit, every `full`-span
///    view position satisfies `pred`, and no live position outside
///    `full` ∪ `edges` does (those rows are claimed resolved without a
///    scan).
pub fn verify_outcome<T: DataValue>(
    target: &[T],
    live: Option<&DeleteVector>,
    pred: &RangePredicate<T>,
    outcome: &PruneOutcome,
    within: Option<&RangeSet>,
    source: &str,
) {
    let in_scope = |row: usize| within.is_none_or(|w| w.contains(row));
    let is_live = |row: usize| live.is_none_or(|dv| !dv.is_deleted(row));

    // Check 1: no false skips. Walk the complement of the outcome's
    // coverage; any live qualifying row there was wrongly excluded.
    let mut covered = outcome.must_scan.union(&outcome.full_match);
    for ru in &outcome.reorg_units {
        let mut zone = RangeSet::new();
        zone.push_span(ru.zone.start, ru.zone.end);
        covered = covered.union(&zone);
    }
    for gap in covered.complement(target.len()).ranges() {
        for (off, &v) in target[gap.start..gap.end].iter().enumerate() {
            let row = gap.start + off;
            if in_scope(row) && is_live(row) && pred.matches(v) {
                abort_false_skip(outcome, pred, row, v, source);
            }
        }
    }

    // Check 2: full-match purity.
    for r in outcome.full_match.ranges() {
        for (off, &v) in target[r.start..r.end].iter().enumerate() {
            let row = r.start + off;
            if in_scope(row) && is_live(row) && !pred.matches(v) {
                panic!(
                    "shadow-oracle VIOLATION [{source}]: row {row} (value {v:?}) \
                     does not satisfy predicate [{:?}, {:?}] but lies in a \
                     full_match range — metadata over-claimed containment; \
                     {}",
                    pred.lo,
                    pred.hi,
                    trace_for(outcome, row)
                );
            }
        }
    }

    // Check 3: positional soundness of reorg units.
    for ru in &outcome.reorg_units {
        let Some(payload) = ru.payload.downcast_ref::<ReorgZone<T>>() else {
            panic!(
                "shadow-oracle VIOLATION [{source}]: reorg unit over zone \
                 {:?} carries a payload of the wrong value type",
                ru.zone
            );
        };
        let values = payload.values();
        let rowids = payload.rowids();
        let in_edges = |pos: usize| ru.edges.iter().flatten().any(|e| e.contains(pos));
        for pos in 0..values.len() {
            // narrowing: rowids are u32 by column construction (rows <= u32::MAX).
            let base_row = rowids[pos] as usize;
            let qualifies = pred.matches(values[pos]);
            if ru.full.contains(pos) {
                if !qualifies {
                    panic!(
                        "shadow-oracle VIOLATION [{source}]: view position \
                         {pos} (base row {base_row}, value {:?}) lies in the \
                         positional full span of zone {:?} but does not \
                         satisfy predicate [{:?}, {:?}]",
                        values[pos], ru.zone, pred.lo, pred.hi
                    );
                }
            } else if !in_edges(pos) && qualifies && is_live(base_row) && in_scope(base_row) {
                abort_false_skip(outcome, pred, base_row, values[pos], source);
            }
        }
    }
}

/// The abort path of the auditor: a qualifying live row the prune
/// excluded. Reports the row, the predicate, and the decision that
/// covered (or failed to cover) the row's zone.
fn abort_false_skip<T: DataValue>(
    outcome: &PruneOutcome,
    pred: &RangePredicate<T>,
    row: usize,
    value: T,
    source: &str,
) -> ! {
    panic!(
        "shadow-oracle FALSE SKIP [{source}]: row {row} (value {value:?}) \
         satisfies predicate [{:?}, {:?}] but is covered by neither \
         must_scan, full_match, nor a reorg unit; {}",
        pred.lo,
        pred.hi,
        trace_for(outcome, row)
    );
}

/// Renders the decision trace entry covering `row` (plus a count of all
/// traced decisions) for an abort message.
fn trace_for(outcome: &PruneOutcome, row: usize) -> String {
    let decisions = &outcome.audit_trace;
    match decisions.iter().find(|d| d.zone.contains(row)) {
        Some(d) => format!(
            "prune decision for zone [{}, {}): `{}` ({} decision(s) traced)",
            d.zone.start,
            d.zone.end,
            d.action,
            decisions.len()
        ),
        None if decisions.is_empty() => "no decision trace (index does not record one)".to_string(),
        None => format!(
            "no decision covers this row ({} decision(s) traced)",
            decisions.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::PruneOutcome;

    fn data() -> Vec<i64> {
        (0..100).collect()
    }

    #[test]
    fn complete_outcome_passes() {
        let d = data();
        let outcome = PruneOutcome::scan_all(d.len());
        verify_outcome(
            &d,
            None,
            &RangePredicate::between(10, 20),
            &outcome,
            None,
            "test",
        );
    }

    #[test]
    fn sound_skip_passes() {
        let d = data();
        let mut outcome = PruneOutcome::default();
        // Rows 0..50 scanned; 50..100 skipped — sound for pred <= 30.
        outcome.must_scan.push_span(0, 50);
        outcome.record_decision(RowRange::new(0, 50), "scan");
        outcome.record_decision(RowRange::new(50, 100), "skip:bounds");
        verify_outcome(
            &d,
            None,
            &RangePredicate::between(10, 30),
            &outcome,
            None,
            "test",
        );
    }

    #[test]
    #[should_panic(expected = "FALSE SKIP")]
    fn false_skip_aborts_with_decision() {
        let d = data();
        let mut outcome = PruneOutcome::default();
        // Rows 60..70 qualify but only 0..50 is covered.
        outcome.must_scan.push_span(0, 50);
        outcome.record_decision(RowRange::new(50, 100), "skip:bounds");
        verify_outcome(
            &d,
            None,
            &RangePredicate::between(60, 69),
            &outcome,
            None,
            "test",
        );
    }

    #[test]
    fn deleted_rows_may_be_skipped() {
        let d = data();
        let mut live = DeleteVector::new(d.len(), 0);
        for row in 60..70 {
            live.delete(row);
        }
        let mut outcome = PruneOutcome::default();
        outcome.must_scan.push_span(0, 50);
        // Qualifying rows 60..69 are all tombstoned: skipping them is sound.
        verify_outcome(
            &d,
            Some(&live),
            &RangePredicate::between(60, 69),
            &outcome,
            None,
            "test",
        );
    }

    #[test]
    fn out_of_scope_rows_may_be_skipped() {
        let d = data();
        let mut outcome = PruneOutcome::default();
        outcome.must_scan.push_span(0, 50);
        let mut within = RangeSet::new();
        within.push_span(0, 50);
        // Rows 60..69 qualify but earlier conjuncts already excluded them.
        verify_outcome(
            &d,
            None,
            &RangePredicate::between(60, 69),
            &outcome,
            Some(&within),
            "test",
        );
    }

    #[test]
    #[should_panic(expected = "over-claimed containment")]
    fn impure_full_match_aborts() {
        let d = data();
        let mut outcome = PruneOutcome::default();
        outcome.full_match.push_span(0, 50);
        verify_outcome(
            &d,
            None,
            &RangePredicate::between(10, 20),
            &outcome,
            None,
            "test",
        );
    }
}

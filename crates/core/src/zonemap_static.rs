//! Static zonemaps: fixed-width `(min, max)` metadata built eagerly.
//!
//! This is the classic structure (Moerkotte's small materialized aggregates;
//! the zone maps of Netezza / ORC / Parquet): one metadata entry per
//! `zone_rows` consecutive rows, built up front, never reorganised. It is
//! the paper's primary comparison point — excellent on sorted or clustered
//! data, and a net loss on random data because every query pays the probe
//! cost with no skips to show for it.

use crate::index::SkippingIndex;
use crate::outcome::PruneOutcome;
use crate::predicate::RangePredicate;
use crate::stats::PruneStats;
use ads_storage::{scan, DataValue, RangeSet, RowRange};

/// A fixed-granularity, eagerly-built zonemap.
///
/// ```
/// use ads_core::{StaticZonemap, SkippingIndex, RangePredicate};
/// let data: Vec<i64> = (0..10_000).collect();
/// let mut zm = StaticZonemap::build(&data, 1000);
/// let out = zm.prune(&RangePredicate::between(2500, 2600));
/// assert_eq!(out.zones_skipped, 9); // sorted data: one candidate zone
/// assert_eq!(out.rows_to_scan(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct StaticZonemap<T: DataValue> {
    zone_rows: usize,
    /// Zone minima, structure-of-arrays: zone `z` covers rows
    /// `[z * zone_rows, min((z+1) * zone_rows, len))`. Keeping the bounds
    /// in two dense arrays (rather than `Vec<(T, T)>`) streams the probe
    /// loop over exactly the bytes it compares.
    mins: Vec<T>,
    /// Zone maxima, parallel to `mins`.
    maxs: Vec<T>,
    len: usize,
    /// Lifetime zone probes, for planner skip-rate estimates. The static
    /// structure never adapts on these; they only summarise history.
    total_probes: u64,
    /// Lifetime zones skipped.
    total_skips: u64,
    /// Queries served.
    queries: u64,
}

impl<T: DataValue> StaticZonemap<T> {
    /// Builds the full zonemap over `data` with `zone_rows`-row zones.
    ///
    /// # Panics
    /// Panics if `zone_rows == 0`.
    pub fn build(data: &[T], zone_rows: usize) -> Self {
        assert!(zone_rows > 0, "zone_rows must be positive");
        let mut zm = StaticZonemap {
            zone_rows,
            mins: Vec::with_capacity(data.len().div_ceil(zone_rows)),
            maxs: Vec::with_capacity(data.len().div_ceil(zone_rows)),
            len: data.len(),
            total_probes: 0,
            total_skips: 0,
            queries: 0,
        };
        for c in data.chunks(zone_rows) {
            // invariant: chunks() never yields an empty slice.
            // live: zone bounds built over all rows (tombstones
            // included) are conservatively wide — sound for skipping.
            let (min, max) = scan::min_max(c).expect("chunks are non-empty");
            zm.mins.push(min);
            zm.maxs.push(max);
        }
        zm
    }

    /// Rows per zone.
    pub fn zone_rows(&self) -> usize {
        self.zone_rows
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.mins.len()
    }

    /// `(min, max)` metadata of zone `z`.
    pub fn zone_bounds(&self, z: usize) -> (T, T) {
        (self.mins[z], self.maxs[z])
    }

    /// Row range of zone `z`.
    fn zone_span(&self, z: usize) -> (usize, usize) {
        let start = z * self.zone_rows;
        (start, (start + self.zone_rows).min(self.len))
    }
}

impl<T: DataValue> SkippingIndex<T> for StaticZonemap<T> {
    fn name(&self) -> String {
        format!("static-zonemap({})", self.zone_rows)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let mut out = PruneOutcome::for_prune();
        out.zones_probed = self.mins.len();
        for (z, (&min, &max)) in self.mins.iter().zip(&self.maxs).enumerate() {
            let (start, end) = self.zone_span(z);
            if !pred.overlaps(min, max) {
                out.zones_skipped += 1;
                out.record_decision(RowRange::new(start, end), "skip:bounds");
            } else if pred.contains_zone(min, max) {
                out.full_match.push_span(start, end);
                out.record_decision(RowRange::new(start, end), "full:bounds");
            } else {
                out.must_scan.push_span(start, end);
                out.record_decision(RowRange::new(start, end), "scan");
            }
        }
        self.queries += 1;
        self.total_probes += out.zones_probed as u64;
        self.total_skips += out.zones_skipped as u64;
        out
    }

    fn prune_stats(&self) -> Option<PruneStats> {
        // Optimistic before any history: a never-probed map estimates 1.0
        // so planners will try it at least once.
        let est = if self.total_probes == 0 {
            1.0
        } else {
            self.total_skips as f64 / self.total_probes as f64
        };
        Some(PruneStats {
            probe_entries: self.mins.len(),
            est_skip_fraction: est,
            queries_observed: self.queries,
        })
    }

    fn prune_within(&mut self, pred: &RangePredicate<T>, alive: &RangeSet) -> PruneOutcome {
        let mut out = PruneOutcome::for_prune();
        if self.mins.is_empty() {
            self.queries += 1;
            return out;
        }
        let mut prev_zone = usize::MAX;
        for ar in alive.ranges() {
            let first = ar.start / self.zone_rows;
            let last = (ar.end - 1) / self.zone_rows;
            for z in first..=last.min(self.mins.len().saturating_sub(1)) {
                let (zs, ze) = self.zone_span(z);
                let frag_start = zs.max(ar.start);
                let frag_end = ze.min(ar.end);
                let fresh = z != prev_zone;
                prev_zone = z;
                if fresh {
                    out.zones_probed += 1;
                }
                let (min, max) = (self.mins[z], self.maxs[z]);
                if !pred.overlaps(min, max) {
                    if fresh {
                        out.zones_skipped += 1;
                    }
                    out.record_decision(RowRange::new(frag_start, frag_end), "skip:bounds");
                } else if pred.contains_zone(min, max) {
                    out.full_match.push_span(frag_start, frag_end);
                    out.record_decision(RowRange::new(frag_start, frag_end), "full:bounds");
                } else {
                    out.must_scan.push_span(frag_start, frag_end);
                    out.record_decision(RowRange::new(frag_start, frag_end), "scan");
                }
            }
        }
        self.queries += 1;
        self.total_probes += out.zones_probed as u64;
        self.total_skips += out.zones_skipped as u64;
        out
    }

    fn on_append(&mut self, _appended: &[T], base: &[T]) {
        // The last zone may have been partial; rebuild it from the base
        // column, then extend with zones over the genuinely new rows.
        if !self.len.is_multiple_of(self.zone_rows) {
            let last = self.mins.len() - 1;
            let start = last * self.zone_rows;
            let end = (start + self.zone_rows).min(base.len());
            // invariant: start < base.len() here, so the partial zone
            // slice is non-empty.
            // live: bounds over all rows (tombstones included) are
            // conservatively wide — sound for skipping.
            let (min, max) = scan::min_max(&base[start..end]).expect("partial zone is non-empty");
            self.mins[last] = min;
            self.maxs[last] = max;
        }
        let covered = self.mins.len() * self.zone_rows;
        if base.len() > covered {
            for c in base[covered..].chunks(self.zone_rows) {
                // invariant: chunks() never yields an empty slice.
                // live: same conservative tombstone-inclusive bounds.
                let (min, max) = scan::min_max(c).expect("chunks are non-empty");
                self.mins.push(min);
                self.maxs.push(max);
            }
        }
        self.len = base.len();
    }

    fn metadata_bytes(&self) -> usize {
        (self.mins.capacity() + self.maxs.capacity()) * std::mem::size_of::<T>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_data(n: usize) -> Vec<i64> {
        (0..n as i64).collect()
    }

    #[test]
    fn build_zone_metadata_is_exact() {
        let data = sorted_data(100);
        let zm = StaticZonemap::build(&data, 32);
        assert_eq!(zm.num_zones(), 4);
        assert_eq!(zm.zone_bounds(0), (0, 31));
        assert_eq!(zm.zone_bounds(3), (96, 99)); // partial last zone
    }

    #[test]
    #[should_panic(expected = "zone_rows must be positive")]
    fn zero_zone_rows_rejected() {
        StaticZonemap::build(&[1i64], 0);
    }

    #[test]
    fn prune_sorted_skips_nonoverlapping() {
        let data = sorted_data(1000);
        let mut zm = StaticZonemap::build(&data, 100);
        let out = zm.prune(&RangePredicate::between(250, 260));
        assert_eq!(out.zones_probed, 10);
        assert_eq!(out.zones_skipped, 9);
        assert_eq!(out.rows_to_scan(), 100);
        assert!(out.must_scan.contains(255));
    }

    #[test]
    fn prune_detects_full_match_zones() {
        let data = sorted_data(1000);
        let mut zm = StaticZonemap::build(&data, 100);
        // Predicate fully contains zones [200,300) and [300,400), and
        // partially overlaps zones [100,200) and [400,500).
        let out = zm.prune(&RangePredicate::between(150, 450));
        assert_eq!(out.rows_full_match(), 200);
        assert_eq!(out.rows_to_scan(), 200);
        assert_eq!(out.zones_skipped, 6);
    }

    #[test]
    fn prune_random_data_skips_nothing() {
        // Values alternate across the whole domain: every zone spans it.
        let data: Vec<i64> = (0..1000)
            .map(|i| if i % 2 == 0 { 0 } else { 999 })
            .collect();
        let mut zm = StaticZonemap::build(&data, 100);
        let out = zm.prune(&RangePredicate::between(400, 500));
        assert_eq!(out.zones_skipped, 0);
        assert_eq!(out.rows_to_scan(), 1000);
        assert_eq!(out.zones_probed, 10);
    }

    #[test]
    fn prune_soundness_on_clustered_data() {
        let mut data = vec![5i64; 300];
        data.extend(vec![50i64; 300]);
        data.extend(vec![500i64; 400]);
        let mut zm = StaticZonemap::build(&data, 128);
        let pred = RangePredicate::between(40, 60);
        let out = zm.prune(&pred);
        for (i, &v) in data.iter().enumerate() {
            if pred.matches(v) {
                assert!(
                    out.must_scan.contains(i) || out.full_match.contains(i),
                    "row {i} lost"
                );
            }
        }
    }

    #[test]
    fn append_extends_and_fixes_partial_zone() {
        let mut data = sorted_data(150);
        let mut zm = StaticZonemap::build(&data, 100);
        assert_eq!(zm.num_zones(), 2);
        let appended: Vec<i64> = (150..320).collect();
        data.extend_from_slice(&appended);
        zm.on_append(&appended, &data);
        assert_eq!(zm.num_zones(), 4);
        assert_eq!(zm.zone_bounds(1), (100, 199)); // partial zone repaired
        assert_eq!(zm.zone_bounds(3), (300, 319));
        // Soundness after append.
        let pred = RangePredicate::between(190, 210);
        let out = zm.prune(&pred);
        for (i, &v) in data.iter().enumerate() {
            if pred.matches(v) {
                assert!(out.must_scan.contains(i) || out.full_match.contains(i));
            }
        }
    }

    #[test]
    fn append_aligned_boundary() {
        let mut data = sorted_data(200);
        let mut zm = StaticZonemap::build(&data, 100);
        let appended: Vec<i64> = (200..250).collect();
        data.extend_from_slice(&appended);
        zm.on_append(&appended, &data);
        assert_eq!(zm.num_zones(), 3);
        assert_eq!(zm.zone_bounds(2), (200, 249));
    }

    #[test]
    fn metadata_bytes_scales_with_zone_count() {
        let data = sorted_data(10_000);
        let coarse = StaticZonemap::build(&data, 1000);
        let fine = StaticZonemap::build(&data, 10);
        assert!(fine.metadata_bytes() > coarse.metadata_bytes());
    }

    #[test]
    fn name_includes_granularity() {
        let zm = StaticZonemap::build(&sorted_data(10), 4);
        assert_eq!(SkippingIndex::name(&zm), "static-zonemap(4)");
    }

    #[test]
    fn prune_stats_track_history() {
        let data = sorted_data(1000);
        let mut zm = StaticZonemap::build(&data, 100);
        let s = zm.prune_stats().expect("static maps report stats");
        assert_eq!(s.probe_entries, 10);
        assert_eq!(s.queries_observed, 0);
        assert_eq!(s.est_skip_fraction, 1.0); // optimistic prior
        zm.prune(&RangePredicate::between(250, 260)); // 9 of 10 skip
        let s = zm.prune_stats().expect("static maps report stats");
        assert_eq!(s.queries_observed, 1);
        assert!((s.est_skip_fraction - 0.9).abs() < 1e-12);
    }

    #[test]
    fn prune_within_matches_restricted_full_prune() {
        let data = sorted_data(1000);
        let mut zm = StaticZonemap::build(&data, 100);
        let pred = RangePredicate::between(150, 750);
        let mut alive = RangeSet::new();
        alive.push_span(50, 320);
        alive.push_span(610, 900);
        let restricted = zm.prune_within(&pred, &alive);
        let full = zm.prune(&pred).restrict_to(&alive);
        assert_eq!(restricted.must_scan, full.must_scan);
        assert_eq!(restricted.full_match, full.full_match);
        // Only zones overlapping `alive` were examined.
        assert_eq!(restricted.zones_probed, 7);
        assert!(restricted.zones_probed < full.zones_probed);
    }

    #[test]
    fn prune_within_probes_spanning_zone_once() {
        let data = sorted_data(1000);
        let mut zm = StaticZonemap::build(&data, 500);
        let mut alive = RangeSet::new();
        alive.push_span(0, 100);
        alive.push_span(200, 300); // same zone as the first range
        let out = zm.prune_within(&RangePredicate::all(), &alive);
        assert_eq!(out.zones_probed, 1);
        assert_eq!(out.rows_full_match(), 200);
    }

    #[test]
    fn empty_column() {
        let mut zm = StaticZonemap::build(&[] as &[i64], 64);
        assert_eq!(zm.num_zones(), 0);
        let out = zm.prune(&RangePredicate::all());
        assert_eq!(out.rows_to_scan(), 0);
    }
}

//! Per-zone and whole-index statistics driving adaptation decisions.

/// Exponentially-weighted moving average with fixed smoothing factor.
///
/// Adaptation reacts to the *recent* workload; EWMA forgets old behaviour at
/// a controlled rate so a shifted workload re-trains the structure (E7).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    value: f64,
    alpha: f64,
    primed: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; larger
    /// alpha weights recent samples more.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma {
            value: 0.0,
            alpha,
            primed: false,
        }
    }

    /// Feeds a sample.
    pub fn update(&mut self, sample: f64) {
        if self.primed {
            self.value += self.alpha * (sample - self.value);
        } else {
            self.value = sample;
            self.primed = true;
        }
    }

    /// Current smoothed value; 0.0 before any sample.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// True once at least one sample has arrived.
    pub fn is_primed(&self) -> bool {
        self.primed
    }
}

/// Counters for one zone of an adaptive zonemap.
#[derive(Debug, Clone, Copy)]
pub struct ZoneStats {
    /// Metadata examinations (every prune that considered this zone).
    pub probes: u32,
    /// Probes that excluded the zone.
    pub skips: u32,
    /// Scans through the zone (probe overlapped, zone was read).
    pub scans: u32,
    /// Scans that yielded a low qualifying fraction — evidence the zone's
    /// metadata is too coarse ("false-positive" scans that a finer zone
    /// might have skipped).
    pub wasted_scans: u32,
    /// Recent qualifying fraction of scans through this zone.
    pub selectivity: Ewma,
}

impl ZoneStats {
    /// Fresh counters. `alpha` is the EWMA smoothing factor.
    pub fn new(alpha: f64) -> Self {
        ZoneStats {
            probes: 0,
            skips: 0,
            scans: 0,
            wasted_scans: 0,
            selectivity: Ewma::new(alpha),
        }
    }

    /// Fraction of probes that resulted in a skip; 0.0 before any probe.
    pub fn skip_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.skips as f64 / self.probes as f64
        }
    }

    /// Records a probe that skipped the zone.
    pub fn record_skip(&mut self) {
        self.probes += 1;
        self.skips += 1;
    }

    /// Records `n` skipping probes at once — the bulk form used when the
    /// prune plane flushes deferred skip counts.
    pub fn record_skips(&mut self, n: u32) {
        self.probes += n;
        self.skips += n;
    }

    /// [`ZoneStats::skip_rate`] as if `pending` additional skipping probes
    /// had already been recorded — lets readers see through the prune
    /// plane's deferred skip counter without flushing it.
    pub fn skip_rate_with_pending(&self, pending: u32) -> f64 {
        let probes = self.probes + pending;
        if probes == 0 {
            0.0
        } else {
            (self.skips + pending) as f64 / probes as f64
        }
    }

    /// Records a probe that could not skip the zone.
    pub fn record_no_skip(&mut self) {
        self.probes += 1;
    }

    /// Records a completed scan through the zone with the observed
    /// qualifying fraction; flags it wasted when below `low_yield`.
    pub fn record_scan(&mut self, qualifying_fraction: f64, low_yield: f64) {
        self.scans += 1;
        self.selectivity.update(qualifying_fraction);
        if qualifying_fraction < low_yield {
            self.wasted_scans += 1;
        } else {
            // A productive scan resets the waste streak: splitting helps
            // only when the zone *keeps* being read for nothing.
            self.wasted_scans = 0;
        }
    }

    /// Resets counters (after a structural change invalidates history).
    pub fn reset(&mut self) {
        let alpha = self.selectivity.alpha;
        *self = ZoneStats::new(alpha);
    }
}

/// Summary an index exposes *before* a probe so a planner can decide
/// whether consulting its metadata is worth the cost.
///
/// `est_skip_fraction` is the index's own estimate of the fraction of rows
/// a typical probe excludes; indexes without history report optimistically
/// (1.0 for zones never probed) so cold structures still get probed and
/// can start learning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneStats {
    /// Metadata entries a full probe examines (zone count).
    pub probe_entries: usize,
    /// Estimated fraction of rows a probe excludes, in `[0, 1]`.
    pub est_skip_fraction: f64,
    /// Queries this index has already served — 0 means the estimate is a
    /// pure prior.
    pub queries_observed: u64,
}

/// Whole-index counters reported by experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexStats {
    /// Total zone-metadata probes across all queries.
    pub total_probes: u64,
    /// Total zones skipped.
    pub total_skips: u64,
    /// Total rows the scans actually touched.
    pub rows_scanned: u64,
    /// Total rows answered from metadata alone (full-match zones).
    pub rows_full_match: u64,
    /// Queries processed.
    pub queries: u64,
}

impl IndexStats {
    /// Overall skip rate across all probes.
    pub fn skip_rate(&self) -> f64 {
        if self.total_probes == 0 {
            0.0
        } else {
            self.total_skips as f64 / self.total_probes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_primes() {
        let mut e = Ewma::new(0.3);
        assert!(!e.is_primed());
        e.update(10.0);
        assert_eq!(e.value(), 10.0);
        assert!(e.is_primed());
    }

    #[test]
    fn ewma_converges_toward_samples() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..20 {
            e.update(1.0);
        }
        assert!(e.value() > 0.99);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn zone_stats_skip_rate() {
        let mut z = ZoneStats::new(0.3);
        assert_eq!(z.skip_rate(), 0.0);
        z.record_skip();
        z.record_no_skip();
        z.record_skip();
        assert!((z.skip_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wasted_scan_streak_resets_on_productive_scan() {
        let mut z = ZoneStats::new(0.3);
        z.record_scan(0.0, 0.05);
        z.record_scan(0.01, 0.05);
        assert_eq!(z.wasted_scans, 2);
        z.record_scan(0.5, 0.05);
        assert_eq!(z.wasted_scans, 0);
    }

    #[test]
    fn reset_clears_counters_keeps_alpha() {
        let mut z = ZoneStats::new(0.25);
        z.record_skip();
        z.record_scan(0.9, 0.05);
        z.reset();
        assert_eq!(z.probes, 0);
        assert_eq!(z.scans, 0);
        assert!(!z.selectivity.is_primed());
    }

    #[test]
    fn index_stats_skip_rate() {
        let s = IndexStats {
            total_probes: 10,
            total_skips: 4,
            ..Default::default()
        };
        assert!((s.skip_rate() - 0.4).abs() < 1e-12);
        assert_eq!(IndexStats::default().skip_rate(), 0.0);
    }
}

//! Adaptive zonemaps: the paper's concrete instance of adaptive data
//! skipping.
//!
//! See [`AdaptiveZonemap`] for the structure and [`AdaptiveConfig`] for the
//! policy knobs and ablation presets.

mod config;
mod maintenance;
mod plane;
mod reorg;
mod sharded;
mod tier;
mod zone;
mod zonemap;

pub use config::{AdaptiveConfig, TierMode};
pub use reorg::{ReorgReport, ReorgStats};
pub use sharded::ShardedZonemap;
pub use tier::{TierReport, TierStats};
pub use zone::{AdaptiveZone, TierTelemetry, ZoneLayout, ZoneState, ZoneTier};
pub use zonemap::AdaptiveZonemap;

#[cfg(test)]
mod tests;

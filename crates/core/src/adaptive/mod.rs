//! Adaptive zonemaps: the paper's concrete instance of adaptive data
//! skipping.
//!
//! See [`AdaptiveZonemap`] for the structure and [`AdaptiveConfig`] for the
//! policy knobs and ablation presets.

mod config;
mod maintenance;
mod plane;
mod reorg;
mod sharded;
mod zone;
mod zonemap;

pub use config::AdaptiveConfig;
pub use reorg::{ReorgReport, ReorgStats};
pub use sharded::ShardedZonemap;
pub use zone::{AdaptiveZone, ZoneLayout, ZoneState};
pub use zonemap::AdaptiveZonemap;

#[cfg(test)]
mod tests;

//! Structural maintenance: coarsening, deactivation, and revival.
//!
//! These are the techniques that let adaptive zonemaps *back out* of
//! metadata that is not paying for itself — the half of the framework that
//! rescues the adversarial case (random data) the abstract highlights,
//! where static zonemaps "significantly decrease query performance".

use crate::adaptive::zone::{AdaptiveZone, ZoneState};
use crate::adaptive::zonemap::AdaptiveZonemap;
use crate::stats::ZoneStats;
use crate::trace::AdaptEvent;
use ads_storage::{DataValue, RowRange};

impl<T: DataValue> AdaptiveZonemap<T> {
    /// One maintenance pass: merge useless adjacent zones, deactivate
    /// hopeless maximal zones, and coalesce adjacent dead regions.
    pub(crate) fn run_maintenance(&mut self) {
        // Merge/deactivate decisions read probes and skip rates; make the
        // plane's deferred skip counts visible first.
        self.flush_pending_skips();
        // Merge/deactivate leave trace events; coalescing dead zones does
        // not, but it changes the zone count — together the two signals
        // detect whether this pass mutated anything reader-visible.
        let events_before = self.trace.total_events();
        let zones_before = self.zones.len();
        if self.config.enable_merge {
            self.merge_pass();
        }
        if self.config.enable_deactivate {
            self.deactivate_pass();
        }
        // Adjacent dead regions always coalesce: a single entry per dead
        // extent is what makes bypassing them effectively free.
        self.coalesce_dead();
        // Every pass above may renumber or retire zones; one rebuild
        // restores the SoA prune plane's mirroring invariant.
        self.plane.rebuild(&self.zones);
        // epoch: one conditional bump covers all structural passes — the
        // trace-event/zone-count diff is true exactly when a pass changed
        // anything reader-visible; a no-op maintenance tick must NOT bump,
        // or every tick would force a full lane republication.
        if self.trace.total_events() != events_before || self.zones.len() != zones_before {
            self.mutation_epoch += 1;
        }
    }

    /// Merges runs of adjacent Built zones whose metadata never causes
    /// skips, halving (or better) the probe bill for that region.
    ///
    /// epoch: the caller (`run_maintenance`) bumps once when any pass
    /// left trace events — every merge records one, so merges are never
    /// published without a bump.
    fn merge_pass(&mut self) {
        let cfg = &self.config;
        let mergeable = |z: &AdaptiveZone<T>| {
            z.is_built()
                // A reorganized zone's payload covers exactly its row
                // range; merging would orphan it. Demotion happens first.
                && !z.is_reorganized()
                && z.stats.probes >= cfg.merge_after_probes
                && z.stats.skip_rate() <= cfg.merge_max_skip_rate
        };

        let mut merged: Vec<AdaptiveZone<T>> = Vec::with_capacity(self.zones.len());
        let mut events: Vec<(RowRange, usize)> = Vec::new();
        for zone in self.zones.drain(..) {
            let can_extend = match merged.last() {
                Some(prev) => {
                    mergeable(prev)
                        && mergeable(&zone)
                        && prev.len() + zone.len() <= cfg.max_zone_rows
                }
                None => false,
            };
            if can_extend {
                // invariant: can_extend is only true when merged is non-
                // empty.
                let prev = merged.last_mut().expect("checked non-empty");
                let (pmin, pmax, pexact) = match prev.state {
                    ZoneState::Built { min, max, exact } => (min, max, exact),
                    _ => unreachable!("mergeable implies built"),
                };
                let (zmin, zmax, zexact) = match zone.state {
                    ZoneState::Built { min, max, exact } => (min, max, exact),
                    _ => unreachable!("mergeable implies built"),
                };
                let grown = match events.last_mut() {
                    // Extend the in-flight merge event if it is this one.
                    Some((range, parts)) if range.end == prev.end => {
                        range.end = zone.end;
                        *parts += 1;
                        true
                    }
                    _ => false,
                };
                if !grown {
                    events.push((RowRange::new(prev.start, zone.end), 2));
                }
                prev.end = zone.end;
                prev.state = ZoneState::Built {
                    min: pmin.min_total(zmin),
                    max: pmax.max_total(zmax),
                    // Exact bounds over exactly-adjacent ranges stay exact
                    // for the union.
                    exact: pexact && zexact,
                };
                prev.stats = ZoneStats::new(cfg.ewma_alpha);
                prev.deactivations = prev.deactivations.max(zone.deactivations);
                prev.no_resplit = true;
                // Masks describe a single zone's rows; the union needs a
                // fresh one (earned later if the merged zone still wastes
                // scans).
                prev.mask = None;
                // Likewise tiers: a sketch over the old row range would
                // be unsound for the union. The merged zone re-earns one.
                prev.tier = None;
                prev.tier_stats = Default::default();
            } else {
                merged.push(zone);
            }
        }
        self.zones = merged;
        for (range, parts) in events {
            self.trace
                .record(self.query_seq, AdaptEvent::Merged { range, parts });
        }
    }

    /// Retires Built zones that have grown to (near) the size ceiling and
    /// still never skip: their metadata is a strict loss.
    ///
    /// epoch: the caller (`run_maintenance`) bumps once when any pass
    /// left trace events — every deactivation records one.
    fn deactivate_pass(&mut self) {
        let cfg = &self.config;
        let threshold_rows = cfg.max_zone_rows / 2;
        let query_seq = self.query_seq;
        let mut deactivated: Vec<RowRange> = Vec::new();
        for zone in &mut self.zones {
            if zone.is_built()
                // Reorganized zones answer positionally; killing their
                // metadata would strand the payload. Demote-then-retire.
                && !zone.is_reorganized()
                && zone.len() >= threshold_rows
                && zone.stats.probes >= cfg.deactivate_after_probes
                && zone.stats.skip_rate() <= cfg.deactivate_max_skip_rate
            {
                zone.state = ZoneState::Dead {
                    since_query: query_seq,
                };
                zone.deactivations = zone.deactivations.saturating_add(1);
                zone.stats.reset();
                zone.mask = None;
                // A dead zone is never probed; its tier is dead weight.
                zone.tier = None;
                zone.tier_stats = Default::default();
                deactivated.push(zone.range());
            }
        }
        for range in deactivated {
            self.trace
                .record(self.query_seq, AdaptEvent::Deactivated { range });
        }
        self.refresh_revival_clock();
    }

    /// Coalesces adjacent dead zones into single entries.
    ///
    /// epoch: the caller (`run_maintenance`) bumps when the zone count
    /// changed — which is exactly when this pass removed an entry.
    ///
    /// lifecycle: only `Dead` zones are folded together, and
    /// `deactivate_pass` already cleared `tier`/`mask` when it killed
    /// them (a reorganized zone is never deactivated, so `layout` is
    /// `Flat` here by construction — `assert_invariants` checks this).
    fn coalesce_dead(&mut self) {
        let mut i = 0;
        while i + 1 < self.zones.len() {
            if self.zones[i].is_dead() && self.zones[i + 1].is_dead() {
                let next = self.zones.remove(i + 1);
                let prev = &mut self.zones[i];
                prev.end = next.end;
                prev.deactivations = prev.deactivations.max(next.deactivations);
                if let (ZoneState::Dead { since_query: a }, ZoneState::Dead { since_query: b }) =
                    (prev.state, next.state)
                {
                    prev.state = ZoneState::Dead {
                        since_query: a.max(b),
                    };
                }
            } else {
                i += 1;
            }
        }
    }

    /// Replaces every dead zone whose backoff has elapsed with fresh
    /// unbuilt zones at target granularity, giving a shifted workload the
    /// chance to re-earn metadata there.
    pub(crate) fn revive_due_zones(&mut self) {
        self.revive_zones_due_at(self.query_seq);
    }

    /// As [`AdaptiveZonemap::revive_due_zones`], with the dueness clock set
    /// explicitly. The prune prologue passes the just-incremented
    /// `query_seq`; snapshot publication passes `query_seq + 1` so a
    /// published snapshot matches what the next inline query would see
    /// (see `poll_revival`). Returns `true` when any zone was revived.
    pub(crate) fn revive_zones_due_at(&mut self, at_seq: u64) -> bool {
        let Some(base) = self.config.revival_base_queries else {
            self.next_revival_check = u64::MAX;
            return false;
        };
        // Revival renumbers zones and rebuilds the plane, which zeroes
        // the deferred skip counters — bank them first.
        self.flush_pending_skips();
        let due = |z: &AdaptiveZone<T>| match z.state {
            ZoneState::Dead { since_query } => {
                at_seq >= since_query + revival_backoff(base, z.deactivations)
            }
            _ => false,
        };
        if !self.zones.iter().any(due) {
            self.refresh_revival_clock();
            return false;
        }
        let target = self.config.target_zone_rows;
        let alpha = self.config.ewma_alpha;
        let mut rebuilt: Vec<AdaptiveZone<T>> = Vec::with_capacity(self.zones.len());
        let mut revived: Vec<RowRange> = Vec::new();
        for zone in self.zones.drain(..) {
            if due(&zone) {
                revived.push(zone.range());
                let mut start = zone.start;
                while start < zone.end {
                    let end = (start + target).min(zone.end);
                    let mut child = AdaptiveZone::unbuilt(start, end, alpha);
                    child.deactivations = zone.deactivations;
                    rebuilt.push(child);
                    start = end;
                }
            } else {
                rebuilt.push(zone);
            }
        }
        self.zones = rebuilt;
        self.plane.rebuild(&self.zones);
        for range in revived {
            self.trace
                .record(self.query_seq, AdaptEvent::Revived { range });
        }
        self.refresh_revival_clock();
        self.mutation_epoch += 1;
        true
    }

    /// Recomputes the earliest query at which a revival check is needed.
    fn refresh_revival_clock(&mut self) {
        let Some(base) = self.config.revival_base_queries else {
            self.next_revival_check = u64::MAX;
            return;
        };
        self.next_revival_check = self
            .zones
            .iter()
            .filter_map(|z| match z.state {
                ZoneState::Dead { since_query } => {
                    Some(since_query + revival_backoff(base, z.deactivations))
                }
                _ => None,
            })
            .min()
            .unwrap_or(u64::MAX);
    }
}

/// Exponential backoff: `base << (deactivations - 1)`, saturating.
fn revival_backoff(base: u64, deactivations: u16) -> u64 {
    // narrowing: shift is clamped to <= 20, far below u32::MAX.
    let shift = deactivations.saturating_sub(1).min(20) as u32;
    base.saturating_mul(1u64 << shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_deactivation() {
        assert_eq!(revival_backoff(256, 0), 256);
        assert_eq!(revival_backoff(256, 1), 256);
        assert_eq!(revival_backoff(256, 2), 512);
        assert_eq!(revival_backoff(256, 3), 1024);
        // Saturates rather than overflowing.
        assert!(revival_backoff(u64::MAX / 2, 10) >= u64::MAX / 2);
    }
}

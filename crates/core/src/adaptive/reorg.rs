//! Zone-local reorganization policy: promotion and demotion.
//!
//! The feedback loop that decides *where* physical reorganization pays.
//! Metadata adaptation (split/merge/deactivate) reshapes what the zonemap
//! knows; promotion goes one step further and reshapes the *data*: a zone
//! that keeps absorbing partial scans is copied into a sorted/cracked
//! [`ReorgZone`] payload so subsequent predicates resolve positionally
//! instead of rescanning the zone. Demotion unwinds the investment when
//! the hotspot moves and the payload sits idle.
//!
//! The policy is intentionally the same shape as the paper's other
//! adaptation decisions: promotion triggers on observed scan volume (each
//! partial scan already paid the zone's full read cost, so
//! `reorg_after_scans` scans amortize one build copy), demotion on
//! observed disuse (`reorg_demote_idle` consecutive outright skips).

use crate::adaptive::zone::{AdaptiveZone, ZoneLayout, ZoneState};
use crate::adaptive::zonemap::AdaptiveZonemap;
use crate::trace::AdaptEvent;
use ads_storage::{DataValue, ReorgZone};
use std::sync::Arc;
use std::time::Instant;

/// Lifetime reorganization counters of one zonemap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgStats {
    /// Zones promoted to the reorganized layout.
    pub zones_promoted: u64,
    /// Zones demoted back to flat.
    pub zones_demoted: u64,
    /// Payload bytes copied or relocated: build copies, crack partition
    /// swaps, and sort conversions.
    pub bytes_moved: u64,
    /// Nanoseconds spent inside [`AdaptiveZonemap::apply_reorg`].
    pub reorg_ns: u64,
}

impl ReorgStats {
    /// Merges another stats block into this one (sharded aggregation).
    pub fn merge(&mut self, other: &ReorgStats) {
        self.zones_promoted += other.zones_promoted;
        self.zones_demoted += other.zones_demoted;
        self.bytes_moved += other.bytes_moved;
        self.reorg_ns += other.reorg_ns;
    }
}

/// What one [`AdaptiveZonemap::apply_reorg`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorgReport {
    /// Zones promoted by this pass.
    pub promoted: u64,
    /// Zones demoted by this pass.
    pub demoted: u64,
    /// Payload bytes copied by this pass (build copies).
    pub bytes_moved: u64,
    /// Wall time of this pass in nanoseconds.
    pub reorg_ns: u64,
}

impl ReorgReport {
    /// True when the pass changed any zone's layout.
    pub fn changed(&self) -> bool {
        self.promoted + self.demoted > 0
    }
}

impl<T: DataValue> AdaptiveZonemap<T> {
    /// One reorganization pass over `base` (the column this zonemap
    /// indexes): promotes hot flat zones whose scan volume has amortized
    /// a build copy, demotes reorganized zones whose payload has sat
    /// idle. No-op (and free) unless `enable_reorg` is set.
    ///
    /// Runs on the owner's side of the publication protocol — inline
    /// after a query, or on the server's maintenance thread — never on a
    /// shared snapshot. Readers observe layout changes only through the
    /// next republication, as one atomic snapshot swap.
    ///
    /// epoch: bumps once at the end under `report.changed()` — true
    /// exactly when a zone was promoted or demoted; a pass that only
    /// read counters is reader-invisible.
    pub fn apply_reorg(&mut self, base: &[T]) -> ReorgReport {
        if !self.config.enable_reorg {
            return ReorgReport::default();
        }
        debug_assert_eq!(base.len(), self.len(), "base column / zonemap mismatch");
        let t0 = Instant::now();
        // Promotion reads scan counters; bank the plane's deferred skip
        // counts so the decision sees flushed stats.
        self.flush_pending_skips();
        // Relative-hotness gate on the zones' scan RATE (scans/probes,
        // bounded [0,1] and stable under split/merge stat resets): a
        // zone is promoted only when queries keep reading it while the
        // map is skipping elsewhere. On a uniform workload every probe
        // scans every zone, the mean rate sits near 1.0 and the bar
        // `hot_factor * mean` exceeds any achievable rate — promotion
        // correctly never triggers. On a hot-zone workload the mean is
        // dragged down by all the skipped zones, so the hotspot's rate
        // towers over the bar. Single-zone maps bypass the gate (no
        // population to compare against).
        let scan_rate = |z: &AdaptiveZone<T>| {
            // Build-time scans land in `scans` without a matching probe,
            // so the effective probe count is at least the scan count;
            // never-touched zones rate as fully hot (1.0) rather than
            // cold so they cannot drag the mean toward a zero bar.
            let probes = z.stats.probes.max(z.stats.scans).max(1);
            f64::from(z.stats.scans.max(1)) / f64::from(probes)
        };
        let mean_rate =
            self.zones.iter().map(scan_rate).sum::<f64>() / self.zones.len().max(1) as f64;
        let hot_bar = self.config.reorg_hot_factor * mean_rate;
        let gated = self.zones.len() > 1;
        let mut report = ReorgReport::default();
        let mut events: Vec<AdaptEvent> = Vec::new();
        for (idx, zone) in self.zones.iter_mut().enumerate() {
            match &zone.layout {
                ZoneLayout::Flat => {
                    let promote = matches!(zone.state, ZoneState::Built { .. })
                        && zone.stats.scans >= self.config.reorg_after_scans
                        && (!gated || scan_rate(zone) >= hot_bar);
                    if !promote {
                        continue;
                    }
                    // narrowing: row ids are u32 by storage-wide contract
                    // (columns are bounded well below 2^32 rows).
                    let payload = ReorgZone::build(&base[zone.start..zone.end], zone.start as u32);
                    let (min, max) = payload.min_max();
                    report.bytes_moved += payload.bytes_moved();
                    // The build pass saw every row: bounds become exact,
                    // and the value mask (an approximation earned for the
                    // flat layout) is superseded by positional resolution.
                    zone.state = ZoneState::Built {
                        min,
                        max,
                        exact: true,
                    };
                    zone.mask = None;
                    // A metadata tier is superseded the same way: the
                    // payload resolves predicates positionally.
                    zone.tier = None;
                    zone.tier_stats = Default::default();
                    // Hysteresis: a demoted zone must re-earn promotion
                    // with fresh scans, not replay pre-promotion history.
                    zone.stats.scans = 0;
                    zone.layout = ZoneLayout::Reorganized {
                        payload: Arc::new(payload),
                        hits: 0,
                        idle: 0,
                    };
                    self.plane.set_built(idx, min, max);
                    self.plane.set_reorg(idx, true);
                    report.promoted += 1;
                    events.push(AdaptEvent::Promoted {
                        range: zone.range(),
                    });
                }
                ZoneLayout::Reorganized { idle, .. } => {
                    if *idle < self.config.reorg_demote_idle {
                        continue;
                    }
                    zone.layout = ZoneLayout::Flat;
                    zone.stats.scans = 0;
                    self.plane.set_reorg(idx, false);
                    report.demoted += 1;
                    events.push(AdaptEvent::Demoted {
                        range: zone.range(),
                    });
                }
            }
        }
        for ev in events {
            self.trace.record(self.query_seq, ev);
        }
        // narrowing: saturates at ~584 years of nanoseconds.
        report.reorg_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.reorg_lifetime.zones_promoted += report.promoted;
        self.reorg_lifetime.zones_demoted += report.demoted;
        self.reorg_lifetime.bytes_moved += report.bytes_moved;
        self.reorg_lifetime.reorg_ns += report.reorg_ns;
        if report.changed() {
            self.mutation_epoch += 1;
        }
        #[cfg(debug_assertions)]
        self.assert_invariants();
        report
    }

    /// Lifetime reorganization counters (includes crack bytes moved by
    /// prune-time partitioning, not only `apply_reorg` build copies).
    pub fn reorg_stats(&self) -> ReorgStats {
        self.reorg_lifetime
    }

    /// Number of zones currently in the reorganized layout.
    pub fn zones_reorganized(&self) -> usize {
        self.zones.iter().filter(|z| z.is_reorganized()).count()
    }
}

//! The zone record of an adaptive zonemap.

use crate::outcome::MaskRequest;
use crate::stats::ZoneStats;
use ads_storage::{BloomSketch, DataValue, Imprints, ReorgZone, RowRange};
use std::sync::Arc;

/// Secondary zone metadata: a 64-bin value-presence mask, used when a zone
/// can refine no further positionally (outliers pin its min/max wide) but
/// its *value* population is sparse. Earned, like all metadata here, as a
/// scan by-product.
#[derive(Debug, Clone, Copy)]
pub struct ZoneMask {
    /// The bin layout the mask was collected under.
    pub layout: MaskRequest,
    /// Bit `b` set when some row of the zone falls in bin `b`.
    pub bits: u64,
}

/// Lifecycle state of one adaptive zone.
#[derive(Debug, Clone, Copy)]
pub enum ZoneState<T: DataValue> {
    /// No metadata yet; the zone must be scanned, and the scan's
    /// by-product `(min, max)` will materialise it.
    Unbuilt,
    /// Metadata available. `exact` distinguishes bounds computed from this
    /// exact row range from conservative bounds inherited from a split
    /// parent (sound but possibly wider than the truth; tightened on the
    /// next scan through the zone).
    Built {
        /// Lower bound on the zone's values (exact or conservative).
        min: T,
        /// Upper bound on the zone's values (exact or conservative).
        max: T,
        /// Whether the bounds are exact for this row range.
        exact: bool,
    },
    /// Metadata retired: probing this region never paid off. Scans read it
    /// unconditionally, exactly as a store without skipping would.
    Dead {
        /// Query sequence number at deactivation, for revival backoff.
        since_query: u64,
    },
}

/// Physical layout of one zone's rows.
///
/// `Flat` is the paper's world: the zone is a contiguous slice of the
/// base column and qualifying zones are scanned row by row.
/// `Reorganized` holds a [`ReorgZone`] payload — a sorted/cracked copy
/// of the zone with its rowid permutation — so range predicates resolve
/// positionally. The payload sits behind an `Arc`: published snapshots
/// share it immutably, and the owning (maintenance-side) zonemap cracks
/// it copy-on-write via `Arc::make_mut`, which is what makes a payload
/// immutable-until-republished.
#[derive(Debug, Clone, Default)]
pub enum ZoneLayout<T: DataValue> {
    /// Contiguous slice of the base column (the default).
    #[default]
    Flat,
    /// Sorted/cracked permuted copy; predicates resolve positionally.
    Reorganized {
        /// The shared payload (values + rowid permutation + pieces).
        payload: Arc<ReorgZone<T>>,
        /// Queries answered positionally since promotion.
        hits: u64,
        /// Consecutive probes that did not use the payload (the zone was
        /// skipped outright); drives demotion when the hotspot moves.
        idle: u32,
    },
}

/// An optional secondary metadata tier attached to one zone: a value-set
/// sketch for equality-heavy zones or a per-cache-line imprint for
/// wide-range zones. Both are earned lazily (built by [`apply_tiers`]
/// once the zone's scan volume amortises the build pass) and dropped
/// under the same observe/deactivate feedback the zones themselves use.
/// Payloads sit behind `Arc`s so published zonemap snapshots share them
/// immutably, exactly like reorganized-zone payloads.
///
/// [`apply_tiers`]: crate::adaptive::AdaptiveZonemap::apply_tiers
#[derive(Debug, Clone)]
pub enum ZoneTier<T: DataValue> {
    /// Word-packed bloom filter over the zone's value set; excludes point
    /// predicates that fall inside the zone's `[min, max]` but hit no
    /// actual value.
    Bloom(Arc<BloomSketch>),
    /// Column-imprint histogram sketch over the zone's rows; excludes or
    /// full-matches sub-zone line runs for range predicates.
    Imprint(Arc<Imprints<T>>),
}

impl<T: DataValue> ZoneTier<T> {
    /// Short kind label for snapshots and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            ZoneTier::Bloom(_) => "bloom",
            ZoneTier::Imprint(_) => "imprint",
        }
    }

    /// Heap bytes held by the tier payload.
    pub fn metadata_bytes(&self) -> usize {
        match self {
            ZoneTier::Bloom(s) => s.metadata_bytes(),
            ZoneTier::Imprint(s) => s.metadata_bytes(),
        }
    }
}

/// Per-zone tier bookkeeping: predicate-shape telemetry feeding the tier
/// chooser, plus the probe/hit window driving the drop policy. Lives
/// outside [`ZoneStats`] because its lifecycle follows the *tier*, not
/// the zone's adaptation history.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierTelemetry {
    /// Overlapping probes whose predicate was a point (`lo == hi`).
    pub point_preds: u32,
    /// Overlapping probes whose predicate was a proper range.
    pub range_preds: u32,
    /// Tier consultations in the current drop window.
    pub tier_probes: u32,
    /// Consultations that excluded rows (full skip or sub-zone skip).
    pub tier_hits: u32,
    /// Times a tier was dropped here; drives exponential rebuild backoff.
    pub drops: u8,
    /// Scan count the zone must reach before the next (re)build attempt.
    pub next_build_scans: u32,
}

impl TierTelemetry {
    /// Fraction of observed overlapping predicates that were points;
    /// `None` before any sample.
    pub fn point_fraction(&self) -> Option<f64> {
        let total = self.point_preds + self.range_preds;
        (total > 0).then(|| f64::from(self.point_preds) / f64::from(total))
    }

    /// Resets the probe/hit drop window (kept across windows: shape
    /// counters and backoff state).
    pub fn reset_window(&mut self) {
        self.tier_probes = 0;
        self.tier_hits = 0;
    }
}

/// One zone: a row range plus its metadata state and statistics.
#[derive(Debug, Clone)]
pub struct AdaptiveZone<T: DataValue> {
    /// First row of the zone.
    pub start: usize,
    /// One past the last row of the zone.
    pub end: usize,
    /// Metadata lifecycle state.
    pub state: ZoneState<T>,
    /// Adaptation statistics.
    pub stats: ZoneStats,
    /// How many times this region has been deactivated; drives exponential
    /// revival backoff.
    pub deactivations: u16,
    /// Hysteresis flag: set when this zone was produced by a coarsening
    /// merge. Such zones are never split again — a merge is the system
    /// concluding that finer metadata did not pay here, and re-splitting
    /// would ping-pong forever on random data. Revival (after
    /// deactivation backoff) is the sanctioned second chance.
    pub no_resplit: bool,
    /// How many split levels separate this zone from an originally
    /// materialised one. Splitting is speculative — on data with no
    /// positional value locality it can never help — so the wasted-scan
    /// threshold doubles per generation, damping runaway refinement while
    /// still letting genuinely clustered regions drill down.
    pub split_generation: u8,
    /// Optional secondary value mask (see [`ZoneMask`]). Dropped on any
    /// structural change to the zone's row range.
    pub mask: Option<ZoneMask>,
    /// Physical layout of the zone's rows (see [`ZoneLayout`]).
    pub layout: ZoneLayout<T>,
    /// Optional secondary metadata tier (see [`ZoneTier`]). Dropped on
    /// any structural change to the zone's row range, on reorganization
    /// promotion, and by the tier drop policy.
    pub tier: Option<ZoneTier<T>>,
    /// Tier chooser/drop bookkeeping (see [`TierTelemetry`]).
    pub tier_stats: TierTelemetry,
}

impl<T: DataValue> AdaptiveZone<T> {
    /// A fresh unbuilt zone.
    pub fn unbuilt(start: usize, end: usize, ewma_alpha: f64) -> Self {
        AdaptiveZone {
            start,
            end,
            state: ZoneState::Unbuilt,
            stats: ZoneStats::new(ewma_alpha),
            deactivations: 0,
            no_resplit: false,
            split_generation: 0,
            mask: None,
            layout: ZoneLayout::Flat,
            tier: None,
            tier_stats: TierTelemetry::default(),
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the zone covers no rows (never valid inside a zonemap).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The zone's row range.
    pub fn range(&self) -> RowRange {
        RowRange::new(self.start, self.end)
    }

    /// True if metadata is currently usable for pruning.
    pub fn is_built(&self) -> bool {
        matches!(self.state, ZoneState::Built { .. })
    }

    /// True if the zone is retired.
    pub fn is_dead(&self) -> bool {
        matches!(self.state, ZoneState::Dead { .. })
    }

    /// True if the zone currently carries a reorganized payload.
    pub fn is_reorganized(&self) -> bool {
        matches!(self.layout, ZoneLayout::Reorganized { .. })
    }

    /// The reorganized payload, when present.
    pub fn reorg_payload(&self) -> Option<&Arc<ReorgZone<T>>> {
        match &self.layout {
            ZoneLayout::Reorganized { payload, .. } => Some(payload),
            ZoneLayout::Flat => None,
        }
    }

    /// True if the zone currently carries a metadata tier.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// Drops the tier and its drop window, remembering the drop for
    /// rebuild backoff. No-op when no tier is attached.
    ///
    /// epoch: zone-level helper — the zonemap-level callers
    /// (`apply_tiers`' drop path, the lifecycle passes) own the bump;
    /// a zone cannot see the map's epoch counter from here.
    pub fn drop_tier(&mut self) {
        if self.tier.take().is_some() {
            self.tier_stats.reset_window();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_zone() {
        let z: AdaptiveZone<i64> = AdaptiveZone::unbuilt(10, 20, 0.25);
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
        assert!(!z.is_built() && !z.is_dead());
        assert_eq!(z.range(), RowRange::new(10, 20));
        assert_eq!(z.deactivations, 0);
        assert!(!z.no_resplit);
    }

    #[test]
    fn state_predicates() {
        let mut z: AdaptiveZone<i64> = AdaptiveZone::unbuilt(0, 5, 0.25);
        z.state = ZoneState::Built {
            min: 1,
            max: 4,
            exact: true,
        };
        assert!(z.is_built());
        z.state = ZoneState::Dead { since_query: 7 };
        assert!(z.is_dead());
    }
}

//! The adaptive zonemap: zone metadata as a workload-driven investment.
//!
//! Where a static zonemap pays its full metadata cost up front and at one
//! fixed granularity, the adaptive zonemap:
//!
//! * starts with **unbuilt** zones and materialises `(min, max)` as a
//!   by-product of scans the queries had to run anyway (lazy build);
//! * **splits** zones that keep being scanned for little yield, raising
//!   skipping resolution exactly where the workload lands;
//! * **merges** adjacent zones whose metadata never causes skips, cutting
//!   the per-query probe bill;
//! * **deactivates** regions where even maximal zones never skip, restoring
//!   plain-scan performance on adversarial (random) data — and optionally
//!   **revives** them with exponential backoff so a shifted workload can
//!   re-earn metadata.
//!
//! Structural operations live in `maintenance.rs`; this file holds the
//! container, the prune/observe protocol, and the append path.

use crate::adaptive::config::AdaptiveConfig;
use crate::adaptive::plane::PrunePlane;
use crate::adaptive::reorg::ReorgStats;
use crate::adaptive::tier::TierStats;
use crate::adaptive::zone::{
    AdaptiveZone, TierTelemetry, ZoneLayout, ZoneMask, ZoneState, ZoneTier,
};
use crate::cost::CostModel;
use crate::index::SkippingIndex;
use crate::outcome::{MaskRequest, PruneOutcome, ReorgUnit, ScanObservation};
use crate::predicate::RangePredicate;
use crate::stats::{IndexStats, PruneStats, ZoneStats};
use crate::trace::{AdaptEvent, AdaptTrace};
use ads_storage::{DataValue, RangeSet, RowRange, RunVerdict};
use std::sync::Arc;

/// An adaptive zonemap over one column of `len` rows.
///
/// Construction is O(#zones) and touches no data: all metadata is earned
/// later through the [`SkippingIndex::observe`] feedback channel.
#[derive(Debug, Clone)]
pub struct AdaptiveZonemap<T: DataValue> {
    pub(crate) zones: Vec<AdaptiveZone<T>>,
    /// Dense SoA mirror of the probe-critical zone fields; see
    /// [`PrunePlane`] for the mirroring invariant.
    pub(crate) plane: PrunePlane<T>,
    pub(crate) config: AdaptiveConfig,
    pub(crate) cost: CostModel,
    pub(crate) trace: AdaptTrace,
    pub(crate) stats: IndexStats,
    pub(crate) query_seq: u64,
    pub(crate) len: usize,
    /// Earliest query number at which some dead zone is due a revival
    /// check; `u64::MAX` when none are dead or revival is disabled.
    pub(crate) next_revival_check: u64,
    /// Counts reader-visible metadata mutations: zone builds/tightenings,
    /// structural maintenance that changed something, revivals, appends,
    /// reorganization promotions/demotions and payload cracks.
    /// Publication layers compare epochs to skip republishing unchanged
    /// state; per-query stat drift (probe/skip tallies) deliberately does
    /// NOT bump it — staleness there costs adaptation bookkeeping
    /// freshness, never answer correctness.
    pub(crate) mutation_epoch: u64,
    /// Lifetime reorganization counters (promotions, demotions, bytes
    /// moved, time spent); see [`ReorgStats`].
    pub(crate) reorg_lifetime: ReorgStats,
    /// Lifetime metadata-tier counters (builds, drops, skip benefit);
    /// see [`TierStats`].
    pub(crate) tier_lifetime: TierStats,
}

impl<T: DataValue> AdaptiveZonemap<T> {
    /// Creates an adaptive zonemap for a column of `len` rows.
    ///
    /// # Panics
    /// Panics if `config` is inconsistent (see [`AdaptiveConfig::validate`]).
    pub fn new(len: usize, config: AdaptiveConfig) -> Self {
        Self::with_cost(len, config, CostModel::default())
    }

    /// As [`AdaptiveZonemap::new`] with an explicit cost model.
    ///
    /// epoch: constructor — starts at epoch 0 and is unreachable by
    /// readers until first published.
    pub fn with_cost(len: usize, config: AdaptiveConfig, cost: CostModel) -> Self {
        config.validate();
        let mut zones = Vec::with_capacity(len.div_ceil(config.target_zone_rows.max(1)));
        let mut start = 0;
        while start < len {
            let end = (start + config.target_zone_rows).min(len);
            zones.push(AdaptiveZone::unbuilt(start, end, config.ewma_alpha));
            start = end;
        }
        let trace = AdaptTrace::new(config.trace_capacity);
        let plane = PrunePlane::from_zones(&zones);
        let zm = AdaptiveZonemap {
            zones,
            plane,
            config,
            cost,
            trace,
            stats: IndexStats::default(),
            query_seq: 0,
            len,
            next_revival_check: u64::MAX,
            mutation_epoch: 0,
            reorg_lifetime: ReorgStats::default(),
            tier_lifetime: TierStats::default(),
        };
        zm.assert_invariants();
        zm
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when covering zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current number of zone entries (probe cost per query is
    /// proportional to this).
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }

    /// The adaptation event trace.
    pub fn trace(&self) -> &AdaptTrace {
        &self.trace
    }

    /// Lifetime pruning statistics.
    pub fn index_stats(&self) -> IndexStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The cost model guiding granularity decisions.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The reader-visible mutation epoch: increments whenever zone
    /// metadata changes in a way a fresh snapshot would reflect (build,
    /// tighten, mask, split, merge, deactivate, coalesce, revive, append).
    /// Two equal epochs mean a previously published clone of this zonemap
    /// still prunes identically, so republication can be skipped.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// A structural snapshot: `(range, state label, skip rate)` per zone,
    /// for dashboards and the demo-style trace example.
    pub fn zone_snapshot(&self) -> Vec<(RowRange, &'static str, f64)> {
        self.zones
            .iter()
            .enumerate()
            .map(|(i, z)| {
                let label = match z.state {
                    // The layout lane outranks the exactness distinction:
                    // a reorganized zone is always Built with exact bounds.
                    ZoneState::Built { .. } if z.is_reorganized() => "reorg",
                    // A tier likewise outranks it — the tier is the
                    // zone's defining metadata investment.
                    ZoneState::Built { .. } if matches!(z.tier, Some(ZoneTier::Bloom(_))) => {
                        "built+bloom"
                    }
                    ZoneState::Built { .. } if matches!(z.tier, Some(ZoneTier::Imprint(_))) => {
                        "built+imprint"
                    }
                    ZoneState::Unbuilt => "unbuilt",
                    ZoneState::Built { exact: true, .. } => "built",
                    ZoneState::Built { exact: false, .. } => "built~",
                    ZoneState::Dead { .. } => "dead",
                };
                // Read through the plane's deferred skip counter so the
                // snapshot is independent of when stats were last flushed.
                let rate = z.stats.skip_rate_with_pending(self.plane.pending_skip(i));
                (z.range(), label, rate)
            })
            .collect()
    }

    /// Zones by state: `(unbuilt, built, dead)`.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for z in &self.zones {
            match z.state {
                ZoneState::Unbuilt => counts.0 += 1,
                ZoneState::Built { .. } => counts.1 += 1,
                ZoneState::Dead { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// Verifies the zone partition invariant: contiguous, non-empty zones
    /// covering exactly `[0, len)`. Cheap enough to run after every
    /// structural change in debug builds; tests call it directly.
    pub fn assert_invariants(&self) {
        if self.len == 0 {
            assert!(self.zones.is_empty(), "zones over empty column");
            return;
        }
        assert_eq!(self.zones.first().map(|z| z.start), Some(0), "gap at front");
        assert_eq!(
            self.zones.last().map(|z| z.end),
            Some(self.len),
            "gap at back"
        );
        for w in self.zones.windows(2) {
            assert_eq!(w[0].end, w[1].start, "zones not contiguous");
        }
        assert!(
            self.zones.iter().all(|z| !z.is_empty()),
            "empty zone present"
        );
        assert!(
            self.plane.mirrors(&self.zones),
            "prune plane out of sync with zones"
        );
    }
}

impl<T: DataValue> SkippingIndex<T> for AdaptiveZonemap<T> {
    fn name(&self) -> String {
        let mut flags = String::new();
        if self.config.enable_split {
            flags.push('s');
        }
        if self.config.enable_merge {
            flags.push('m');
        }
        if self.config.enable_deactivate {
            flags.push('d');
        }
        if self.config.enable_mask {
            flags.push('v'); // value masks
        }
        if self.config.enable_reorg {
            flags.push('r'); // zone-local reorganization
        }
        if self.config.tier_mode.enabled() {
            flags.push('t'); // per-zone metadata tiers
        }
        if flags.is_empty() {
            flags.push_str("lazy");
        }
        format!(
            "adaptive-zonemap({}, {})",
            self.config.target_zone_rows, flags
        )
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    // epoch: the only reader-visible write on this path is a reorg
    // payload crack, bumped below under `moved > 0`; everything else
    // the probe loop touches (skip/probe counters, idle clocks, tier
    // telemetry) is per-query stat drift that must NOT bump, or every
    // query would force a full lane republication.
    fn prune(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let mut out = self.prune_prologue();

        // Hot loop over the dense SoA prune plane: the bounds test reads
        // only the packed built-bitset and min/max arrays; the full
        // AdaptiveZone record is touched for stat feedback and for the
        // minority of zones the bounds cannot exclude.
        let min_split_rows =
            (2 * self.config.min_zone_rows).max(2 * self.cost.min_profitable_zone_rows());
        for idx in 0..self.zones.len() {
            out.zones_probed += 1;
            if !self.plane.is_built(idx) {
                // Unbuilt and Dead zones scan identically.
                let zone = &self.zones[idx];
                out.must_scan.push_span(zone.start, zone.end);
                out.scan_units.push(zone.range());
                out.mask_requests.push(None);
                out.record_decision(zone.range(), "scan:unbuilt");
                continue;
            }
            let min = self.plane.mins[idx];
            let max = self.plane.maxs[idx];
            if !pred.overlaps(min, max) {
                out.zones_skipped += 1;
                out.record_decision(self.zones[idx].range(), "skip:bounds");
                // Deferred record_skip(): one dense counter bump instead
                // of a read-modify-write on the cold AoS zone record.
                self.plane.defer_skip(idx);
                // Reorganized zones additionally age their idle clock — a
                // single dense-bitset word test, zero for flat maps.
                if self.plane.is_reorg(idx) {
                    if let ZoneLayout::Reorganized { idle, .. } = &mut self.zones[idx].layout {
                        *idle = idle.saturating_add(1);
                    }
                }
                continue;
            }
            if self.plane.is_reorg(idx) {
                let moved = probe_reorg_zone(&mut self.zones[idx], pred, min, max, &mut out);
                if moved > 0 {
                    // A crack relocated payload rows — reader-visible, so
                    // publication layers must pick it up.
                    self.reorg_lifetime.bytes_moved += moved;
                    self.mutation_epoch += 1;
                }
                continue;
            }
            probe_overlapping_zone(
                &mut self.zones[idx],
                pred,
                min,
                max,
                &self.config,
                min_split_rows,
                &mut self.tier_lifetime,
                &mut out,
            );
        }

        self.prune_epilogue(&out);
        out
    }

    // epoch: structural writes (bounds built/tightened, splits, mask
    // attach) set `mutated` at each site and are covered by one bump at
    // the end; the remaining writes are selectivity/yield stat drift.
    fn observe(&mut self, obs: &ScanObservation<T>) {
        let low_yield = self.config.split_low_yield;
        let mut split_queue: Vec<usize> = Vec::new();
        let mut mutated = false;

        for ro in &obs.ranges {
            self.stats.rows_scanned += ro.range.len() as u64;
            // An observation feeds adaptation only when it covers exactly
            // one zone: then its (min, max) is exact zone metadata and its
            // qualifying count is an exact zone selectivity sample.
            // (Composite ranges arise on the multi-column path, where
            // intersection breaks zone alignment; they are ignored here.)
            let idx = match self
                .zones
                .binary_search_by(|z| z.start.cmp(&ro.range.start))
            {
                Ok(i) if self.zones[i].end == ro.range.end => i,
                _ => continue,
            };
            let zone = &mut self.zones[idx];
            let frac = if zone.is_empty() {
                0.0
            } else {
                ro.qualifying as f64 / zone.len() as f64
            };
            match zone.state {
                ZoneState::Unbuilt => {
                    zone.state = ZoneState::Built {
                        min: ro.min,
                        max: ro.max,
                        exact: true,
                    };
                    zone.stats.record_scan(frac, low_yield);
                    self.plane.set_built(idx, ro.min, ro.max);
                    mutated = true;
                    self.trace
                        .record(self.query_seq, AdaptEvent::Built { range: ro.range });
                }
                ZoneState::Built { min, max, .. } => {
                    if let Some(bits) = ro.mask {
                        if zone.mask.is_none() {
                            // The layout is the zone's bounds as they were
                            // at prune time (the request we issued).
                            zone.mask = Some(ZoneMask {
                                layout: MaskRequest {
                                    lo_f: min.to_f64(),
                                    hi_f: max.to_f64(),
                                },
                                bits,
                            });
                            self.trace
                                .record(self.query_seq, AdaptEvent::MaskBuilt { range: ro.range });
                        }
                    }
                    // Tighten to the exact bounds just measured. The mask
                    // keeps its own layout, which still covers all rows.
                    zone.state = ZoneState::Built {
                        min: ro.min,
                        max: ro.max,
                        exact: true,
                    };
                    zone.stats.record_scan(frac, low_yield);
                    self.plane.set_built(idx, ro.min, ro.max);
                    mutated = true;
                    // The wasted-scan threshold doubles per split
                    // generation: each refinement level must earn the next
                    // with proportionally more evidence, so data without
                    // positional locality stops splitting after a couple
                    // of speculative levels instead of racing to the floor.
                    let waste_needed = self
                        .config
                        .split_after_wasted
                        .saturating_mul(1 << zone.split_generation.min(16));
                    if self.config.enable_split
                        && !zone.no_resplit
                        // A reorganized zone already resolves positionally
                        // inside itself; splitting would discard the
                        // payload for a weaker form of refinement.
                        && !zone.is_reorganized()
                        && zone.stats.wasted_scans >= waste_needed
                        && zone.len() >= 2 * self.config.min_zone_rows
                        // Children below the cost model's break-even size
                        // could never repay their own probes.
                        && zone.len() / 2 >= self.cost.min_profitable_zone_rows()
                    {
                        split_queue.push(idx);
                    }
                }
                ZoneState::Dead { .. } => {}
            }
        }

        // Apply splits back-to-front so queued indices stay valid.
        for idx in split_queue.into_iter().rev() {
            self.split_zone(idx);
        }
        if mutated {
            self.mutation_epoch += 1;
        }

        if self.query_seq.is_multiple_of(self.config.maintenance_every) {
            self.run_maintenance();
        }

        #[cfg(debug_assertions)]
        self.assert_invariants();
    }

    fn on_append(&mut self, appended: &[T], base: &[T]) {
        debug_assert_eq!(self.len + appended.len(), base.len());
        let new_len = base.len();
        let target = self.config.target_zone_rows;

        let mut start = self.len;
        // Extend a trailing unbuilt zone up to target size before opening
        // new zones, so trickle appends don't fragment the tail.
        if let Some(last) = self.zones.last_mut() {
            if matches!(last.state, ZoneState::Unbuilt) && last.len() < target {
                last.end = (last.start + target).min(new_len);
                start = last.end;
            }
        }
        while start < new_len {
            let end = (start + target).min(new_len);
            self.zones
                .push(AdaptiveZone::unbuilt(start, end, self.config.ewma_alpha));
            self.plane.push_unbuilt();
            start = end;
        }
        self.len = new_len;
        self.mutation_epoch += 1;

        #[cfg(debug_assertions)]
        self.assert_invariants();
    }

    fn metadata_bytes(&self) -> usize {
        self.zones.capacity() * std::mem::size_of::<AdaptiveZone<T>>()
            + self.plane.heap_bytes()
            + self
                .zones
                .iter()
                .filter_map(|z| z.tier.as_ref().map(ZoneTier::metadata_bytes))
                .sum::<usize>()
    }

    fn adapt_events(&self) -> u64 {
        self.trace.total_events()
    }

    fn prune_stats(&self) -> Option<PruneStats> {
        // Rows-weighted per-zone skip-rate estimate, optimistic for zones
        // with no probe history (unbuilt, or built but never probed): a
        // cold structure must look worth probing or it never gets the
        // probes that would train the estimate. Dead zones estimate 0 —
        // the map itself already concluded they cannot skip.
        let mut weighted = 0.0;
        for (i, z) in self.zones.iter().enumerate() {
            let rate = match z.state {
                ZoneState::Dead { .. } => 0.0,
                ZoneState::Unbuilt => 1.0,
                ZoneState::Built { .. } => {
                    let pending = self.plane.pending_skip(i);
                    if z.stats.probes + pending == 0 {
                        1.0
                    } else {
                        z.stats.skip_rate_with_pending(pending)
                    }
                }
            };
            weighted += rate * z.len() as f64;
        }
        let est = if self.len == 0 {
            0.0
        } else {
            weighted / self.len as f64
        };
        // A tiered zone costs an extra metadata read per probe (the
        // sketch consultation), so it weighs as two probe entries in the
        // planner's probe-cost model.
        let tiered = self.zones.iter().filter(|z| z.has_tier()).count();
        Some(PruneStats {
            probe_entries: self.zones.len() + tiered,
            est_skip_fraction: est,
            queries_observed: self.stats.queries,
        })
    }

    fn prune_within(&mut self, pred: &RangePredicate<T>, alive: &RangeSet) -> PruneOutcome {
        /// Per-zone verdict, cached so a zone spanning two alive ranges is
        /// probed (and its stats bumped) exactly once.
        #[derive(Clone, Copy, PartialEq)]
        enum Decision {
            Unscanned,
            Skip,
            Full,
            Scan,
        }

        let mut out = self.prune_prologue();
        let min_split_rows =
            (2 * self.config.min_zone_rows).max(2 * self.cost.min_profitable_zone_rows());
        let mut last: Option<(usize, Decision)> = None;
        for ar in alive.ranges() {
            // First zone overlapping this alive range: zones partition
            // [0, len), so it's the first with end > ar.start.
            let mut idx = self.zones.partition_point(|z| z.end <= ar.start);
            while idx < self.zones.len() && self.zones[idx].start < ar.end {
                let decision = match last {
                    Some((i, d)) if i == idx => d,
                    _ => {
                        out.zones_probed += 1;
                        let d = if !self.plane.is_built(idx) {
                            Decision::Unscanned
                        } else {
                            let min = self.plane.mins[idx];
                            let max = self.plane.maxs[idx];
                            if !pred.overlaps(min, max) {
                                out.zones_skipped += 1;
                                self.plane.defer_skip(idx);
                                Decision::Skip
                            } else {
                                match classify_overlapping_zone(
                                    &self.zones[idx],
                                    pred,
                                    min,
                                    max,
                                    &self.config,
                                    min_split_rows,
                                ) {
                                    OverlapAction::FullMatch => {
                                        self.zones[idx].stats.record_no_skip();
                                        Decision::Full
                                    }
                                    // A tier skip is sound under the alive
                                    // restriction: no *base* row of the
                                    // zone qualifies, so no alive subset
                                    // does either.
                                    OverlapAction::MaskSkip | OverlapAction::TierSkip => {
                                        out.zones_skipped += 1;
                                        self.zones[idx].stats.record_skip();
                                        Decision::Skip
                                    }
                                    // Tier sub-units are demoted to a
                                    // conservative whole-zone scan here:
                                    // intersecting two fragmentations
                                    // (tier runs x alive ranges) would
                                    // break the per-unit observation
                                    // alignment this path maintains.
                                    //
                                    // Mask requests are not issued on the
                                    // restricted path: a fragment's mask
                                    // would not describe the whole zone.
                                    OverlapAction::Scan(_) | OverlapAction::TierUnits(_) => {
                                        self.zones[idx].stats.record_no_skip();
                                        Decision::Scan
                                    }
                                }
                            }
                        };
                        last = Some((idx, d));
                        d
                    }
                };
                let z = &self.zones[idx];
                let frag_start = z.start.max(ar.start);
                let frag_end = z.end.min(ar.end);
                match decision {
                    Decision::Unscanned | Decision::Scan => {
                        out.must_scan.push_span(frag_start, frag_end);
                        out.scan_units.push(RowRange::new(frag_start, frag_end));
                    }
                    Decision::Full => out.full_match.push_span(frag_start, frag_end),
                    Decision::Skip => {}
                }
                idx += 1;
            }
        }
        self.prune_epilogue(&out);
        out
    }

    fn maintain(&mut self, base: &[T]) {
        // Reorganization and tier maintenance ride the same amortization
        // clock as structural maintenance; when the features are off
        // this is two branches and out.
        if self.query_seq.is_multiple_of(self.config.maintenance_every) {
            if self.config.enable_reorg {
                let _ = self.apply_reorg(base);
            }
            if self.config.tier_mode.enabled() {
                let _ = self.apply_tiers(base);
            }
        }
    }
}

/// An imprint consultation must resolve (exclude or full-match) at
/// least `1/TIER_MIN_BENEFIT_DENOM` of the zone's rows to fragment the
/// zone into line runs — and to count as a tier hit. Weaker outcomes
/// scan the whole zone as one unit and feed the drop window as misses.
const TIER_MIN_BENEFIT_DENOM: usize = 8;

/// One sub-zone row span resolved by an imprint tier: either a run of
/// lines the executor must scan-and-filter, or a run proven to contain
/// only qualifying rows.
struct TierSpan {
    /// The span's row range in base coordinates.
    range: RowRange,
    /// True when every row in the span qualifies (no scan needed).
    full: bool,
}

/// What pruning decided for a built zone whose `(min, max)` the predicate
/// overlaps.
enum OverlapAction {
    /// The predicate contains the zone's value range: every row qualifies.
    FullMatch,
    /// The secondary value mask excludes the zone despite overlapping
    /// bounds — the outlier case.
    MaskSkip,
    /// The zone's metadata tier excludes every row despite overlapping
    /// bounds: a bloom miss on a point predicate, or imprints whose runs
    /// all miss the predicate's bins.
    TierSkip,
    /// The imprint tier fragmented the zone: scan only the listed spans
    /// (the omitted rows are proven non-qualifying, the `full` spans
    /// proven all-qualifying). Emitted only when the tier actually
    /// excluded or full-matched something — otherwise a plain `Scan` is
    /// cheaper for the executor.
    TierUnits(Vec<TierSpan>),
    /// The zone must be scanned, optionally collecting a value mask.
    Scan(Option<MaskRequest>),
}

/// The shared probe decision for a built zone whose `(min, max)` the
/// predicate overlaps: full-match detection, value-mask secondary pruning,
/// and the mask-request choice. Pure — reads the zone, mutates nothing.
/// Every prune variant (the plane-driven [`prune`] loop, the AoS reference
/// loop [`AdaptiveZonemap::prune_via_zones`], and the read-only
/// [`AdaptiveZonemap::prune_shared`]) funnels through here, which is what
/// keeps them decision-identical.
///
/// [`prune`]: SkippingIndex::prune
fn classify_overlapping_zone<T: DataValue>(
    zone: &AdaptiveZone<T>,
    pred: &RangePredicate<T>,
    min: T,
    max: T,
    config: &AdaptiveConfig,
    min_split_rows: usize,
) -> OverlapAction {
    if pred.contains_zone(min, max) {
        return OverlapAction::FullMatch;
    }
    if let Some(mask) = zone.mask {
        let bits = mask
            .layout
            .predicate_bits(pred.lo.to_f64(), pred.hi.to_f64());
        if mask.bits & bits == 0 {
            return OverlapAction::MaskSkip;
        }
    }
    // Metadata tier, consulted only when the cheap checks above could
    // not resolve the zone. Both tiers are sound-but-conservative: they
    // may over-admit (scan a zone for nothing) but never exclude a row
    // that qualifies — deleted rows in particular are still present in
    // the base column the tier was built over, so delete churn can only
    // make a tier admit *more* than necessary.
    match &zone.tier {
        // A value-set sketch answers only equality probes; range
        // predicates (and admitted points) fall through to a plain scan
        // via the catch-all arm.
        Some(ZoneTier::Bloom(sketch)) if pred.is_point() && !sketch.may_contain(pred.lo) => {
            return OverlapAction::TierSkip;
        }
        Some(ZoneTier::Imprint(imp)) => {
            let mut spans: Vec<TierSpan> = Vec::new();
            let mut resolved_rows = 0usize;
            imp.classify(pred.lo, pred.hi, |r, verdict| {
                let range = RowRange::new(zone.start + r.start, zone.start + r.end);
                match verdict {
                    RunVerdict::Skip => resolved_rows += range.len(),
                    RunVerdict::FullMatch => {
                        resolved_rows += range.len();
                        spans.push(TierSpan { range, full: true });
                    }
                    RunVerdict::Scan => spans.push(TierSpan { range, full: false }),
                }
            });
            if spans.is_empty() {
                // Every line run missed the predicate's bins.
                return OverlapAction::TierSkip;
            }
            // Fragmenting the zone into line runs trades one scan unit
            // for many; that only pays when the runs resolve (exclude or
            // full-match) a meaningful share of the zone. Below the
            // threshold the consultation is also *recorded* as a miss —
            // an imprint that shaves a line or two per probe costs more
            // in fragmentation than it saves, and the drop window should
            // see through it.
            if resolved_rows * TIER_MIN_BENEFIT_DENOM >= zone.len() {
                return OverlapAction::TierUnits(spans);
            }
            // Too little resolved: a single whole-zone scan unit beats
            // many fragments, so fall through.
        }
        _ => {}
    }
    // Ask the scan to collect a mask for zones that keep wasting scans
    // but can refine no further positionally.
    let can_split = config.enable_split && !zone.no_resplit && zone.len() >= min_split_rows;
    let want_mask = config.enable_mask
        && zone.mask.is_none()
        && !can_split
        && zone.stats.wasted_scans >= config.split_after_wasted;
    OverlapAction::Scan(want_mask.then_some(MaskRequest {
        lo_f: min.to_f64(),
        hi_f: max.to_f64(),
    }))
}

/// Applies an [`OverlapAction`] to the outcome being assembled, with the
/// zone-stat side effects the mutable prune paths perform: probe/skip
/// feedback, predicate-shape telemetry for the tier chooser, and the
/// tier consultation window plus lifetime benefit counters.
#[allow(clippy::too_many_arguments)]
fn probe_overlapping_zone<T: DataValue>(
    zone: &mut AdaptiveZone<T>,
    pred: &RangePredicate<T>,
    min: T,
    max: T,
    config: &AdaptiveConfig,
    min_split_rows: usize,
    tier_life: &mut TierStats,
    out: &mut PruneOutcome,
) {
    // Shape telemetry: every overlapping probe is a sample of what a
    // tier here would have to answer.
    if pred.is_point() {
        zone.tier_stats.point_preds = zone.tier_stats.point_preds.saturating_add(1);
    } else {
        zone.tier_stats.range_preds = zone.tier_stats.range_preds.saturating_add(1);
    }
    let action = classify_overlapping_zone(zone, pred, min, max, config, min_split_rows);
    // The tier was consulted unless a cheaper check resolved the zone
    // first (full-match containment or a mask skip).
    if zone.has_tier()
        && matches!(
            action,
            OverlapAction::TierSkip | OverlapAction::TierUnits(_) | OverlapAction::Scan(_)
        )
    {
        zone.tier_stats.tier_probes = zone.tier_stats.tier_probes.saturating_add(1);
    }
    match action {
        OverlapAction::FullMatch => {
            out.full_match.push_span(zone.start, zone.end);
            out.record_decision(zone.range(), "full:bounds");
            zone.stats.record_no_skip();
        }
        OverlapAction::MaskSkip => {
            out.zones_skipped += 1;
            out.record_decision(zone.range(), "skip:mask");
            zone.stats.record_skip();
        }
        OverlapAction::TierSkip => {
            out.zones_skipped += 1;
            out.record_decision(zone.range(), tier_skip_label(zone));
            zone.stats.record_skip();
            zone.tier_stats.tier_hits = zone.tier_stats.tier_hits.saturating_add(1);
            tier_life.tier_skips += 1;
            tier_life.tier_rows_excluded += zone.len() as u64;
        }
        OverlapAction::TierUnits(spans) => {
            // The zone is read (partially), so for zone-level adaptation
            // this is a scan, not a skip.
            zone.stats.record_no_skip();
            zone.tier_stats.tier_hits = zone.tier_stats.tier_hits.saturating_add(1);
            tier_life.tier_skips += 1;
            let mut covered = 0usize;
            for span in spans {
                covered += span.range.len();
                if span.full {
                    out.full_match.push_span(span.range.start, span.range.end);
                } else {
                    out.must_scan.push_span(span.range.start, span.range.end);
                    out.scan_units.push(span.range);
                    out.mask_requests.push(None);
                }
            }
            tier_life.tier_rows_excluded += (zone.len() - covered) as u64;
            out.record_decision(zone.range(), "tier-units");
        }
        OverlapAction::Scan(req) => {
            out.must_scan.push_span(zone.start, zone.end);
            out.scan_units.push(zone.range());
            out.mask_requests.push(req);
            out.record_decision(zone.range(), "scan");
            zone.stats.record_no_skip();
        }
    }
}

/// Decision-trace label for a [`OverlapAction::TierSkip`], naming which
/// sketch kind excluded the zone.
fn tier_skip_label<T: DataValue>(zone: &AdaptiveZone<T>) -> &'static str {
    match &zone.tier {
        Some(ZoneTier::Bloom(_)) => "skip:bloom",
        Some(ZoneTier::Imprint(_)) => "skip:imprint",
        // TierSkip is only produced by a tier probe, but keep the
        // fallback total rather than panicking inside diagnostics.
        None => "skip:tier",
    }
}

/// Probes a reorganized zone the predicate overlaps: cracks the payload
/// around the predicate bounds (copy-on-write, so published snapshots
/// never observe rows moving), resolves the bounds positionally, and
/// emits either a plain full-match span or a positional [`ReorgUnit`].
/// Returns the payload bytes moved by the crack (0 when the piece
/// structure already covered both bounds).
///
/// Full matches deliberately bypass the positional path: a plain
/// base-coordinate `full_match` span folds in the same order as the flat
/// layout, which keeps aggregate results bit-identical across layouts.
///
/// epoch: returns the cracked byte count so the calling prune loop can
/// bump `mutation_epoch` when it is non-zero; the hit/idle writes here
/// are stat drift.
fn probe_reorg_zone<T: DataValue>(
    zone: &mut AdaptiveZone<T>,
    pred: &RangePredicate<T>,
    min: T,
    max: T,
    out: &mut PruneOutcome,
) -> u64 {
    zone.stats.record_no_skip();
    let range = zone.range();
    let ZoneLayout::Reorganized {
        payload,
        hits,
        idle,
    } = &mut zone.layout
    else {
        unreachable!("probe_reorg_zone on a flat zone");
    };
    *hits += 1;
    *idle = 0;
    if pred.contains_zone(min, max) {
        out.full_match.push_span(range.start, range.end);
        out.record_decision(range, "full:bounds");
        return 0;
    }
    // COW crack: if a published snapshot still shares this payload,
    // make_mut clones before partitioning — the snapshot's copy stays
    // immutable until the next republication swaps it out.
    let moved = Arc::make_mut(payload).crack(pred.lo, pred.hi);
    let spans = payload.lookup(pred.lo, pred.hi);
    let as_range = |r: &std::ops::Range<usize>| RowRange::new(r.start, r.end);
    out.reorg_units.push(ReorgUnit {
        zone: range,
        full: as_range(&spans.full),
        edges: [
            spans.edges[0].as_ref().map(as_range),
            spans.edges[1].as_ref().map(as_range),
        ],
        payload: Arc::clone(payload) as Arc<dyn std::any::Any + Send + Sync>,
    });
    out.record_decision(range, "positional");
    moved
}

impl<T: DataValue> AdaptiveZonemap<T> {
    /// The bookkeeping every prune variant runs first: advance the query
    /// clock, revive dead zones that are due, and set up the outcome.
    fn prune_prologue(&mut self) -> PruneOutcome {
        self.query_seq += 1;
        self.stats.queries += 1;

        if self.query_seq >= self.next_revival_check {
            self.revive_due_zones();
        }

        PruneOutcome::for_prune()
    }

    /// Folds one prune's tallies into the lifetime statistics.
    fn prune_epilogue(&mut self, out: &PruneOutcome) {
        self.stats.total_probes += out.zones_probed as u64;
        self.stats.total_skips += out.zones_skipped as u64;
        self.stats.rows_full_match += out.rows_full_match() as u64;
    }

    /// Read-only prune: converts `pred` into candidate ranges against the
    /// current metadata **without mutating anything** — no query-clock
    /// tick, no stat updates, no revival check.
    ///
    /// This is the concurrent-reader entry point: N threads may call it on
    /// a shared (or snapshot-cloned) zonemap simultaneously. Given the same
    /// zone state, the returned outcome is identical to what the mutable
    /// [`SkippingIndex::prune`] would produce (both funnel zone decisions
    /// through one classifier; property-tested). The bookkeeping the
    /// mutable path performs inline is applied later, centrally, when the
    /// executed query's feedback reaches [`AdaptiveZonemap::apply_feedback`].
    pub fn prune_shared(&self, pred: &RangePredicate<T>) -> PruneOutcome {
        let mut out = PruneOutcome::for_prune();
        let min_split_rows =
            (2 * self.config.min_zone_rows).max(2 * self.cost.min_profitable_zone_rows());
        for idx in 0..self.zones.len() {
            out.zones_probed += 1;
            if !self.plane.is_built(idx) {
                let zone = &self.zones[idx];
                out.must_scan.push_span(zone.start, zone.end);
                out.scan_units.push(zone.range());
                out.mask_requests.push(None);
                out.record_decision(zone.range(), "scan:unbuilt");
                continue;
            }
            let min = self.plane.mins[idx];
            let max = self.plane.maxs[idx];
            if !pred.overlaps(min, max) {
                out.zones_skipped += 1;
                out.record_decision(self.zones[idx].range(), "skip:bounds");
                continue;
            }
            let zone = &self.zones[idx];
            if let Some(payload) = zone.reorg_payload() {
                if pred.contains_zone(min, max) {
                    out.full_match.push_span(zone.start, zone.end);
                    out.record_decision(zone.range(), "full:bounds");
                } else {
                    // Read-only positional resolution: no crack on the
                    // shared path, so uncracked bounds surface as edge
                    // pieces the executor predicate-tests. The owner's
                    // replayed prune (apply_feedback) cracks later.
                    let spans = payload.lookup(pred.lo, pred.hi);
                    let as_range = |r: &std::ops::Range<usize>| RowRange::new(r.start, r.end);
                    out.reorg_units.push(ReorgUnit {
                        zone: zone.range(),
                        full: as_range(&spans.full),
                        edges: [
                            spans.edges[0].as_ref().map(as_range),
                            spans.edges[1].as_ref().map(as_range),
                        ],
                        payload: Arc::clone(payload) as Arc<dyn std::any::Any + Send + Sync>,
                    });
                    out.record_decision(zone.range(), "positional");
                }
                continue;
            }
            match classify_overlapping_zone(zone, pred, min, max, &self.config, min_split_rows) {
                OverlapAction::FullMatch => {
                    out.full_match.push_span(zone.start, zone.end);
                    out.record_decision(zone.range(), "full:bounds");
                }
                OverlapAction::MaskSkip => {
                    out.zones_skipped += 1;
                    out.record_decision(zone.range(), "skip:mask");
                }
                OverlapAction::TierSkip => {
                    out.zones_skipped += 1;
                    out.record_decision(zone.range(), tier_skip_label(zone));
                }
                OverlapAction::TierUnits(spans) => {
                    // Same spans the mutable prune emits; the stat and
                    // telemetry bumps it performs are replayed later by
                    // `apply_feedback`.
                    for span in spans {
                        if span.full {
                            out.full_match.push_span(span.range.start, span.range.end);
                        } else {
                            out.must_scan.push_span(span.range.start, span.range.end);
                            out.scan_units.push(span.range);
                            out.mask_requests.push(None);
                        }
                    }
                    out.record_decision(zone.range(), "tier-units");
                }
                OverlapAction::Scan(req) => {
                    out.must_scan.push_span(zone.start, zone.end);
                    out.scan_units.push(zone.range());
                    out.mask_requests.push(req);
                    out.record_decision(zone.range(), "scan");
                }
            }
        }
        out
    }

    /// Applies one deferred query's worth of adaptation, exactly as if the
    /// query had executed inline against this zonemap.
    ///
    /// The inline path is `prune(pred)` → scan → `observe(obs)`; a reader
    /// that executed against a snapshot via [`AdaptiveZonemap::prune_shared`]
    /// skipped all of prune's bookkeeping, so this replays the mutable
    /// prune here (a metadata-only walk — no data is touched) for its side
    /// effects (query clock, skip/probe counters, revival check) and then
    /// feeds the reader's scan observations through [`observe`].
    ///
    /// Observations whose ranges no longer align with a current zone
    /// (because the reader's snapshot was stale across a structural change)
    /// are ignored by `observe`'s existing alignment check — staleness can
    /// only slow adaptation, never corrupt it.
    ///
    /// [`observe`]: SkippingIndex::observe
    pub fn apply_feedback(&mut self, obs: &ScanObservation<T>) {
        let _ = SkippingIndex::prune(self, &obs.predicate);
        self.observe(obs);
    }

    /// Applies a drained batch of deferred query feedback in arrival
    /// order; returns how many entries were applied.
    pub fn apply_feedback_batch<'a>(
        &mut self,
        batch: impl IntoIterator<Item = &'a ScanObservation<T>>,
    ) -> usize
    where
        T: 'a,
    {
        let mut applied = 0;
        for obs in batch {
            self.apply_feedback(obs);
            applied += 1;
        }
        applied
    }

    /// Runs the revival check the *next* query's prune would run, so a
    /// snapshot published now already reflects it.
    ///
    /// The mutable prune revives due zones at the top of every query; a
    /// snapshot reader cannot (its prune is read-only), so the publisher
    /// calls this before cloning state out. Returns `true` when any zone
    /// was revived. Idempotent: re-running prune afterwards (as
    /// [`AdaptiveZonemap::apply_feedback`] does) finds nothing newly due.
    pub fn poll_revival(&mut self) -> bool {
        if self.next_revival_check == u64::MAX || self.query_seq + 1 < self.next_revival_check {
            return false;
        }
        self.revive_zones_due_at(self.query_seq + 1)
    }

    /// The retained array-of-structs prune loop: walks `Vec<AdaptiveZone>`
    /// directly, reading state and bounds out of each full record.
    ///
    /// Decision-identical to [`SkippingIndex::prune`] (property-tested),
    /// including every stat and trace side effect — it is a drop-in
    /// reference implementation, kept as the baseline the kernel
    /// benchmark (`kernels_json`) measures the SoA plane against and as
    /// the oracle for the plane's equivalence tests.
    ///
    /// epoch: mirrors [`SkippingIndex::prune`] exactly — bumps under
    /// `moved_total > 0` (payload cracks); all other probe-loop writes
    /// are per-query stat drift.
    pub fn prune_via_zones(&mut self, pred: &RangePredicate<T>) -> PruneOutcome {
        let mut out = self.prune_prologue();

        let min_split_rows =
            (2 * self.config.min_zone_rows).max(2 * self.cost.min_profitable_zone_rows());
        let mut moved_total = 0u64;
        // Accumulated locally and merged after the loop: the loop holds
        // the `zones` borrow, and the lifetime block lives next to it.
        let mut tier_delta = TierStats::default();
        for zone in &mut self.zones {
            out.zones_probed += 1;
            match zone.state {
                ZoneState::Unbuilt | ZoneState::Dead { .. } => {
                    out.must_scan.push_span(zone.start, zone.end);
                    out.scan_units.push(zone.range());
                    out.mask_requests.push(None);
                    out.record_decision(zone.range(), "scan:unbuilt");
                }
                ZoneState::Built { min, max, .. } => {
                    if !pred.overlaps(min, max) {
                        out.zones_skipped += 1;
                        out.record_decision(zone.range(), "skip:bounds");
                        zone.stats.record_skip();
                        if let ZoneLayout::Reorganized { idle, .. } = &mut zone.layout {
                            *idle = idle.saturating_add(1);
                        }
                        continue;
                    }
                    if zone.is_reorganized() {
                        moved_total += probe_reorg_zone(zone, pred, min, max, &mut out);
                        continue;
                    }
                    probe_overlapping_zone(
                        zone,
                        pred,
                        min,
                        max,
                        &self.config,
                        min_split_rows,
                        &mut tier_delta,
                        &mut out,
                    );
                }
            }
        }
        self.tier_lifetime.merge(&tier_delta);
        if moved_total > 0 {
            self.reorg_lifetime.bytes_moved += moved_total;
            self.mutation_epoch += 1;
        }

        self.prune_epilogue(&out);
        out
    }

    /// Applies the plane's deferred skip counts to the real zone stats and
    /// zeroes them. Must run before anything reads or resets `ZoneStats`
    /// probes/skips (maintenance, revival) and before any structural
    /// change renumbers zones.
    ///
    /// epoch: moves already-counted stat drift between two owner-side
    /// homes (plane counters → zone stats); nothing reader-visible
    /// changes.
    pub(crate) fn flush_pending_skips(&mut self) {
        for (z, p) in self.plane.pending_skips.iter_mut().enumerate() {
            if *p > 0 {
                self.zones[z].stats.record_skips(*p);
                *p = 0;
            }
        }
    }

    /// Splits zone `idx` into parts, inheriting the parent's bounds as
    /// conservative (non-exact) metadata so skipping keeps working until
    /// the next scan tightens each part.
    ///
    /// epoch: the only caller (`observe`'s split-queue drain) sets
    /// `mutated` for every queued split and bumps once at its end.
    ///
    /// lifecycle: children are constructed with `mask: None`,
    /// `layout: Flat`, `tier: None` below — the parent's metadata
    /// covered a different row range and must not survive the split.
    pub(crate) fn split_zone(&mut self, idx: usize) {
        self.flush_pending_skips();
        let zone = self.zones[idx].clone();
        let parts = (zone.len() / self.config.target_zone_rows)
            .clamp(2, 8)
            .min(zone.len() / self.config.min_zone_rows.max(1))
            .max(2);
        if zone.len() < 2 * self.config.min_zone_rows {
            return;
        }
        let inherited = match zone.state {
            ZoneState::Built { min, max, .. } => ZoneState::Built {
                min,
                max,
                exact: false,
            },
            other => other,
        };
        let part_rows = zone.len().div_ceil(parts);
        let mut children = Vec::with_capacity(parts);
        let mut start = zone.start;
        while start < zone.end {
            let end = (start + part_rows).min(zone.end);
            children.push(AdaptiveZone {
                start,
                end,
                state: inherited,
                stats: ZoneStats::new(self.config.ewma_alpha),
                deactivations: zone.deactivations,
                no_resplit: false,
                split_generation: zone.split_generation.saturating_add(1),
                // The parent's mask covered a different row range.
                mask: None,
                // Reorganized zones are never queued for splitting; any
                // parent reaching here is flat.
                layout: ZoneLayout::Flat,
                // Likewise the parent's tier: built over different rows,
                // so children re-earn their own.
                tier: None,
                tier_stats: TierTelemetry::default(),
            });
            start = end;
        }
        let parts_made = children.len();
        self.zones.splice(idx..=idx, children);
        self.plane.rebuild(&self.zones);
        self.trace.record(
            self.query_seq,
            AdaptEvent::Split {
                range: zone.range(),
                parts: parts_made,
            },
        );
    }
}

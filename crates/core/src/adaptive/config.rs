//! Tuning knobs and ablation switches for adaptive zonemaps.

use crate::cost::CostModel;

/// Which secondary metadata tier zones may earn (see
/// [`crate::adaptive::zone::ZoneTier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierMode {
    /// No tiers — zones carry `(min, max)` bounds (and masks) only.
    #[default]
    Off,
    /// Every eligible zone builds a bloom value-set sketch.
    Bloom,
    /// Every eligible zone builds a column-imprint sketch.
    Imprint,
    /// Per-zone choice from observed predicate shape: point-heavy zones
    /// get a bloom sketch, range-heavy zones get imprints.
    Adaptive,
}

impl TierMode {
    /// True unless tiers are disabled.
    pub fn enabled(self) -> bool {
        self != TierMode::Off
    }
}

/// Configuration for an [`crate::adaptive::AdaptiveZonemap`].
///
/// The defaults are derived from the [`CostModel`] and behave well across
/// the distributions in `ads-workloads`; the enable flags exist for the
/// component ablation (experiment E10).
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Granularity (rows) at which fresh metadata is materialised: the
    /// initial zone size, the revival zone size, and the append zone size.
    pub target_zone_rows: usize,
    /// Floor for refinement: splitting stops once a zone would drop below
    /// this many rows. Must be at least 2.
    pub min_zone_rows: usize,
    /// Ceiling for coarsening: merging stops once a zone would exceed this
    /// many rows; zones at the ceiling become deactivation candidates.
    pub max_zone_rows: usize,
    /// Qualifying fraction below which a scan through a zone counts as
    /// "wasted" (the zone was read for almost nothing — its metadata was
    /// too coarse to exclude it).
    pub split_low_yield: f64,
    /// Consecutive wasted scans before a zone is split.
    pub split_after_wasted: u32,
    /// Probes a zone must accumulate before it may be merged away.
    pub merge_after_probes: u32,
    /// Skip rate at or below which a probed-enough zone is merge-eligible.
    pub merge_max_skip_rate: f64,
    /// Probes a ceiling-sized zone must accumulate before deactivation.
    pub deactivate_after_probes: u32,
    /// Skip rate at or below which a ceiling-sized zone is deactivated.
    pub deactivate_max_skip_rate: f64,
    /// Queries between structural maintenance passes (merge/deactivate
    /// scans are O(zones), so they are amortised).
    pub maintenance_every: u64,
    /// Base number of queries a dead region waits before being given
    /// another chance; doubles with each re-deactivation. `None` disables
    /// revival (dead regions stay dead).
    pub revival_base_queries: Option<u64>,
    /// EWMA smoothing factor for per-zone selectivity tracking.
    pub ewma_alpha: f64,
    /// Ablation switch: allow refinement splits.
    pub enable_split: bool,
    /// Ablation switch: allow coarsening merges.
    pub enable_merge: bool,
    /// Ablation switch: allow deactivation.
    pub enable_deactivate: bool,
    /// Ablation switch: allow secondary zone masks — 64-bin value-presence
    /// sketches attached to zones that cannot refine positionally but keep
    /// wasting scans (the outlier case).
    pub enable_mask: bool,
    /// Events retained in the adaptation trace ring.
    pub trace_capacity: usize,
    /// Enable zone-local physical reorganization: hot zones are promoted
    /// to a sorted/cracked layout so in-zone skipping becomes positional.
    /// Off by default — the paper's adaptation reshapes metadata only.
    pub enable_reorg: bool,
    /// Partial scans a built zone must absorb before promotion to the
    /// reorganized layout. Each partial scan reads the whole zone, so
    /// after `k` scans the zone has already paid `k` times the one-off
    /// copy cost of reorganizing — the amortization threshold.
    pub reorg_after_scans: u32,
    /// Consecutive probes that skip a reorganized zone outright before it
    /// is demoted back to flat (the hotspot has moved; the payload is
    /// dead weight).
    pub reorg_demote_idle: u32,
    /// Relative-hotness gate: a zone is promoted only when its scan
    /// *rate* (scans per probe, bounded `[0,1]`) is at least this
    /// multiple of the map-wide mean scan rate. On a uniform workload
    /// every probe scans every zone, the mean rate sits near `1.0`, and
    /// no zone can clear the bar — promotion (correctly) never triggers;
    /// on a hot-zone workload the skipped zones drag the mean down and
    /// the hotspot's rate towers over it. `0.0` disables the gate
    /// (always-reorg ablation). Single-zone maps bypass the gate — there
    /// is no population to compare against.
    pub reorg_hot_factor: f64,
    /// Which secondary metadata tier zones may earn. Off by default — the
    /// paper's zones carry `(min, max)` bounds only.
    pub tier_mode: TierMode,
    /// Scans a built flat zone must absorb before a tier is built over it.
    /// Each scan read the whole zone, so after `k` scans the zone has
    /// paid `k` times the one-off cost of the tier build pass — the same
    /// amortization argument as `reorg_after_scans`.
    pub tier_after_scans: u32,
    /// Point-predicate fraction at or above which the [`TierMode::Adaptive`]
    /// chooser picks a bloom sketch over imprints.
    pub tier_point_fraction: f64,
    /// Tier consultations per drop-policy window: once a tier has been
    /// consulted this many times, its hit rate is judged.
    pub tier_drop_after: u32,
    /// Hit rate at or below which a judged tier is dropped (it is pure
    /// probe overhead); above it the window simply resets.
    pub tier_drop_min_hit_rate: f64,
    /// Bloom sizing: filter bits per zone row.
    pub tier_bloom_bits_per_row: usize,
    /// Hard cap on any single tier payload's byte size.
    pub tier_max_bytes: usize,
    /// Imprint sizing: rows per imprint line (sub-zone skip granularity).
    pub tier_imprint_line_rows: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig::from_cost_model(&CostModel::default())
    }
}

impl AdaptiveConfig {
    /// Derives sizing knobs from a measured or assumed cost model: the
    /// split floor sits well above the break-even zone size so refined
    /// zones can still repay their probes.
    pub fn from_cost_model(cost: &CostModel) -> Self {
        let break_even = cost.min_profitable_zone_rows().max(1);
        AdaptiveConfig {
            target_zone_rows: 4096,
            min_zone_rows: (break_even * 8).next_power_of_two().max(64),
            max_zone_rows: 1 << 17,
            split_low_yield: 0.02,
            split_after_wasted: 2,
            merge_after_probes: 8,
            merge_max_skip_rate: 0.05,
            deactivate_after_probes: 16,
            deactivate_max_skip_rate: 0.02,
            maintenance_every: 8,
            revival_base_queries: Some(256),
            ewma_alpha: 0.25,
            enable_split: true,
            enable_merge: true,
            enable_deactivate: true,
            enable_mask: true,
            trace_capacity: 4096,
            enable_reorg: false,
            reorg_after_scans: 4,
            reorg_demote_idle: 64,
            reorg_hot_factor: 2.0,
            tier_mode: TierMode::Off,
            tier_after_scans: 4,
            tier_point_fraction: 0.5,
            tier_drop_after: 16,
            tier_drop_min_hit_rate: 0.05,
            tier_bloom_bits_per_row: 8,
            tier_max_bytes: 1 << 16,
            tier_imprint_line_rows: 64,
        }
    }

    /// Preset: everything on, including zone-local reorganization.
    pub fn with_reorg() -> Self {
        AdaptiveConfig {
            enable_reorg: true,
            ..AdaptiveConfig::default()
        }
    }

    /// Preset: adaptive per-zone metadata tiers (bloom sketches on
    /// point-heavy zones, imprints on range-heavy ones).
    pub fn with_tiers() -> Self {
        AdaptiveConfig {
            tier_mode: TierMode::Adaptive,
            ..AdaptiveConfig::default()
        }
    }

    /// Preset: the given tier on every eligible zone (or tiers off) —
    /// the forced modes the equivalence harness and E21 grid sweep.
    pub fn with_tier_mode(mode: TierMode) -> Self {
        AdaptiveConfig {
            tier_mode: mode,
            ..AdaptiveConfig::default()
        }
    }

    /// Ablation preset: lazy metadata building only (no split/merge/
    /// deactivate).
    pub fn lazy_only() -> Self {
        AdaptiveConfig {
            enable_split: false,
            enable_merge: false,
            enable_deactivate: false,
            enable_mask: false,
            ..AdaptiveConfig::default()
        }
    }

    /// Ablation preset: lazy build + refinement splits.
    pub fn split_only() -> Self {
        AdaptiveConfig {
            enable_merge: false,
            enable_deactivate: false,
            enable_mask: false,
            ..AdaptiveConfig::default()
        }
    }

    /// Ablation preset: everything except zone masks.
    pub fn no_mask() -> Self {
        AdaptiveConfig {
            enable_mask: false,
            ..AdaptiveConfig::default()
        }
    }

    /// Ablation preset: everything except deactivation.
    pub fn no_deactivate() -> Self {
        AdaptiveConfig {
            enable_deactivate: false,
            ..AdaptiveConfig::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics on inconsistent sizing or rates; called by the zonemap
    /// constructor so misconfigurations fail fast.
    pub fn validate(&self) {
        assert!(self.target_zone_rows >= 2, "target_zone_rows too small");
        assert!(self.min_zone_rows >= 2, "min_zone_rows must be >= 2");
        assert!(
            self.min_zone_rows <= self.target_zone_rows,
            "min_zone_rows exceeds target_zone_rows"
        );
        assert!(
            self.target_zone_rows <= self.max_zone_rows,
            "target_zone_rows exceeds max_zone_rows"
        );
        assert!(
            (0.0..=1.0).contains(&self.split_low_yield),
            "split_low_yield out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.merge_max_skip_rate),
            "merge_max_skip_rate out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.deactivate_max_skip_rate),
            "deactivate_max_skip_rate out of [0,1]"
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "bad ewma_alpha"
        );
        assert!(
            self.maintenance_every >= 1,
            "maintenance_every must be >= 1"
        );
        assert!(
            self.reorg_after_scans >= 1,
            "reorg_after_scans must be >= 1"
        );
        assert!(
            self.reorg_demote_idle >= 1,
            "reorg_demote_idle must be >= 1"
        );
        assert!(
            self.reorg_hot_factor.is_finite() && self.reorg_hot_factor >= 0.0,
            "reorg_hot_factor must be finite and >= 0"
        );
        assert!(self.tier_after_scans >= 1, "tier_after_scans must be >= 1");
        assert!(self.tier_drop_after >= 1, "tier_drop_after must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.tier_point_fraction),
            "tier_point_fraction out of [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.tier_drop_min_hit_rate),
            "tier_drop_min_hit_rate out of [0,1]"
        );
        assert!(
            self.tier_bloom_bits_per_row >= 1,
            "tier_bloom_bits_per_row must be >= 1"
        );
        assert!(self.tier_max_bytes >= 8, "tier_max_bytes must be >= 8");
        assert!(
            self.tier_imprint_line_rows >= 1,
            "tier_imprint_line_rows must be >= 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        AdaptiveConfig::default().validate();
    }

    #[test]
    fn presets_validate_and_toggle() {
        let lazy = AdaptiveConfig::lazy_only();
        lazy.validate();
        assert!(!lazy.enable_split && !lazy.enable_merge && !lazy.enable_deactivate);

        let split = AdaptiveConfig::split_only();
        split.validate();
        assert!(split.enable_split && !split.enable_merge);

        let nod = AdaptiveConfig::no_deactivate();
        nod.validate();
        assert!(nod.enable_split && nod.enable_merge && !nod.enable_deactivate);

        let nom = AdaptiveConfig::no_mask();
        nom.validate();
        assert!(nom.enable_split && !nom.enable_mask);

        let reorg = AdaptiveConfig::with_reorg();
        reorg.validate();
        assert!(reorg.enable_reorg);
        assert!(
            !AdaptiveConfig::default().enable_reorg,
            "reorg must be opt-in"
        );

        let tiers = AdaptiveConfig::with_tiers();
        tiers.validate();
        assert_eq!(tiers.tier_mode, TierMode::Adaptive);
        let forced = AdaptiveConfig::with_tier_mode(TierMode::Bloom);
        forced.validate();
        assert!(forced.tier_mode.enabled());
        assert_eq!(
            AdaptiveConfig::default().tier_mode,
            TierMode::Off,
            "tiers must be opt-in"
        );
    }

    #[test]
    #[should_panic(expected = "tier_point_fraction out of [0,1]")]
    fn validate_catches_bad_tier_fraction() {
        AdaptiveConfig {
            tier_point_fraction: 1.5,
            ..AdaptiveConfig::default()
        }
        .validate();
    }

    #[test]
    fn from_cost_model_scales_floor() {
        let cheap = AdaptiveConfig::from_cost_model(&CostModel::new(1.0));
        let dear = AdaptiveConfig::from_cost_model(&CostModel::new(32.0));
        assert!(dear.min_zone_rows >= cheap.min_zone_rows);
        dear.validate();
    }

    #[test]
    #[should_panic(expected = "min_zone_rows exceeds target_zone_rows")]
    fn validate_catches_inverted_sizes() {
        AdaptiveConfig {
            min_zone_rows: 1 << 20,
            ..AdaptiveConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "bad ewma_alpha")]
    fn validate_catches_bad_alpha() {
        AdaptiveConfig {
            ewma_alpha: 1.5,
            ..AdaptiveConfig::default()
        }
        .validate();
    }
}
